"""Figure 10 — sensitivity of the combined schemes to authentication
requirements, parallel tree authentication, and MAC size.

Paper: starting from the default configuration (Commit, parallel, 64-bit
MACs — marked by arrows in the figure), each parameter is varied alone.
The new combined scheme (Split+GCM) stays ahead of every prior combination
across the whole range, and each of its two components (split counters,
GCM) provides a consistent benefit.
"""

from __future__ import annotations

import statistics

from repro.analysis import FigureTable, results_path
from repro.auth.policies import AuthPolicy
from repro.core.config import (
    mono_gcm_config,
    mono_sha_config,
    split_gcm_config,
    split_sha_config,
    xom_sha_config,
)
from repro.workloads.spec2k import MEMORY_BOUND
from conftest import bench_apps

SCHEMES = [
    ("Split+GCM", split_gcm_config),
    ("Mono+GCM", mono_gcm_config),
    ("Split+SHA", split_sha_config),
    ("Mono+SHA", mono_sha_config),
    ("XOM+SHA", xom_sha_config),
]

VARIANTS = [
    ("lazy", dict(auth_policy=AuthPolicy.LAZY)),
    ("commit*", dict(auth_policy=AuthPolicy.COMMIT)),
    ("safe", dict(auth_policy=AuthPolicy.SAFE)),
    ("parallel*", dict(parallel_auth=True)),
    ("nonpar.", dict(parallel_auth=False)),
    ("128b MAC", dict(mac_bits=128)),
    ("64b MAC*", dict(mac_bits=64)),
    ("32b MAC", dict(mac_bits=32)),
]


def run_figure10(sims):
    apps = bench_apps(MEMORY_BOUND)
    table = FigureTable(title="Figure 10: sensitivity of combined schemes "
                              "(averages; * marks the default)")
    values = {}
    for scheme_name, factory in SCHEMES:
        for variant_name, overrides in VARIANTS:
            config = factory(**overrides)
            avg = statistics.mean(
                sims.normalized_ipc(app, config) for app in apps
            )
            table.set(scheme_name, variant_name, avg)
            values[(scheme_name, variant_name)] = avg
    return table, values


def test_fig10_sensitivity(sims, benchmark):
    table, values = benchmark.pedantic(lambda: run_figure10(sims),
                                       rounds=1, iterations=1)
    table.print()
    table.save(results_path("fig10_sensitivity.txt"))
    benchmark.extra_info.update({
        f"{s}:{v}": round(x, 4) for (s, v), x in values.items()
    })
    variant_names = [v for v, _ in VARIANTS]
    # The new combined scheme leads under every variant.
    for variant in variant_names:
        best = max(values[(s, variant)] for s, _ in SCHEMES)
        assert values[("Split+GCM", variant)] == best, (
            f"Split+GCM should lead under {variant}"
        )
    # Both components help consistently: split >= mono within GCM, and
    # GCM >= SHA within split, for every variant.
    for variant in variant_names:
        assert (values[("Split+GCM", variant)]
                >= values[("Mono+GCM", variant)] - 0.005)
        assert (values[("Split+GCM", variant)]
                >= values[("Split+SHA", variant)] - 0.005)
    # Smaller MACs raise tree arity and reduce traffic: 32b >= 128b.
    assert (values[("Split+GCM", "32b MAC")]
            >= values[("Split+GCM", "128b MAC")] - 0.005)
