"""Figure 6 — split counters vs counter prediction + pad precomputation.

Paper, Figure 6(a), three groups over the 21-benchmark average:

1. counter-cache hit (+half-miss) rate for split vs the prediction rate of
   the Shi-et-al. scheme (prediction slightly ahead);
2. fraction of timely pad pre-computations — prediction with one AES engine
   produces timely pads for only ~61% of decryptions (it issues N=5 pads
   per miss); two engines reach ~96%, slightly ahead of split;
3. normalized IPC — Pred(2Eng) lands at about split's performance because
   its 64-bit counters fetched with every block burn the bandwidth its
   timely pads saved.

Figure 6(b): over time, split's counter-cache hit rate stays flat while the
prediction rate decays as per-block counters within a page drift apart.
"""

from __future__ import annotations

import statistics

from repro.analysis import FigureTable, results_path
from repro.core.config import (
    baseline_config,
    prediction_config,
    split_config,
)
from repro.sim.processor import simulate
from repro.workloads.spec2k import MEMORY_BOUND, spec_trace
from conftest import TRACE_REFS, WARMUP_REFS, bench_apps


def run_figure6a(sims):
    apps = bench_apps(MEMORY_BOUND)
    table = FigureTable(title="Figure 6a: split counters vs counter "
                              "prediction (averages)")
    hit_rates, pred_rates = [], []
    timely = {"Split": [], "Pred": [], "Pred(2Eng)": []}
    nipc = {"Split": [], "Pred": [], "Pred(2Eng)": []}
    for app in apps:
        split_run = sims.run(app, split_config())
        stats = split_run.memory.stats
        cc = split_run.memory.counter_cache.stats
        total = cc.accesses + stats.counter_half_misses
        hits = cc.hits + stats.counter_half_misses
        hit_rates.append(hits / total if total else 0.0)
        timely["Split"].append(stats.pads.timely_rate)
        nipc["Split"].append(sims.normalized_ipc(app, split_config()))

        for label, engines in (("Pred", 1), ("Pred(2Eng)", 2)):
            config = prediction_config(aes_engines=engines)
            run = sims.run(app, config)
            timely[label].append(run.memory.stats.pads.timely_rate)
            nipc[label].append(sims.normalized_ipc(app, config))
            if engines == 1:
                pred_rates.append(run.memory.scheme.stats.prediction_rate)

    table.set("CntCache hit+halfmiss", "Split", statistics.mean(hit_rates))
    table.set("Prediction rate", "Pred", statistics.mean(pred_rates))
    for label in ("Split", "Pred", "Pred(2Eng)"):
        table.set("Timely pads", label, statistics.mean(timely[label]))
        table.set("Normalized IPC", label, statistics.mean(nipc[label]))
    summary = {
        "cc_hit": statistics.mean(hit_rates),
        "pred_rate": statistics.mean(pred_rates),
        "timely_split": statistics.mean(timely["Split"]),
        "timely_pred1": statistics.mean(timely["Pred"]),
        "timely_pred2": statistics.mean(timely["Pred(2Eng)"]),
        "nipc_split": statistics.mean(nipc["Split"]),
        "nipc_pred1": statistics.mean(nipc["Pred"]),
        "nipc_pred2": statistics.mean(nipc["Pred(2Eng)"]),
    }
    return table, summary


def run_figure6b(app: str = "swim", intervals: int = 5):
    """Marginal prediction-rate / hit-rate trend over execution intervals.

    Deterministic traces make cumulative re-runs consistent, so the rate in
    interval i is the difference between the cumulative runs of length i
    and i-1.
    """
    table = FigureTable(title=f"Figure 6b: rate trend over time ({app})")
    prev_pred = (0, 0)
    prev_cc = (0, 0)
    for i in range(1, intervals + 1):
        refs = TRACE_REFS * i
        trace = spec_trace(app, refs)
        pred_run = simulate(prediction_config(), trace)
        split_run = simulate(split_config(), trace)
        ps = pred_run.memory.scheme.stats
        cs = split_run.memory.counter_cache.stats
        dp = (ps.correct - prev_pred[0], ps.predictions - prev_pred[1])
        dc = (cs.hits - prev_cc[0], cs.accesses - prev_cc[1])
        prev_pred = (ps.correct, ps.predictions)
        prev_cc = (cs.hits, cs.accesses)
        table.set("Pred rate", f"T{i}", dp[0] / dp[1] if dp[1] else 0.0)
        table.set("CC hit", f"T{i}", dc[0] / dc[1] if dc[1] else 0.0)
    return table


def test_fig6a_prediction_comparison(sims, benchmark):
    table, s = benchmark.pedantic(lambda: run_figure6a(sims),
                                  rounds=1, iterations=1)
    table.print()
    table.save(results_path("fig6a_prediction.txt"))
    benchmark.extra_info.update({k: round(v, 4) for k, v in s.items()})
    # One AES engine cannot keep up with 5x pad precomputation...
    assert s["timely_pred1"] < s["timely_split"] - 0.1
    # ...two engines can (paper: 96% vs split's slightly lower rate).
    assert s["timely_pred2"] > 0.85
    # Extra 64-bit counter traffic offsets prediction's timely pads:
    # Pred(2Eng) ends up at or below split's performance.
    assert s["nipc_split"] >= s["nipc_pred2"] - 0.02
    # A single engine is clearly worse than split.
    assert s["nipc_split"] > s["nipc_pred1"] + 0.05


def test_fig6b_prediction_trend(benchmark):
    table = benchmark.pedantic(run_figure6b, rounds=1, iterations=1)
    table.print()
    table.save(results_path("fig6b_trend.txt"))
    pred = table.row("Pred rate")
    cc = table.row("CC hit")
    # Split's hit rate stays flat (within a few points across intervals).
    assert max(cc) - min(cc) < 0.1
    # Prediction starts high (fresh counters are trivially predictable)
    # and never recovers above its start once counters drift.
    assert pred[0] >= max(pred[1:]) - 0.02
