"""Ablation — do the RSRs actually pay for themselves?

Section 4.2 argues that the RSR machinery (done-bit tracking, lazy
dirty-marking of cached blocks, background fetch of the rest) hides page
re-encryption behind normal execution, and section 6.1 confirms it: Split
with fully simulated re-encryption matches Mono8b with *free*
re-encryption.  This bench removes the overlap — every minor-counter
overflow stalls the write-back (and the core behind it) until its page is
fully re-encrypted — and measures what the paper's hardware support buys.

Run with small minor counters (5 bits) so overflows are frequent enough to
matter inside the simulated window; the default 7-bit configuration is
also reported to show that at paper-default overflow rates both variants
converge (re-encryptions are too rare to see either way).
"""

from __future__ import annotations

import statistics

from repro.analysis import FigureTable, results_path
from repro.core.config import baseline_config, split_config
from repro.sim.processor import simulate
from repro.workloads.generators import WorkloadProfile, generate_trace
from repro.workloads.spec2k import FAST_COUNTER_APPS, MB
from conftest import TRACE_REFS, WARMUP_REFS, bench_apps

#: write-hot full pages that overflow tiny minors constantly — the
#: workload where re-encryption cost is actually visible
HOT_PAGES = WorkloadProfile(
    name="hotpages-ablation", mean_gap=3.0, write_fraction=0.55,
    w_hot=0.10, w_stream=0.10, w_random=0.0, w_pages=0.80,
    w_thrash=0.0, hot_bytes=8 * 1024, stream_bytes=4 * MB,
    random_bytes=64 * 1024, page_pool_pages=16, page_burst=24,
    page_stride=32,
)


def run_ablation(sims):
    apps = bench_apps(FAST_COUNTER_APPS)
    table = FigureTable(title="Ablation: RSR-overlapped vs stalling page "
                              "re-encryption (normalized IPC)")
    rows = {}
    # SPEC-like apps at paper-default 7-bit minors: overflows are rare,
    # so both designs should look identical (the paper's headline:
    # Split with full re-encryption matches free-re-encryption Mono8b).
    for mode, overlap in (("RSR overlap", True), ("stall", False)):
        config = split_config(
            rsr_overlap=overlap,
            name=f"split-{'rsr' if overlap else 'stall'}",
        )
        avg = statistics.mean(
            sims.normalized_ipc(app, config) for app in apps
        )
        table.set(f"SPEC-like, 7-bit minors, {mode}", "avg nIPC", avg)
        rows[("spec", overlap)] = avg
    # Write-hot pages with 2-bit minors: a page re-encryption every few
    # hundred references — here the overlap machinery earns its keep.
    trace = generate_trace(HOT_PAGES, TRACE_REFS)
    base = simulate(baseline_config(), trace, warmup_refs=WARMUP_REFS)
    for mode, overlap in (("RSR overlap", True), ("stall", False)):
        config = split_config(
            minor_bits=2, rsr_overlap=overlap,
            name=f"split-m2-{'rsr' if overlap else 'stall'}",
        )
        run = simulate(config, trace, warmup_refs=WARMUP_REFS)
        nipc = run.ipc / base.ipc
        table.set(f"hot pages, 2-bit minors, {mode}", "avg nIPC", nipc)
        rows[("hot", overlap)] = nipc
    return table, rows


def test_rsr_ablation(sims, benchmark):
    table, rows = benchmark.pedantic(lambda: run_ablation(sims),
                                     rounds=1, iterations=1)
    table.print()
    table.save(results_path("ablation_rsr.txt"))
    benchmark.extra_info.update({
        f"m{bits}_{'rsr' if ov else 'stall'}": round(v, 4)
        for (bits, ov), v in rows.items()
    })
    # Under heavy overflow pressure the overlap machinery must win
    # clearly — this is what the RSR hardware buys.
    assert rows[("hot", True)] > rows[("hot", False)] + 0.02
    # At the paper's default overflow rates both variants converge:
    # re-encryptions are rare enough that even stalling is survivable.
    # The paper's stronger arguments there are real-time responsiveness
    # and freedom from entire-memory freezes, not steady-state IPC.
    assert abs(rows[("spec", True)] - rows[("spec", False)]) < 0.05
