"""Registry backends — SecDDR-style and scattered-memory overhead rows.

Figure 4/9-style normalized-IPC comparison of the two backends added via
the scheme registry against the paper's Split+GCM design point:

* **SecDDR** keeps split counters + GCM but replaces the Bonsai Merkle
  walk with an on-chip MAC-of-MACs table — verification fetches at most
  one off-chip MAC group, so it should sit *above* Split+GCM.
* **Scattered** (k-of-n secret sharing, k=2/n=3) pays k block fetches
  per read miss and n block writes per write-back for its scattering
  guarantee, so it should sit well *below* Split+GCM.
"""

from __future__ import annotations

import statistics

from repro.analysis import FigureTable, results_path
from repro.api import get_config
from conftest import bench_apps

SCHEMES = [
    ("Split+GCM", get_config("split+gcm")),
    ("SecDDR", get_config("secddr")),
    ("Scattered", get_config("scattered")),
]


def run_backends(sims):
    apps = bench_apps()
    table = FigureTable(title="Registry backends: Normalized IPC vs. "
                              "the paper's Split+GCM")
    averages, per_app = {}, {}
    for name, config in SCHEMES:
        values = [sims.normalized_ipc(app, config) for app in apps]
        for app, v in zip(apps, values):
            table.set(name, app, v)
        per_app[name] = dict(zip(apps, values))
        averages[name] = statistics.mean(values)
        table.set(name, "Avg", averages[name])
    return table, averages, per_app


def test_registry_backends(sims, benchmark):
    table, averages, per_app = benchmark.pedantic(
        lambda: run_backends(sims), rounds=1, iterations=1
    )
    table.print()
    table.save(results_path("registry_backends.txt"))
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in averages.items()}
    )
    # Dropping the tree walk for an on-chip table must not cost anything —
    # on any app, not just on average (the model is deterministic).
    assert averages["SecDDR"] >= averages["Split+GCM"]
    for app, value in per_app["SecDDR"].items():
        assert value >= per_app["Split+GCM"][app] - 1e-9, app
    # Scattering is a security/overhead trade: k x read traffic and n x
    # write traffic land it clearly below the non-scattered schemes.
    assert averages["Scattered"] < averages["Split+GCM"] - 0.05
    for name, value in averages.items():
        assert 0.0 < value <= 1.0, (name, value)
