"""Table 2 — counter growth rate and estimated time to counter overflow.

Paper: per-block 8-bit counters overflow in ~0.1-0.4 s, 16-bit in minutes,
32-bit in days, 64-bit in hundreds of millennia; a 32-bit *global* counter
(incremented on every write-back system-wide) overflows within minutes —
orders of magnitude sooner than 32-bit per-block counters.

The reproduction measures the fastest counter's growth rate over the
simulated window and extrapolates ``2^n / rate`` exactly as the paper does
from its 1-billion-instruction windows.  Absolute rates are higher than the
paper's (the synthetic hot sets are denser per instruction); the ordering
across widths and the private-vs-global gap are the reproduced shape.
"""

from __future__ import annotations

import statistics

from repro.analysis import FigureTable, estimate_overflow, results_path
from repro.core.config import CounterOrg, make_counter_config, mono_config
from repro.counters.global_ctr import GlobalCounterScheme
from repro.workloads.spec2k import FAST_COUNTER_APPS
from conftest import bench_apps

WIDTH_CONFIGS = [
    ("Mono8b", mono_config(8), 8),
    ("Mono16b", mono_config(16), 16),
    ("Mono32b", mono_config(32), 32),
    ("Mono64b", mono_config(64), 64),
    ("Global32b", make_counter_config(CounterOrg.GLOBAL32), 32),
]


def run_table2(sims):
    apps = bench_apps(FAST_COUNTER_APPS)
    rates = FigureTable(
        title="Table 2a: counter growth rate (increments/second)",
        value_format="{:,.0f}",
    )
    etas = FigureTable(title="Table 2b: estimated time to counter overflow")
    estimates = {}
    for name, config, bits in WIDTH_CONFIGS:
        app_rates = []
        for app in apps:
            run = sims.run(app, config)
            scheme = run.memory.scheme
            if isinstance(scheme, GlobalCounterScheme):
                fastest = scheme.global_counter
            else:
                fastest = scheme.fastest_counter()
            est = estimate_overflow(bits, fastest, run.seconds)
            rates.set(name, app, est.growth_rate_per_s)
            estimates[(name, app)] = est
            app_rates.append(est.growth_rate_per_s)
        avg_rate = statistics.mean(app_rates)
        rates.set(name, "avg", avg_rate)
        estimates[(name, "avg")] = estimate_overflow(
            bits, 1, 1.0 / avg_rate if avg_rate else float("inf")
        )
    for name, _, _ in WIDTH_CONFIGS:
        for app in list(apps) + ["avg"]:
            etas.set(name, app, estimates[(name, app)].seconds_to_overflow)
    etas.value_format = "{:.3g}"
    etas.notes.append("values are seconds; see printed humanized summary")
    summary = {
        name: estimates[(name, "avg")].human for name, _, _ in WIDTH_CONFIGS
    }
    return rates, etas, estimates, summary, apps


def test_table2_overflow(sims, benchmark):
    rates, etas, estimates, summary, apps = benchmark.pedantic(
        lambda: run_table2(sims), rounds=1, iterations=1
    )
    rates.print()
    etas.print()
    print("\nAverage time to overflow:",
          ", ".join(f"{k}: {v}" for k, v in summary.items()))
    rates.save(results_path("table2_rates.txt"))
    etas.save(results_path("table2_overflow_eta.txt"))
    benchmark.extra_info.update(summary)

    def eta(name, app="avg"):
        return estimates[(name, app)].seconds_to_overflow

    # Shape: each doubling of width multiplies the overflow interval hugely.
    assert eta("Mono8b") < eta("Mono16b") < eta("Mono32b") < eta("Mono64b")
    # 64-bit counters are safe for millennia (paper: 300k-1M millennia).
    assert eta("Mono64b") > 1000 * 365.25 * 86400
    # The global counter overflows far sooner than private 32-bit counters
    # (paper: minutes vs days) because it advances at the system-wide
    # write-back rate.
    assert eta("Global32b") < eta("Mono32b") / 10
    # 8-bit counters overflow on sub-minute scales in this workload window.
    assert eta("Mono8b") < 60
