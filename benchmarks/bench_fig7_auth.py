"""Figure 7 — memory authentication schemes (no encryption).

Paper: GCM authentication performs as well as (unrealistically fast)
80-cycle SHA-1 and pulls far ahead as SHA-1 latency grows to realistic
values — GCM's authentication pad overlaps the memory fetch so only the
GHASH chain (a few cycles) lands after data arrival, while SHA-1's full
latency starts when data arrives.  GCM's one weak spot is mcf, whose
counter-cache misses add bus contention (GCM maintains per-block counters
even without encryption).
"""

from __future__ import annotations

import statistics

from repro.analysis import FigureTable, results_path
from repro.core.config import gcm_auth_config, sha_auth_config
from conftest import PLOTTED_APPS, bench_apps

SHA_LATENCIES = (80, 160, 320, 640)


def run_figure7(sims):
    apps = bench_apps(PLOTTED_APPS)
    table = FigureTable(title="Figure 7: Normalized IPC, memory "
                              "authentication schemes")
    averages = {}
    configs = [("GCM", gcm_auth_config())] + [
        (f"SHA-1 ({lat})", sha_auth_config(float(lat)))
        for lat in SHA_LATENCIES
    ]
    for name, config in configs:
        values = [sims.normalized_ipc(app, config) for app in apps]
        for app, v in zip(apps, values):
            table.set(name, app, v)
        averages[name] = statistics.mean(values)
        table.set(name, "Avg", averages[name])
    return table, averages, apps


def test_fig7_authentication(sims, benchmark):
    table, averages, apps = benchmark.pedantic(
        lambda: run_figure7(sims), rounds=1, iterations=1
    )
    table.print()
    table.save(results_path("fig7_auth.txt"))
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in averages.items()}
    )
    # SHA-1 degrades monotonically with latency.
    for a, b in zip(SHA_LATENCIES, SHA_LATENCIES[1:]):
        assert averages[f"SHA-1 ({a})"] > averages[f"SHA-1 ({b})"]
    # GCM is in the league of 80-cycle SHA-1 and clearly beats >= 160.
    assert averages["GCM"] > averages["SHA-1 (160)"]
    assert averages["GCM"] > averages["SHA-1 (320)"] + 0.05
    assert averages["GCM"] > averages["SHA-1 (640)"] + 0.15
    # mcf is GCM's worst case (counter-cache miss contention, per paper).
    if "mcf" in apps:
        gcm_mcf = table.get("GCM", "mcf")
        assert gcm_mcf == min(table.get("GCM", a) for a in apps)
