"""Sections 4.2 / 6.1 — page re-encryption statistics and work ratio.

The paper's in-text numbers for split counters:

* split counters do only ~0.3% of the re-encryption work of 8-bit
  monolithic counters (most pages advance far slower than the globally
  fastest counter);
* on average ~48% of a page's blocks are already on-chip when its
  re-encryption triggers, halving the RSR's fetch work;
* a page re-encryption takes ~5717 cycles, overlapped with execution;
* at most ~3 page re-encryptions are in flight, so 8 RSRs never stall.

The work ratio is computed from the measured per-block write-back
distribution (the paper's methodology); the RSR timing numbers are
measured directly by running split counters with 5-bit minors so that
overflows actually occur inside the simulated window.
"""

from __future__ import annotations

import statistics

from repro.analysis import (
    FigureTable,
    reencryption_work_ratio,
    results_path,
)
from repro.core.config import mono_config, split_config
from repro.sim.processor import simulate
from repro.workloads.generators import WorkloadProfile, generate_trace
from repro.workloads.spec2k import FAST_COUNTER_APPS, MB
from conftest import TRACE_REFS, WARMUP_REFS, bench_apps


def run_work_ratio(sims, apps):
    """Split-vs-Mono8b re-encryption work from counter distributions."""
    ratios = {}
    for app in apps:
        run = sims.run(app, mono_config(8))
        scheme = run.memory.scheme
        counters = dict(scheme._counters)
        ratios[app] = reencryption_work_ratio(
            counters,
            minor_bits=7,
            mono_bits=8,
            blocks_per_page=64,
            page_of=lambda addr: addr // 4096,
            # a key change re-encrypts the whole physical memory
            total_memory_blocks=run.memory.config.memory_size // 64,
        )
    return ratios


def run_rsr_stats(sims, apps):
    """Measured RSR behaviour with 5-bit minors (frequent overflows).

    Alongside the SPEC-like apps (whose overflowing pages are the sparse
    thrash pages), a dedicated ``hotpages`` workload rewrites a pool of
    full 4KB pages under streaming churn, producing the paper's scenario:
    pages with many materialized blocks, some resident on-chip when the
    re-encryption triggers.
    """
    table = FigureTable(title="Page re-encryption statistics "
                              "(split counters, 5-bit minors)")
    rows = {}
    hot_profile = WorkloadProfile(
        name="hotpages", mean_gap=3.0, write_fraction=0.55,
        w_hot=0.10, w_stream=0.10, w_random=0.0, w_pages=0.80,
        w_thrash=0.0, hot_bytes=8 * 1024, stream_bytes=4 * MB,
        random_bytes=64 * 1024, page_pool_pages=16, page_burst=24,
        page_stride=32,  # one L2-way stride: pool pages conflict and
                         # write back on every revisit
    )
    config = split_config(minor_bits=5, name="split-m5")
    workloads = [(app, None) for app in apps] + [("hotpages", hot_profile)]
    for name, profile in workloads:
        if profile is None:
            run = sims.run(name, config)
        else:
            trace = generate_trace(profile, TRACE_REFS)
            hot_config = split_config(minor_bits=2, name="split-m2")
            run = simulate(hot_config, trace, warmup_refs=WARMUP_REFS)
        st = run.memory.stats.reencryption
        table.set("page re-encryptions", name, st.page_reencryptions)
        table.set("on-chip fraction", name, st.onchip_fraction)
        table.set("mean cycles/page", name, st.mean_page_cycles)
        table.set("max concurrent RSRs", name, st.max_concurrent_rsrs)
        table.set("RSR stalls", name, st.rsr_stalls)
        rows[name] = st
    return table, rows


def test_reencryption_work_ratio(sims, benchmark):
    apps = bench_apps(FAST_COUNTER_APPS)
    ratios = benchmark.pedantic(lambda: run_work_ratio(sims, apps),
                                rounds=1, iterations=1)
    mean_ratio = statistics.mean(ratios.values())
    print(f"\nSplit / Mono8b re-encryption work ratio: "
          + ", ".join(f"{a}={r:.4f}" for a, r in ratios.items())
          + f"; mean={mean_ratio:.4f} (paper: ~0.003)")
    benchmark.extra_info["mean_work_ratio"] = round(mean_ratio, 5)
    # Split counters must do far less re-encryption work than Mono8b —
    # the paper reports 0.3%; anything below a few percent shows the
    # better-than-worst-case effect clearly.
    assert mean_ratio < 0.05
    for app, ratio in ratios.items():
        assert ratio < 0.2, f"{app}: work ratio {ratio} unexpectedly high"


def test_rsr_page_reencryption(sims, benchmark):
    apps = bench_apps(FAST_COUNTER_APPS)
    table, rows = benchmark.pedantic(lambda: run_rsr_stats(sims, apps),
                                     rounds=1, iterations=1)
    table.print()
    table.save(results_path("reencryption_stats.txt"))
    total_pages = sum(st.page_reencryptions for st in rows.values())
    assert total_pages > 0, "5-bit minors should overflow in-window"
    benchmark.extra_info["total_page_reencryptions"] = total_pages
    for app, st in rows.items():
        # RSR overlap machinery keeps the processor running: with 8 RSRs
        # and >4-bit minors the paper observes no stalls.
        assert st.rsr_stalls == 0, f"{app}: unexpected RSR stalls"
        assert st.max_concurrent_rsrs <= 8
        if st.page_reencryptions:
            # a page re-encryption is thousands, not millions, of cycles
            assert st.mean_page_cycles < 50_000
    hot = rows["hotpages"]
    assert hot.page_reencryptions > 0
    # The paper finds ~48% of page blocks already on-chip; the dense
    # hot-pages workload must show a substantial on-chip fraction.
    assert 0.1 < hot.onchip_fraction <= 1.0
    assert hot.blocks_fetched > 0, (
        "some page blocks should be fetched from memory by the RSR"
    )
