"""Figure 8 — IPC under Lazy / Commit / Safe authentication, and parallel
vs sequential Merkle-level authentication.

Paper: with Lazy authentication the MAC latency is irrelevant (GCM even
trails SHA-1 slightly because of its counter traffic); under Commit and
especially Safe, latency matters and GCM's advantage becomes large (Safe:
GCM -6% vs SHA-1 -24%).  Parallel authentication of all missing tree
levels buys ~2-3 IPC points — with GCM it nearly halves the remaining
authentication overhead.
"""

from __future__ import annotations

import statistics

from repro.analysis import FigureTable, results_path
from repro.auth.policies import AuthPolicy
from repro.core.config import gcm_auth_config, sha_auth_config
from repro.workloads.spec2k import MEMORY_BOUND
from conftest import bench_apps

POLICIES = (AuthPolicy.LAZY, AuthPolicy.COMMIT, AuthPolicy.SAFE)


def run_figure8(sims):
    apps = bench_apps(MEMORY_BOUND)
    table = FigureTable(title="Figure 8: authentication requirements and "
                              "parallel tree authentication (averages)")
    out = {}
    for label, factory in (("GCM", gcm_auth_config),
                           ("SHA", sha_auth_config)):
        for policy in POLICIES:
            config = factory(auth_policy=policy)
            avg = statistics.mean(
                sims.normalized_ipc(app, config) for app in apps
            )
            table.set(label, policy.value, avg)
            out[(label, policy.value)] = avg
        for mode, parallel in (("parallel", True), ("non-parallel", False)):
            config = factory(parallel_auth=parallel)
            avg = statistics.mean(
                sims.normalized_ipc(app, config) for app in apps
            )
            table.set(label, mode, avg)
            out[(label, mode)] = avg
    return table, out


def test_fig8_auth_requirements(sims, benchmark):
    table, out = benchmark.pedantic(lambda: run_figure8(sims),
                                    rounds=1, iterations=1)
    table.print()
    table.save(results_path("fig8_auth_requirements.txt"))
    benchmark.extra_info.update(
        {f"{a}_{b}": round(v, 4) for (a, b), v in out.items()}
    )
    for label in ("GCM", "SHA"):
        # Stricter policies cannot be faster.
        assert (out[(label, "lazy")] >= out[(label, "commit")] - 0.005
                >= out[(label, "safe")] - 0.01)
        # Parallel tree-level authentication helps (or is neutral).
        assert out[(label, "parallel")] >= out[(label, "non-parallel")]
    # Under Lazy, latency is irrelevant: GCM's counter traffic makes it
    # slightly worse than SHA (the paper's observation).
    assert out[("GCM", "lazy")] <= out[("SHA", "lazy")] + 0.01
    # Under Safe, GCM's overlap wins decisively.
    assert out[("GCM", "safe")] > out[("SHA", "safe")] + 0.05
    # The GCM advantage grows with strictness.
    gap_commit = out[("GCM", "commit")] - out[("SHA", "commit")]
    gap_lazy = out[("GCM", "lazy")] - out[("SHA", "lazy")]
    assert gap_commit > gap_lazy
