"""Microbenchmarks of the functional crypto substrate.

Not a paper figure — these measure the pure-Python primitives (AES block,
GCM seal, GHASH, SHA-1, split-counter seed/pad path) so regressions in the
functional layer are visible.  They use pytest-benchmark's normal
multi-round statistics, unlike the single-shot figure benches.
"""

from __future__ import annotations

import pytest

from repro.crypto.aes import AES128
from repro.crypto.ctr import bulk_ctr_transform, ctr_transform
from repro.crypto.gcm import AESGCM
from repro.crypto.gf128 import GF128Table
from repro.crypto.ghash import ghash, ghash_chunks
from repro.crypto.mac import gcm_block_mac, gcm_block_macs
from repro.crypto.sha1 import sha1
from repro.crypto.vector import (
    HAVE_NUMPY,
    bulk_ctr_transform_vector,
    gcm_block_macs_vector,
    ghash_chunks_many,
    vector_aes,
    vector_ghash,
)

KEY = bytes(range(16))
BLOCK64 = bytes(range(64)) + bytes(range(192, 256)) * 0
DATA64 = (b"\xa5" * 64)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="vector kernel needs numpy")

# Batch size for the vector-vs-table comparisons: large enough that the
# per-call array setup amortizes, matching the read_blocks bulk path.
VEC_N = 1024
VEC_ITEMS = [(0x1000 + i * 64, 42 + i, DATA64) for i in range(VEC_N)]
VEC_MESSAGES = [bytes([i & 0xFF]) * 64 for i in range(VEC_N)]


def test_aes_block_encrypt(benchmark):
    aes = AES128(KEY)
    out = benchmark(aes.encrypt_block, b"\x00" * 16)
    assert len(out) == 16


def test_aes_block_decrypt(benchmark):
    aes = AES128(KEY)
    ct = aes.encrypt_block(b"\x11" * 16)
    out = benchmark(aes.decrypt_block, ct)
    assert out == b"\x11" * 16


def test_aes_block_encrypt_scalar_reference(benchmark):
    """The seed's per-byte round loop, kept as the correctness reference —
    the ratio against ``test_aes_block_encrypt`` is the table speed-up."""
    aes = AES128(KEY)
    out = benchmark(aes.encrypt_block_scalar, b"\x00" * 16)
    assert out == aes.encrypt_block(b"\x00" * 16)


def test_aes_block_decrypt_scalar_reference(benchmark):
    aes = AES128(KEY)
    ct = aes.encrypt_block(b"\x11" * 16)
    out = benchmark(aes.decrypt_block_scalar, ct)
    assert out == b"\x11" * 16


def test_aes_bulk_encrypt_32_blocks(benchmark):
    aes = AES128(KEY)
    blocks = [bytes([i]) * 16 for i in range(32)]
    out = benchmark(aes.encrypt_blocks, blocks)
    assert len(out) == 32


def test_bulk_ctr_transform_8_blocks(benchmark):
    aes = AES128(KEY)
    items = [(0x1000 + i * 64, 42 + i, DATA64) for i in range(8)]
    out = benchmark(bulk_ctr_transform, aes, items)
    assert len(out) == 8 and all(len(p) == 64 for p in out)


def test_ctr_block_transform(benchmark):
    aes = AES128(KEY)
    out = benchmark(ctr_transform, aes, 0x1000, 42, DATA64)
    assert ctr_transform(aes, 0x1000, 42, out) == DATA64


def test_gcm_seal_64B(benchmark):
    gcm = AESGCM(KEY)
    result = benchmark(gcm.seal, b"\x00" * 12, DATA64)
    assert len(result.ciphertext) == 64


def test_gcm_block_mac(benchmark):
    aes = AES128(KEY)
    h = aes.encrypt_block(b"\x00" * 16)
    tag = benchmark(gcm_block_mac, aes, h, 0x2000, 7, DATA64, 64)
    assert len(tag) == 8


def test_ghash_64B(benchmark):
    h = AES128(KEY).encrypt_block(b"\x00" * 16)
    out = benchmark(ghash, h, b"", DATA64)
    assert len(out) == 16


def test_ghash_chunks_4x16(benchmark):
    h = AES128(KEY).encrypt_block(b"\x00" * 16)
    chunks = [DATA64[i:i + 16] for i in range(0, 64, 16)]
    out = benchmark(ghash_chunks, h, chunks)
    assert len(out) == 16


def test_gf128_table_build(benchmark):
    """Per-key Shoup table construction (paid once per GHASH key)."""
    h = AES128(KEY).encrypt_block(b"\x01" * 16)
    table = benchmark(GF128Table, h)
    from repro.crypto.gf128 import block_to_int, gf128_mul
    probe = (1 << 127) | 0x5A
    assert table.multiply(probe) == gf128_mul(probe, block_to_int(h))


def test_sha1_64B(benchmark):
    out = benchmark(sha1, DATA64)
    assert len(out) == 20


# -- vector kernel vs table kernel, same 1024-block batches -------------------
#
# Each vector bench has a table twin on identical inputs; the ratio of
# their per-round times is the vector speed-up recorded in
# results/crypto_micro.txt.  Warm-up is forced outside the timed region
# (table/array construction is cached per key).


@needs_numpy
def test_vector_aes_encrypt_1024_blocks(benchmark):
    blocks = [bytes([i & 0xFF]) * 16 for i in range(VEC_N)]
    vaes = vector_aes(KEY)
    out = benchmark(vaes.encrypt_blocks, blocks)
    assert out[0] == AES128(KEY).encrypt_block(blocks[0])


def test_table_aes_encrypt_1024_blocks(benchmark):
    blocks = [bytes([i & 0xFF]) * 16 for i in range(VEC_N)]
    aes = AES128(KEY)
    out = benchmark(aes.encrypt_blocks, blocks)
    assert len(out) == VEC_N


@needs_numpy
def test_vector_pad_generation_1024_blocks(benchmark):
    out = benchmark(bulk_ctr_transform_vector, KEY, VEC_ITEMS)
    addr, ctr, data = VEC_ITEMS[0]
    assert out[0] == ctr_transform(AES128(KEY), addr, ctr, data)


def test_table_pad_generation_1024_blocks(benchmark):
    aes = AES128(KEY)
    out = benchmark(bulk_ctr_transform, aes, VEC_ITEMS)
    assert len(out) == VEC_N


@needs_numpy
def test_vector_ghash_1024_messages(benchmark):
    h = AES128(KEY).encrypt_block(b"\x00" * 16)
    vector_ghash(h)  # build the table outside the timed region
    out = benchmark(ghash_chunks_many, h, VEC_MESSAGES)
    assert len(out) == VEC_N


def test_table_ghash_1024_messages(benchmark):
    h = AES128(KEY).encrypt_block(b"\x00" * 16)

    def run():
        return [
            ghash_chunks(h, [m[i:i + 16] for i in range(0, 64, 16)])
            for m in VEC_MESSAGES
        ]

    out = benchmark(run)
    assert len(out) == VEC_N


@needs_numpy
def test_vector_leaf_macs_1024_blocks(benchmark):
    h = AES128(KEY).encrypt_block(b"\x00" * 16)
    out = benchmark(gcm_block_macs_vector, KEY, h, VEC_ITEMS, 64)
    assert len(out) == VEC_N and len(out[0]) == 8


def test_table_leaf_macs_1024_blocks(benchmark):
    aes = AES128(KEY)
    h = aes.encrypt_block(b"\x00" * 16)
    out = benchmark(gcm_block_macs, aes, h, VEC_ITEMS, 64, kernel="table")
    assert len(out) == VEC_N and len(out[0]) == 8
