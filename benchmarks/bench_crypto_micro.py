"""Microbenchmarks of the functional crypto substrate.

Not a paper figure — these measure the pure-Python primitives (AES block,
GCM seal, GHASH, SHA-1, split-counter seed/pad path) so regressions in the
functional layer are visible.  They use pytest-benchmark's normal
multi-round statistics, unlike the single-shot figure benches.
"""

from __future__ import annotations

from repro.crypto.aes import AES128
from repro.crypto.ctr import ctr_transform
from repro.crypto.gcm import AESGCM
from repro.crypto.ghash import ghash
from repro.crypto.mac import gcm_block_mac
from repro.crypto.sha1 import sha1

KEY = bytes(range(16))
BLOCK64 = bytes(range(64)) + bytes(range(192, 256)) * 0
DATA64 = (b"\xa5" * 64)


def test_aes_block_encrypt(benchmark):
    aes = AES128(KEY)
    out = benchmark(aes.encrypt_block, b"\x00" * 16)
    assert len(out) == 16


def test_aes_block_decrypt(benchmark):
    aes = AES128(KEY)
    ct = aes.encrypt_block(b"\x11" * 16)
    out = benchmark(aes.decrypt_block, ct)
    assert out == b"\x11" * 16


def test_ctr_block_transform(benchmark):
    aes = AES128(KEY)
    out = benchmark(ctr_transform, aes, 0x1000, 42, DATA64)
    assert ctr_transform(aes, 0x1000, 42, out) == DATA64


def test_gcm_seal_64B(benchmark):
    gcm = AESGCM(KEY)
    result = benchmark(gcm.seal, b"\x00" * 12, DATA64)
    assert len(result.ciphertext) == 64


def test_gcm_block_mac(benchmark):
    aes = AES128(KEY)
    h = aes.encrypt_block(b"\x00" * 16)
    tag = benchmark(gcm_block_mac, aes, h, 0x2000, 7, DATA64, 64)
    assert len(tag) == 8


def test_ghash_64B(benchmark):
    h = AES128(KEY).encrypt_block(b"\x00" * 16)
    out = benchmark(ghash, h, b"", DATA64)
    assert len(out) == 16


def test_sha1_64B(benchmark):
    out = benchmark(sha1, DATA64)
    assert len(out) == 20
