"""Figure 4 — normalized IPC of memory-encryption schemes (no auth).

Paper: Split ≈ Mono8b (with zero-cost full re-encryption), both clearly
ahead of Mono64b and Direct AES; the average is over all 21 benchmarks.
Numbers above the Mono8b bars count entire-memory re-encryptions — the
paper counts them during 1 billion instructions, and this bench reports
the count extrapolated to the same window from the measured overflow rate.
"""

from __future__ import annotations

import statistics

from repro.analysis import FigureTable, results_path
from repro.core.config import direct_config, mono_config, split_config
from conftest import bench_apps

PAPER_WINDOW_INSNS = 1_000_000_000

SCHEMES = [
    ("Split", split_config()),
    ("Mono8b", mono_config(8)),
    ("Mono16b", mono_config(16)),
    ("Mono32b", mono_config(32)),
    ("Mono64b", mono_config(64)),
    ("Direct", direct_config()),
]


def run_figure4(sims):
    apps = bench_apps()
    table = FigureTable(
        title="Figure 4: Normalized IPC, memory encryption schemes"
    )
    averages = {}
    mono8_reenc = {}
    for name, config in SCHEMES:
        values = []
        for app in apps:
            nipc = sims.normalized_ipc(app, config)
            table.set(name, app, nipc)
            values.append(nipc)
            if name == "Mono8b":
                run = sims.run(app, config)
                scheme = run.memory.scheme
                # extrapolate overflows to the paper's 1B-instruction window
                per_insn = scheme.fastest_counter() / run.instructions
                mono8_reenc[app] = per_insn * PAPER_WINDOW_INSNS / 256
        avg = statistics.mean(values)
        table.set(name, "Avg", avg)
        averages[name] = avg
    table.notes.append(
        "Mono8b full re-encryptions per 1B instructions (extrapolated): "
        + ", ".join(f"{a}={mono8_reenc[a]:.0f}" for a in apps
                    if mono8_reenc[a] >= 0.5)
    )
    return table, averages


def test_fig4_encryption_schemes(sims, benchmark):
    table, averages = benchmark.pedantic(
        lambda: run_figure4(sims), rounds=1, iterations=1
    )
    table.print()
    table.save(results_path("fig4_encryption.txt"))
    benchmark.extra_info.update(
        {name: round(avg, 4) for name, avg in averages.items()}
    )
    # Paper shape: Split ~ Mono8b, both beat Mono64b and Direct.
    assert abs(averages["Split"] - averages["Mono8b"]) < 0.03, (
        "split counters should perform like zero-cost Mono8b"
    )
    assert averages["Split"] > averages["Mono64b"] + 0.03
    assert averages["Split"] > averages["Direct"] + 0.03
    # Counter-cache reach ordering: smaller counters cache better.
    assert averages["Mono8b"] >= averages["Mono64b"]
