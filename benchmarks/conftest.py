"""Shared infrastructure for the figure/table reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation (section 6).  Simulation runs are cached per (app, config,
machine) within a pytest session so that e.g. the Figure 4 baseline runs
are reused by Figures 5-10.

Environment knobs:

* ``REPRO_TRACE_REFS``   — memory references per trace (default 80000)
* ``REPRO_WARMUP_REFS``  — cache warm-up prefix (default 30000)
* ``REPRO_BENCH_APPS``   — comma-separated app subset, or "all"
  (default: every app for the headline figures; each bench picks its own
  default subset mirroring the apps the paper plots individually)
"""

from __future__ import annotations

import os

import pytest

from repro.api import get_config
from repro.core.config import SecureMemoryConfig
from repro.sim.processor import SimResult, simulate
from repro.workloads.spec2k import SPEC_APPS, spec_trace
from repro.workloads.trace import Trace

TRACE_REFS = int(os.environ.get("REPRO_TRACE_REFS", "80000"))
WARMUP_REFS = int(os.environ.get("REPRO_WARMUP_REFS", "30000"))

#: the applications the paper plots individually in Figures 4/7/9
PLOTTED_APPS = (
    "ammp", "applu", "apsi", "art", "equake", "gap", "mcf", "mgrid",
    "parser", "swim", "twolf", "vortex", "vpr", "wupwise",
)


def bench_apps(default: tuple[str, ...] | None = None) -> tuple[str, ...]:
    """Resolve the app list for a bench, honouring REPRO_BENCH_APPS."""
    env = os.environ.get("REPRO_BENCH_APPS")
    if env:
        if env.strip().lower() == "all":
            return SPEC_APPS
        return tuple(a.strip() for a in env.split(",") if a.strip())
    return default if default is not None else SPEC_APPS


class SimulationCache:
    """Session-wide memoization of traces and simulation runs."""

    def __init__(self) -> None:
        self._traces: dict[str, Trace] = {}
        self._runs: dict[tuple, SimResult] = {}

    def trace(self, app: str) -> Trace:
        if app not in self._traces:
            self._traces[app] = spec_trace(app, TRACE_REFS)
        return self._traces[app]

    def run(self, app: str, config: SecureMemoryConfig,
            **kwargs) -> SimResult:
        key = (app, config, tuple(sorted(kwargs.items())))
        if key not in self._runs:
            self._runs[key] = simulate(config, self.trace(app),
                                       warmup_refs=WARMUP_REFS, **kwargs)
        return self._runs[key]

    def baseline(self, app: str, **kwargs) -> SimResult:
        return self.run(app, get_config("baseline"), **kwargs)

    def normalized_ipc(self, app: str, config: SecureMemoryConfig,
                       **kwargs) -> float:
        base = self.baseline(app, **kwargs)
        run = self.run(app, config, **kwargs)
        return run.ipc / base.ipc if base.ipc else 0.0


_CACHE = SimulationCache()


@pytest.fixture(scope="session")
def sims() -> SimulationCache:
    """The session-wide simulation cache."""
    return _CACHE
