"""Figure 9 — combined memory encryption + authentication.

The paper's headline result: Split+GCM has a 5% average IPC overhead,
versus 20% for the existing Mono+SHA combination (and XOM+SHA's direct
encryption is similar or worse).  Split counters contribute by nearly
halving the overhead of Mono+GCM; GCM contributes the bulk of the gain
over the SHA-based schemes.

The reproduction's absolute overheads are larger (its synthetic traces are
more memory-bound than SPEC on the paper's machine) but the ordering and
the roughly-4x overhead ratio between Split+GCM and Mono+SHA hold.
"""

from __future__ import annotations

import statistics

from repro.analysis import FigureTable, results_path
from repro.core.config import (
    mono_gcm_config,
    mono_sha_config,
    split_gcm_config,
    split_sha_config,
    xom_sha_config,
)
from conftest import bench_apps

SCHEMES = [
    ("Split+GCM", split_gcm_config()),
    ("Mono+GCM", mono_gcm_config()),
    ("Split+SHA", split_sha_config()),
    ("Mono+SHA", mono_sha_config()),
    ("XOM+SHA", xom_sha_config()),
]


def run_figure9(sims):
    apps = bench_apps()
    table = FigureTable(title="Figure 9: Normalized IPC, combined "
                              "encryption + authentication")
    averages = {}
    for name, config in SCHEMES:
        values = [sims.normalized_ipc(app, config) for app in apps]
        for app, v in zip(apps, values):
            table.set(name, app, v)
        averages[name] = statistics.mean(values)
        table.set(name, "Avg", averages[name])
    return table, averages


def test_fig9_combined_schemes(sims, benchmark):
    table, averages = benchmark.pedantic(
        lambda: run_figure9(sims), rounds=1, iterations=1
    )
    table.print()
    table.save(results_path("fig9_combined.txt"))
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in averages.items()}
    )
    # The proposed scheme wins outright.
    assert averages["Split+GCM"] == max(averages.values())
    # Split counters help GCM (paper: 8% -> 5% overhead).
    assert averages["Split+GCM"] > averages["Mono+GCM"] + 0.02
    # GCM is the bigger contributor: both GCM schemes beat both SHA ones.
    assert min(averages["Split+GCM"], averages["Mono+GCM"]) > max(
        averages["Split+SHA"], averages["Mono+SHA"]
    )
    # Headline factor: Split+GCM's overhead is several times smaller than
    # Mono+SHA's (paper: 5% vs 20%).
    overhead_new = 1.0 - averages["Split+GCM"]
    overhead_old = 1.0 - averages["Mono+SHA"]
    assert overhead_old > 2.0 * overhead_new, (
        f"expected the old scheme's overhead ({overhead_old:.3f}) to be "
        f">2x the new scheme's ({overhead_new:.3f})"
    )
