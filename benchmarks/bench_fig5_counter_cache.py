"""Figure 5 — sensitivity to counter-cache size (16KB .. 128KB).

Paper: the split scheme with a 16KB counter cache outperforms monolithic
64-bit counters with a 128KB cache — a split counter-cache block covers an
entire 4KB page (64 blocks at 1 byte each) while a mono-64b block covers
only 8 blocks, so the same capacity holds 8x the counter reach and the
smaller counters also need less fetch/write-back bandwidth.
"""

from __future__ import annotations

import statistics

from repro.analysis import FigureTable, results_path
from repro.core.config import mono_config, split_config
from repro.workloads.spec2k import MEMORY_BOUND
from conftest import bench_apps

SIZES_KB = (16, 32, 64, 128)


def run_figure5(sims):
    apps = bench_apps(MEMORY_BOUND)
    table = FigureTable(title="Figure 5: average normalized IPC vs "
                              "counter-cache size")
    averages = {}
    for scheme_name, factory in (("split", split_config),
                                 ("mono", mono_config)):
        for size_kb in SIZES_KB:
            if scheme_name == "mono":
                config = factory(64, counter_cache_size=size_kb * 1024)
            else:
                config = factory(counter_cache_size=size_kb * 1024)
            values = [sims.normalized_ipc(app, config) for app in apps]
            avg = statistics.mean(values)
            table.set(scheme_name, f"{size_kb}KB", avg)
            averages[(scheme_name, size_kb)] = avg
    return table, averages


def test_fig5_counter_cache_size(sims, benchmark):
    table, averages = benchmark.pedantic(
        lambda: run_figure5(sims), rounds=1, iterations=1
    )
    table.print()
    table.save(results_path("fig5_counter_cache.txt"))
    benchmark.extra_info.update(
        {f"{s}_{k}KB": round(v, 4) for (s, k), v in averages.items()}
    )
    # Monotonic: a larger counter cache never hurts either scheme.
    for scheme in ("split", "mono"):
        for small, large in zip(SIZES_KB, SIZES_KB[1:]):
            assert (averages[(scheme, large)]
                    >= averages[(scheme, small)] - 0.005)
    # Headline: split@16KB beats mono64@128KB.
    assert averages[("split", 16)] > averages[("mono", 128)], (
        "split counters with the smallest cache should beat monolithic "
        "counters with the largest"
    )
    # Split dominates mono at every size (it holds 8x the counters and
    # moves fewer bytes per fetch).
    for size_kb in SIZES_KB:
        assert averages[("split", size_kb)] > averages[("mono", size_kb)]
