"""Pipelined crypto-engine timing models."""

import pytest

from repro.engines import (
    AES_LATENCY_CYCLES,
    AESEngine,
    GHASHUnit,
    PipelinedEngine,
    SHA1_LATENCY_CYCLES,
    SHA1Engine,
)


class TestPipelinedEngine:
    def test_idle_request_completes_after_latency(self):
        engine = PipelinedEngine(latency=80, stages=16)
        assert engine.request(100.0) == 180.0

    def test_initiation_interval(self):
        engine = PipelinedEngine(latency=80, stages=16)
        assert engine.initiation_interval == 5.0
        engine.request(0.0)
        assert engine.request(0.0) == 85.0  # second op issues 5 later

    def test_pipelining_beats_serialization(self):
        engine = PipelinedEngine(latency=80, stages=16)
        done = engine.request_many(0.0, 4)
        assert done == 80 + 3 * 5  # far less than 4 * 80

    def test_second_engine_doubles_bandwidth(self):
        one = PipelinedEngine(latency=80, stages=16, copies=1)
        two = PipelinedEngine(latency=80, stages=16, copies=2)
        # issue 8 ops at t=0: the dual engine finishes sooner
        assert two.request_many(0.0, 8) < one.request_many(0.0, 8)

    def test_gap_resets_queue(self):
        engine = PipelinedEngine(latency=80, stages=16)
        engine.request(0.0)
        assert engine.request(1000.0) == 1080.0

    def test_stall_accounting(self):
        engine = PipelinedEngine(latency=10, stages=2)
        engine.request(0.0)
        engine.request(0.0)  # queues 5 cycles
        assert engine.stats.stall_cycles == 5.0
        assert engine.stats.operations == 2

    def test_reset(self):
        engine = PipelinedEngine(latency=10, stages=2)
        engine.request(0.0)
        engine.reset()
        assert engine.stats.operations == 0
        assert engine.request(0.0) == 10.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PipelinedEngine(latency=0, stages=1)
        with pytest.raises(ValueError):
            PipelinedEngine(latency=10, stages=0)


class TestPaperEngines:
    def test_aes_defaults_match_section5(self):
        engine = AESEngine()
        assert engine.latency == AES_LATENCY_CYCLES == 80
        assert engine.stages == 16

    def test_sha_defaults_match_section5(self):
        engine = SHA1Engine()
        assert engine.latency == SHA1_LATENCY_CYCLES == 320
        assert engine.stages == 32

    def test_sha_latency_sweep_configurable(self):
        assert SHA1Engine(latency=640).mac_block(0.0) == 640.0

    def test_block_pads_stream_through_pipeline(self):
        engine = AESEngine()
        assert engine.generate_block_pads(0.0, 4) == 95.0


class TestGHASHUnit:
    def test_overlapped_pad_costs_five_cycles(self):
        """Pad ready before data arrives: tag = arrival + 4 chunks + XOR,
        the paper's core GCM latency claim."""
        unit = GHASHUnit()
        assert unit.hash_block(data_ready=1000.0, pad_ready=500.0) == 1005.0

    def test_late_pad_dominates(self):
        unit = GHASHUnit()
        assert unit.hash_block(data_ready=1000.0, pad_ready=2000.0) == 2001.0
