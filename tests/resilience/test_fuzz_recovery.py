"""Fuzz-harness recovery mode: the adversary proving recovery works."""

import pytest

from repro.testing import FaultKind, FaultOutcome, Scenario, run_scenario
from repro.testing.fuzz import (
    FAULT_ROTATION,
    FAULT_ROTATION_RECOVERY,
    run_fuzz,
)
from repro.testing.schedule import generate_scenario

PRESETS_UNDER_TEST = ["split+gcm", "mono+gcm"]


def _transient(preset, seed, recovery="halt"):
    return generate_scenario(preset, seed,
                             fault_kind=FaultKind.TRANSIENT_FLIP,
                             recovery=recovery)


class TestScenarioRecoveryField:
    def test_roundtrips_through_dict(self):
        scenario = _transient("split+gcm", 5)
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario
        assert clone.recovery == "halt"
        assert clone.fault.kind is FaultKind.TRANSIENT_FLIP
        assert clone.fault.duration in (1, 2, 3)

    def test_persistent_kinds_keep_existing_rng_stream(self):
        # the duration draw must not shift seeds for non-transient kinds
        with_recovery = generate_scenario(
            "split+gcm", 123, fault_kind=FaultKind.BIT_FLIP,
            recovery="halt")
        legacy = generate_scenario("split+gcm", 123,
                                   fault_kind=FaultKind.BIT_FLIP)
        assert with_recovery.ops == legacy.ops
        assert with_recovery.fault_at == legacy.fault_at
        assert with_recovery.fault.bits == legacy.fault.bits


class TestRecoveryOutcomes:
    def test_transient_recovered_with_recovery_enabled(self):
        outcomes = set()
        for seed in range(8):
            result = run_scenario(_transient("split+gcm", seed))
            outcomes.add(result.outcome)
            assert result.outcome in (FaultOutcome.RECOVERED,
                                      FaultOutcome.NEUTRALIZED,
                                      FaultOutcome.NOT_TRIGGERED)
        assert FaultOutcome.RECOVERED in outcomes

    def test_transient_detected_without_recovery(self):
        # same glitches, recovery off: the violation escapes as a detection
        outcomes = set()
        for seed in range(8):
            scenario = _transient("split+gcm", seed, recovery=None)
            outcomes.add(run_scenario(scenario).outcome)
        assert FaultOutcome.DETECTED in outcomes

    @pytest.mark.parametrize("policy", ["halt", "quarantine_page"])
    def test_persistent_fault_still_detected_under_recovery(self, policy):
        detected = 0
        for seed in range(6):
            scenario = generate_scenario("split+gcm", seed,
                                         fault_kind=FaultKind.BIT_FLIP,
                                         recovery=policy)
            result = run_scenario(scenario)
            assert result.outcome in (FaultOutcome.DETECTED,
                                      FaultOutcome.NEUTRALIZED,
                                      FaultOutcome.NOT_TRIGGERED)
            detected += result.outcome is FaultOutcome.DETECTED
        assert detected > 0


class TestFuzzRecoveryMode:
    def test_rotation_interleaves_transients(self):
        assert FaultKind.TRANSIENT_FLIP in FAULT_ROTATION_RECOVERY
        assert FaultKind.TRANSIENT_FLIP not in FAULT_ROTATION
        persistent = {kind for kind in FAULT_ROTATION_RECOVERY
                      if kind is not FaultKind.TRANSIENT_FLIP}
        assert persistent == set(FAULT_ROTATION)

    @pytest.mark.parametrize("policy", ["halt", "quarantine_page"])
    def test_recovery_campaign_is_clean(self, policy):
        report = run_fuzz(campaigns=6, seed=3, recover=policy,
                          presets=PRESETS_UNDER_TEST)
        assert report.ok
        assert report.recovered > 0
        assert report.unrecovered_transient == 0
        assert report.missed == 0 and report.spurious == 0
        assert report.to_dict()["recover"] == policy

    def test_report_counts_recovered_as_injected(self):
        report = run_fuzz(campaigns=4, seed=1, recover="halt",
                          presets=["split+gcm"])
        tallied = (report.detected + report.recovered + report.neutralized
                   + report.unprotected + report.missed)
        assert tallied == report.injected

    def test_timeout_marks_partial_report(self):
        report = run_fuzz(campaigns=10_000, seed=0, timeout=1e-6,
                          presets=["split+gcm"])
        assert report.timed_out
        assert report.scenarios_run == 0
        assert report.to_dict()["timed_out"] is True

    def test_baseline_rotation_unchanged_without_recover(self):
        report = run_fuzz(campaigns=3, seed=0, presets=["split+gcm"])
        assert report.ok
        assert report.recovered == 0
        assert not report.timed_out
