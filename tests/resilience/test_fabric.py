"""Fabric tests: lease protocol, manifest lifecycle, distributed runs.

The lease/manifest/result units are pure file manipulation (fast); the
end-to-end runs use tiny cells so real spawn-isolated workers stay cheap
on a one-core CI box.
"""

import json
import os
import time

import pytest

from repro.resilience.checkpoint import CheckpointError, atomic_write_json
from repro.resilience.fabric import (
    FabricSettings,
    QueuePaths,
    _load_result,
    _try_claim,
    cell_id,
    init_queue,
    lease_is_stale,
    read_events,
    run_fabric,
)
from repro.resilience.runner import (
    SWEEP_SCHEMA,
    SweepCell,
    load_sweep_report,
    run_many,
)

REFS = 1_500          # one cell finishes in well under a second


def tiny_cells():
    return [SweepCell("split", "swim", refs=REFS),
            SweepCell("split", "gzip", refs=REFS)]


class TestFabricSettings:
    def test_roundtrip(self):
        settings = FabricSettings(parallelism=3, lease_ttl=5.0,
                                  heartbeat_interval=1.0)
        assert FabricSettings.from_dict(settings.to_dict()) == settings

    def test_rejects_bad_parallelism(self):
        with pytest.raises(ValueError, match="parallelism"):
            FabricSettings(parallelism=0)

    def test_rejects_ttl_inside_two_heartbeats(self):
        with pytest.raises(ValueError, match="lease_ttl"):
            FabricSettings(heartbeat_interval=1.0, lease_ttl=2.0)


class TestCellId:
    def test_stable_and_filesystem_safe(self):
        cell = SweepCell("split+gcm", "mcf", refs=10)
        assert cell_id(3, cell) == "0003-split-gcm-mcf"
        assert "/" not in cell_id(0, cell)


class TestLeaseStaleness:
    def test_fresh_lease_is_not_stale(self):
        now = time.time()
        assert not lease_is_stale({"heartbeat": now - 1}, now, now, ttl=10)

    def test_expired_heartbeat_is_stale(self):
        now = time.time()
        assert lease_is_stale({"heartbeat": now - 11}, now, now, ttl=10)

    def test_future_dated_heartbeat_is_stale_too(self):
        # clock-skew defense: a heartbeat from the future must not park
        # the cell forever
        now = time.time()
        assert lease_is_stale({"heartbeat": now + 11}, now, now, ttl=10)

    def test_unreadable_lease_falls_back_to_mtime(self):
        now = time.time()
        assert lease_is_stale(None, now - 60, now, ttl=10)
        assert not lease_is_stale(None, now - 1, now, ttl=10)


class TestClaimProtocol:
    def test_exclusive_claim(self, tmp_path):
        paths = QueuePaths(str(tmp_path))
        paths.ensure()
        claimed, reclaimed = _try_claim(paths, "c0", "w0", "n0", ttl=10)
        assert claimed and not reclaimed
        claimed, _ = _try_claim(paths, "c0", "w1", "n1", ttl=10)
        assert not claimed

    def test_stale_lease_is_reclaimed(self, tmp_path):
        paths = QueuePaths(str(tmp_path))
        paths.ensure()
        atomic_write_json(paths.lease("c0"),
                          {"worker": "dead", "nonce": "x",
                           "heartbeat": time.time() - 3600})
        claimed, reclaimed = _try_claim(paths, "c0", "w1", "n1", ttl=10)
        assert claimed and reclaimed


class TestQueueLifecycle:
    def test_fresh_queue_writes_manifest(self, tmp_path):
        entries = init_queue(str(tmp_path), tiny_cells(), FabricSettings())
        assert [cid for cid, _ in entries] == ["0000-split-swim",
                                               "0001-split-gzip"]
        assert os.path.isfile(QueuePaths(str(tmp_path)).manifest)

    def test_identical_cells_join_existing_manifest(self, tmp_path):
        init_queue(str(tmp_path), tiny_cells(), FabricSettings())
        entries = init_queue(str(tmp_path), tiny_cells(), FabricSettings())
        assert len(entries) == 2

    def test_different_cells_refuse_to_mix(self, tmp_path):
        init_queue(str(tmp_path), tiny_cells(), FabricSettings())
        with pytest.raises(CheckpointError, match="different"):
            init_queue(str(tmp_path), [SweepCell("baseline")],
                       FabricSettings())

    def test_resume_adopts_manifest_ignoring_caller_cells(self, tmp_path):
        init_queue(str(tmp_path), tiny_cells(), FabricSettings())
        entries = init_queue(str(tmp_path), [SweepCell("baseline")],
                             FabricSettings(), resume=True)
        assert len(entries) == 2

    def test_resume_without_manifest_fails(self, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to resume"):
            init_queue(str(tmp_path), [], FabricSettings(), resume=True)


class TestResultQuarantine:
    def test_torn_result_is_quarantined_and_treated_absent(self, tmp_path):
        paths = QueuePaths(str(tmp_path))
        paths.ensure()
        with open(paths.result("c0"), "w", encoding="utf-8") as handle:
            handle.write('{"status": "ok", "cel')       # torn mid-write
        assert _load_result(paths, "c0", quarantine_by="t") is None
        assert os.path.exists(paths.result("c0") + ".corrupt")
        assert not os.path.exists(paths.result("c0"))
        events = read_events(str(tmp_path))
        assert any(e["event"] == "result_quarantined" for e in events)

    def test_wrong_status_vocabulary_is_invalid(self, tmp_path):
        paths = QueuePaths(str(tmp_path))
        paths.ensure()
        atomic_write_json(paths.result("c0"),
                          {"cell": {}, "status": "winning"})
        assert _load_result(paths, "c0", quarantine_by="t") is None


class TestReportSchema:
    def test_v2_reports_carry_schema_and_new_fields(self, tmp_path):
        report = run_many([SweepCell("split", "swim", refs=REFS)])
        payload = report.to_dict()
        assert payload["schema"] == SWEEP_SCHEMA
        cell = payload["cells"][0]
        assert cell["worker_id"] is None          # serial runner
        assert cell["resumed_from_checkpoint"] is False

    def test_v1_report_still_loads(self, tmp_path):
        path = str(tmp_path / "v1.json")
        v1 = {"cells": [{"cell": {"scheme": "split"}, "status": "ok",
                         "attempts": 1}],
              "counts": {"ok": 1}, "interrupted": False, "ok": True}
        atomic_write_json(path, v1)
        loaded = load_sweep_report(path)
        assert loaded["schema"] == "repro-sweep/1"
        assert loaded["cells"][0]["worker_id"] is None
        assert loaded["cells"][0]["resumed_from_checkpoint"] is False

    def test_unknown_schema_is_rejected(self, tmp_path):
        path = str(tmp_path / "future.json")
        atomic_write_json(path, {"schema": "repro-sweep/99", "cells": []})
        with pytest.raises(CheckpointError, match="unsupported schema"):
            load_sweep_report(path)


class TestRunManyDispatch:
    def test_rejects_bad_parallelism(self):
        with pytest.raises(ValueError, match="parallelism"):
            run_many([], parallelism=0)

    def test_resume_requires_queue_dir(self):
        with pytest.raises(ValueError, match="queue_dir"):
            run_many([], resume=True)


class TestFabricEndToEnd:
    def test_parallel_run_matches_serial_and_streams_report(self, tmp_path):
        cells = tiny_cells()
        queue = str(tmp_path / "queue")
        out = str(tmp_path / "report.json")
        report = run_fabric(cells, queue_dir=queue, parallelism=2,
                            heartbeat_interval=0.2, lease_ttl=2.0,
                            checkpoint_refs=500, out_path=out)
        assert report.ok
        assert report.counts() == {"ok": 2}
        payload = report.to_dict()
        assert payload["schema"] == SWEEP_SCHEMA
        for cell in payload["cells"]:
            assert cell["worker_id"] is not None
            assert cell["attempts"] >= 1
        metrics = payload["fabric"]["metrics"]
        assert metrics["fabric.cells_total"] == 2
        assert metrics["fabric.cells_completed"] == 2
        assert metrics["fabric.cells_leased"] >= 2
        # the streamed report re-parses and matches the returned one
        streamed = load_sweep_report(out)
        assert streamed["counts"] == {"ok": 2}
        # every cell left a journal trail, results dir holds both verdicts
        names = {event["event"] for event in read_events(queue)}
        assert {"worker_started", "cell_claimed", "cell_started",
                "cell_finished", "worker_stopped"} <= names
        # simulation payloads are bit-identical to the serial runner's
        serial = run_many(cells)
        assert ([cell.result for cell in serial.cells]
                == [cell.result for cell in report.cells])

    def test_resume_skips_published_results_wholesale(self, tmp_path):
        cells = tiny_cells()
        queue = str(tmp_path / "queue")
        first = run_fabric(cells, queue_dir=queue, parallelism=2,
                           heartbeat_interval=0.2, lease_ttl=2.0,
                           checkpoint_refs=500)
        assert first.ok
        started_before = sum(
            1 for event in read_events(queue)
            if event["event"] == "cell_started")
        second = run_fabric([], queue_dir=queue, parallelism=1,
                            heartbeat_interval=0.2, lease_ttl=2.0,
                            checkpoint_refs=500, resume=True)
        assert second.ok
        assert json.dumps([cell.result for cell in first.cells]) \
            == json.dumps([cell.result for cell in second.cells])
        started_after = sum(
            1 for event in read_events(queue)
            if event["event"] == "cell_started")
        assert started_after == started_before   # nothing re-executed

    def test_run_many_facade_routes_through_fabric(self, tmp_path):
        queue = str(tmp_path / "queue")
        report = run_many([SweepCell("split", "swim", refs=REFS)],
                          parallelism=2, queue_dir=queue,
                          heartbeat_interval=0.2, lease_ttl=2.0,
                          checkpoint_refs=500)
        assert report.ok
        assert report.fabric is not None
        assert report.cells[0].worker_id is not None
