"""Chaos harness acceptance: kills, stale/skewed leases, torn results.

The ISSUE's headline criterion lives here: SIGKILL a worker mid-cell,
resume, and the final report is byte-identical (modulo timing/attempt
metadata) to an uninterrupted serial ``run_many`` of the same manifest —
with checkpointed cells resuming mid-simulation rather than rerunning
from scratch, and no completed cell executed twice.
"""

import os

from repro.resilience.fabric import QueuePaths, read_events, run_fabric
from repro.resilience.runner import SweepCell, run_many
from repro.testing import (
    ChaosPlan,
    assert_chaos_equivalent,
    assert_no_duplicate_completions,
    attempt_counts,
    normalize_report,
)

REFS = 3_000          # > checkpoint cadence, so kills land mid-simulation
CKPT = 500


def chaos_cells():
    # inject metadata rides in the cell dicts of BOTH runs, so the serial
    # reference (which ignores fabric-only kinds) stays byte-comparable
    return [SweepCell("split", "swim", refs=REFS, inject="kill9:1"),
            SweepCell("split", "gzip", refs=REFS, inject="killworker:1"),
            SweepCell("baseline", "swim", refs=REFS)]


class TestKillChaos:
    def test_sigkilled_workers_resume_and_match_serial(self, tmp_path):
        queue = str(tmp_path / "queue")
        serial = run_many(chaos_cells())
        assert serial.ok

        chaotic = run_fabric(chaos_cells(), queue_dir=queue, parallelism=2,
                             heartbeat_interval=0.2, lease_ttl=1.0,
                             checkpoint_refs=CKPT, retries=2)
        assert chaotic.ok, chaotic.to_dict()

        # headline: byte-identical modulo timing/attempt metadata
        assert_chaos_equivalent(serial, chaotic)
        # no completed (published) cell ever executed twice
        assert_no_duplicate_completions(queue)

        by_inject = {cell.cell.inject: cell for cell in chaotic.cells}
        # kill9: the cell child was SIGKILLed after its first checkpoint,
        # retried in-worker, and resumed from that checkpoint — it must
        # NOT have rerun from scratch
        assert by_inject["kill9:1"].resumed_from_checkpoint
        assert by_inject["kill9:1"].attempts >= 2
        # killworker: the whole worker died, the lease went stale, was
        # reclaimed, and the next owner resumed the checkpoint
        assert by_inject["killworker:1"].resumed_from_checkpoint
        assert by_inject["killworker:1"].attempts >= 2
        # the untouched cell ran exactly once
        assert by_inject[None].attempts == 1
        assert not by_inject[None].resumed_from_checkpoint

        names = {event["event"] for event in read_events(queue)}
        assert "lease_reclaimed" in names        # killworker's lease
        metrics = chaotic.fabric["metrics"]
        assert metrics["fabric.cells_reclaimed"] >= 1
        assert metrics["fabric.cells_resumed"] >= 2
        assert metrics["fabric.worker_restarts"] >= 1

        # kill injects fire on the first overall attempt only (the
        # attempt counter is persistent), so the chaos is deterministic:
        # nothing is still crashing by the time the report lands
        counts = attempt_counts(queue)
        assert all(count <= 3 for count in counts.values()), counts


class TestFileVandalism:
    def test_torn_results_and_bad_leases_survive_resume(self, tmp_path):
        queue = str(tmp_path / "queue")
        cells = [SweepCell("split", "swim", refs=1_500),
                 SweepCell("split", "gzip", refs=1_500),
                 SweepCell("baseline", "swim", refs=1_500)]
        serial = run_many(cells)
        first = run_fabric(cells, queue_dir=queue, parallelism=2,
                           heartbeat_interval=0.2, lease_ttl=1.0,
                           checkpoint_refs=CKPT)
        assert first.ok
        started_before = attempt_counts(queue)

        # vandalize the queue the one way the fabric never would: torn
        # (non-atomic) result writes, plus leases from a dead worker and
        # a clock-skewed one guarding the now-resultless cells
        plan = (ChaosPlan()
                .tear_result("0000-split-swim")
                .orphan_lease("0000-split-swim")
                .tear_result("0001-split-gzip")
                .skew_lease("0001-split-gzip"))
        plan.apply(queue)

        second = run_fabric([], queue_dir=queue, parallelism=1,
                            heartbeat_interval=0.2, lease_ttl=1.0,
                            checkpoint_refs=CKPT, resume=True)
        assert second.ok, second.to_dict()
        # the final report is still exactly the serial run's
        assert_chaos_equivalent(serial, second)
        # both torn results were quarantined, not trusted or crashed on
        assert len(plan.quarantined(queue)) == 2
        # both planted leases were reclaimed (stale + future-dated)
        events = read_events(queue)
        assert sum(1 for e in events
                   if e["event"] == "lease_reclaimed") >= 2
        assert sum(1 for e in events
                   if e["event"] == "result_quarantined") >= 2
        # the intact cell was skipped wholesale: zero new attempts
        after = attempt_counts(queue)
        assert after["0002-baseline-swim"] \
            == started_before["0002-baseline-swim"]
        # the vandalized cells re-ran exactly once each
        assert after["0000-split-swim"] \
            == started_before["0000-split-swim"] + 1
        assert after["0001-split-gzip"] \
            == started_before["0001-split-gzip"] + 1


class TestNormalizeReport:
    def test_strips_only_volatile_metadata(self, tmp_path):
        report = run_many([SweepCell("split", "swim", refs=1_500)])
        normalized = normalize_report(report)
        assert "elapsed" not in normalized
        assert "worker_id" not in normalized
        assert '"status":"ok"' in normalized.replace(" ", "")
        # accepts dict form (a report loaded back from disk) identically
        assert normalize_report(report.to_dict()) == normalized

    def test_v1_and_v2_shapes_compare_equal(self):
        v2 = {"schema": "repro-sweep/2", "interrupted": False, "ok": True,
              "counts": {"ok": 1}, "fabric": {"x": 1},
              "cells": [{"cell": {"scheme": "s"}, "status": "ok",
                         "attempts": 3, "elapsed": 9.9, "error": None,
                         "result": {"ipc": 1.0}, "retried": True,
                         "worker_id": "w0", "resumed_from_checkpoint": True}]}
        v1 = {"interrupted": False, "ok": True, "counts": {"ok": 1},
              "cells": [{"cell": {"scheme": "s"}, "status": "ok",
                         "attempts": 1, "elapsed": 0.1, "error": None,
                         "result": {"ipc": 1.0}, "retried": False}]}
        assert normalize_report(v1) == normalize_report(v2)
