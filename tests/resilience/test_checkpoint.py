"""Checkpoint container tests: codec, integrity, cross-preset round trips."""

import random

import pytest

from repro.core.config import PRESETS, RecoveryConfig, RecoveryPolicy
from repro.core.secure_memory import SecureMemorySystem
from repro.resilience import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    checkpoint_system,
    config_from_state,
    config_state,
    dumps,
    load_checkpoint,
    loads,
    restore_system,
    save_checkpoint,
    trace_digest,
)
from repro.workloads import spec_trace

PROTECTED = 64 * 1024


class TestCodec:
    CASES = [
        None, True, False, 0, -17, 3.5, float("inf"), "text", b"",
        b"\x00\xffbytes", bytearray(b"\x01\x02"), (1, "two", b"\x03"),
        {1: "int-keyed", (2, 3): "tuple-keyed"},
        {"plain": {"nested": [1, 2, {"deep": b"\xaa"}]}},
        {(0, 1), (2, 3)}, frozenset({"a", "b"}),
        [1, [2, [3, (4,)]]],
    ]

    @pytest.mark.parametrize("value", CASES,
                             ids=[repr(c)[:40] for c in CASES])
    def test_value_roundtrip(self, value):
        blob = dumps(value, kind="test")
        out = loads(blob, kind="test")
        if isinstance(value, frozenset):
            assert out == set(value)     # sets come back as plain sets
        else:
            assert out == value
            assert type(out) is type(value) or isinstance(value, bool)

    def test_save_load_save_is_byte_identical(self):
        payload = {"blocks": {0: b"\x01" * 8, 64: b"\x02" * 8},
                   "written": {(0, 1), (2, 3)}, "epoch": 4,
                   "ratio": 0.1 + 0.2}
        blob = dumps(payload, kind="test")
        assert dumps(loads(blob, kind="test"), kind="test") == blob

    def test_rejects_unencodable(self):
        with pytest.raises(CheckpointError, match="cannot checkpoint"):
            dumps({"bad": object()}, kind="test")

    def test_container_layout(self):
        blob = dumps({"x": 1}, kind="test")
        assert blob.startswith(CHECKPOINT_MAGIC)
        assert len(blob) > len(CHECKPOINT_MAGIC) + 8 + 32

    def test_detects_bad_magic(self):
        blob = b"NOTCKPT!" + dumps({}, kind="t")[8:]
        with pytest.raises(CheckpointError, match="magic"):
            loads(blob)

    def test_detects_truncation(self):
        blob = dumps({"x": list(range(100))}, kind="t")
        with pytest.raises(CheckpointError, match="truncated"):
            loads(blob[:-3])

    def test_detects_payload_corruption(self):
        blob = bytearray(dumps({"x": list(range(100))}, kind="t"))
        blob[-1] ^= 0x40
        with pytest.raises(CheckpointError, match="digest"):
            loads(bytes(blob))

    def test_detects_kind_mismatch(self):
        blob = dumps({}, kind="system")
        with pytest.raises(CheckpointError, match="kind"):
            loads(blob, kind="simulation")

    def test_save_load_checkpoint_file(self, tmp_path):
        path = str(tmp_path / "state.ckpt")
        save_checkpoint(path, dumps({"v": 9}, kind="t"))
        assert load_checkpoint(path, kind="t") == {"v": 9}


class TestConfigState:
    @pytest.mark.parametrize("name", list(PRESETS))
    def test_roundtrip_every_preset(self, name):
        config = PRESETS[name]
        assert config_from_state(config_state(config)) == config

    def test_roundtrip_with_recovery_enabled(self):
        config = PRESETS["split+gcm"].with_updates(
            recovery=RecoveryConfig(
                enabled=True, policy=RecoveryPolicy.QUARANTINE_PAGE,
                max_retries=5, seed=11))
        assert config_from_state(config_state(config)) == config

    def test_state_is_checkpointable(self):
        state = config_state(PRESETS["split+gcm"])
        assert loads(dumps(state, kind="t"), kind="t") == state


class TestTraceDigest:
    def test_stable_and_distinguishing(self):
        one = spec_trace("swim", 2000)
        again = spec_trace("swim", 2000)
        other = spec_trace("mcf", 2000)
        assert trace_digest(one) == trace_digest(again)
        assert trace_digest(one) != trace_digest(other)


def _exercised_system(name: str) -> SecureMemorySystem:
    system = SecureMemorySystem(PRESETS[name], protected_bytes=PROTECTED,
                                l2_size=2 * 1024, l2_assoc=2)
    rng = random.Random(hash(name) & 0xFFFF)
    block = system.block_size
    addresses = [index * block
                 for index in rng.sample(range(PROTECTED // block), 12)]
    for address in addresses:
        system.write_block(address,
                           bytes((address + i) & 0xFF for i in range(block)))
    system.flush()
    for address in addresses[:6]:
        system.read_block(address)
    return system


class TestSystemCheckpoint:
    @pytest.mark.parametrize("name", list(PRESETS))
    def test_roundtrip_byte_identical_every_preset(self, name):
        """save → load → save reproduces the identical byte stream."""
        original = _exercised_system(name)
        blob = checkpoint_system(original)
        restored = SecureMemorySystem(PRESETS[name],
                                      protected_bytes=PROTECTED,
                                      l2_size=2 * 1024, l2_assoc=2)
        restore_system(restored, blob)
        assert checkpoint_system(restored) == blob

    def test_restored_system_reads_identically(self):
        original = _exercised_system("split+gcm")
        blob = checkpoint_system(original)
        restored = SecureMemorySystem(PRESETS["split+gcm"],
                                      protected_bytes=PROTECTED,
                                      l2_size=2 * 1024, l2_assoc=2)
        restore_system(restored, blob)
        block = original.block_size
        for index in range(0, PROTECTED // block, 7):
            address = index * block
            assert original.read_block(address) == restored.read_block(address)

    def test_rejects_config_mismatch(self):
        blob = checkpoint_system(_exercised_system("split+gcm"))
        other = SecureMemorySystem(PRESETS["mono+gcm"],
                                   protected_bytes=PROTECTED,
                                   l2_size=2 * 1024, l2_assoc=2)
        with pytest.raises(CheckpointError, match="configuration"):
            restore_system(other, blob)
