"""Recovery-controller unit tests plus the end-to-end differential proof.

The differential proof is the tentpole's acceptance criterion: a run that
suffers a *transient* integrity fault and recovers must end in exactly the
state of a fault-free run (same plaintext everywhere, same DRAM image),
while a *persistent* tamper must end in the configured policy's loud
verdict — never silently wrong data.
"""

import random

import pytest

from repro.auth.merkle import IntegrityViolation
from repro.core.config import (
    PRESETS,
    RecoveryConfig,
    RecoveryPolicy,
)
from repro.core.secure_memory import SecureMemorySystem
from repro.resilience import (
    QuarantinedPageError,
    RecoveryController,
    RecoveryHalted,
    backoff_delay,
)
from repro.testing import FaultKind, FaultSpec
from repro.testing.faults import AdversarialDRAM

PROTECTED = 64 * 1024
BLOCK = 64


def _recovery_config(**overrides):
    defaults = dict(enabled=True, policy=RecoveryPolicy.HALT, max_retries=3)
    defaults.update(overrides)
    return RecoveryConfig(**defaults)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        config = _recovery_config(backoff_base_cycles=100.0,
                                  backoff_factor=2.0, jitter_fraction=0.0)
        rng = random.Random(0)
        delays = [backoff_delay(config, attempt, rng)
                  for attempt in (1, 2, 3)]
        assert delays == [100.0, 200.0, 400.0]

    def test_jitter_stays_within_fraction(self):
        config = _recovery_config(backoff_base_cycles=100.0,
                                  backoff_factor=1.0, jitter_fraction=0.25)
        rng = random.Random(7)
        for attempt in range(1, 20):
            delay = backoff_delay(config, attempt, rng)
            assert 75.0 <= delay <= 125.0

    def test_deterministic_from_seed(self):
        config = _recovery_config(jitter_fraction=0.5)
        first = [backoff_delay(config, k, random.Random(3))
                 for k in (1, 2, 3)]
        second = [backoff_delay(config, k, random.Random(3))
                  for k in (1, 2, 3)]
        assert first == second


class TestRecoveryConfigValidation:
    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            RecoveryConfig(max_retries=-1)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError, match="backoff_factor"):
            RecoveryConfig(backoff_factor=0.5)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError, match="jitter_fraction"):
            RecoveryConfig(jitter_fraction=1.0)


class _FlakyBlock:
    """A reread source that returns garbage for ``bad_reads`` reads."""

    def __init__(self, good: bytes, bad_reads: int):
        self.good = good
        self.bad_reads = bad_reads
        self.reads = 0

    def reread(self) -> bytes:
        self.reads += 1
        if self.reads <= self.bad_reads:
            return b"\xff" * len(self.good)
        return self.good

    def verify(self, image: bytes) -> None:
        if image != self.good:
            raise IntegrityViolation(kind="leaf", address=0)


def _recover(controller, flaky):
    return controller.recover(
        address=0x1000, label="data",
        violation=IntegrityViolation(kind="leaf", address=0x1000),
        reread=flaky.reread, verify=flaky.verify)


class TestRecoveryController:
    def test_transient_fault_recovers(self):
        controller = RecoveryController(_recovery_config())
        flaky = _FlakyBlock(b"\xab" * BLOCK, bad_reads=2)
        image = _recover(controller, flaky)
        assert image == flaky.good
        stats = controller.stats
        assert stats.transient_recoveries == 1
        assert stats.retries == 3
        assert stats.persistent_faults == 0
        assert stats.backoff_cycles > 0
        assert controller.events[-1].verdict == "transient"

    def test_persistent_fault_halts(self):
        controller = RecoveryController(_recovery_config(max_retries=2))
        flaky = _FlakyBlock(b"\xab" * BLOCK, bad_reads=99)
        with pytest.raises(RecoveryHalted) as excinfo:
            _recover(controller, flaky)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value, IntegrityViolation)
        assert controller.stats.persistent_faults == 1
        assert controller.stats.halts == 1

    def test_persistent_fault_quarantines_page(self):
        controller = RecoveryController(
            _recovery_config(policy=RecoveryPolicy.QUARANTINE_PAGE),
            page_bytes=4096)
        flaky = _FlakyBlock(b"\xab" * BLOCK, bad_reads=99)
        with pytest.raises(QuarantinedPageError):
            _recover(controller, flaky)
        assert controller.stats.quarantined_pages == 1
        with pytest.raises(QuarantinedPageError):
            controller.check_fence(0x1000)
        with pytest.raises(QuarantinedPageError):
            controller.check_fence(0x1fff)   # same 4 KiB page
        controller.check_fence(0x2000)       # next page unaffected

    def test_persistent_fault_degrades(self):
        controller = RecoveryController(
            _recovery_config(policy=RecoveryPolicy.DEGRADE, max_retries=1))
        flaky = _FlakyBlock(b"\xab" * BLOCK, bad_reads=99)
        image = _recover(controller, flaky)
        assert image == b"\xff" * BLOCK      # unverified data, by contract
        assert controller.stats.degraded_accesses == 1
        assert controller.events[-1].verdict == "persistent"
        assert 0x1000 in controller.degraded

    def test_state_roundtrip_preserves_rng_stream(self):
        config = _recovery_config(jitter_fraction=0.5)
        first = RecoveryController(config)
        flaky = _FlakyBlock(b"\xab" * BLOCK, bad_reads=1)
        _recover(first, flaky)
        clone = RecoveryController(config)
        clone.load_state(first.state_dict())
        assert clone.state_dict() == first.state_dict()
        follow_a = _recover(first, _FlakyBlock(b"\xcd" * BLOCK, 2))
        follow_b = _recover(clone, _FlakyBlock(b"\xcd" * BLOCK, 2))
        assert follow_a == follow_b
        assert first.stats.backoff_cycles == clone.stats.backoff_cycles


class TestIntegrityViolationDetail:
    """The satellite: violations must say what failed, where, and how."""

    def test_leaf_violation_message(self):
        exc = IntegrityViolation(kind="leaf", address=0x2b40, leaf_index=7,
                                 counter=42, expected=b"\x01\x02",
                                 actual=b"\xaa\xbb")
        text = str(exc)
        assert "0x2b40" in text
        assert "leaf 7" in text
        assert "counter 42" in text
        assert "0102" in text and "aabb" in text

    def test_node_violation_message(self):
        exc = IntegrityViolation(kind="node", level=2, index=5,
                                 expected=b"\x0f", actual=b"\xf0")
        text = str(exc)
        assert "level 2" in text
        assert "index 5" in text
        assert "0f" in text and "f0" in text

    def test_plain_message_still_works(self):
        assert str(IntegrityViolation("custom text")) == "custom text"

    def test_fields_are_preserved(self):
        exc = IntegrityViolation(kind="leaf", address=0x40,
                                 expected=b"\x01", actual=b"\x02")
        assert exc.address == 0x40
        assert exc.expected == b"\x01"
        assert exc.actual == b"\x02"
        assert exc.kind == "leaf"


# -- end-to-end through the secure-memory system ------------------------------


def _adversarial_system(policy=RecoveryPolicy.HALT, preset="split+gcm"):
    config = PRESETS[preset].with_updates(
        counter_cache_size=64, counter_cache_assoc=1,
        node_cache_size=256, node_cache_assoc=2, minor_bits=3,
        recovery=RecoveryConfig(enabled=True, policy=policy, max_retries=3),
    )
    holder = []

    def factory(**kwargs):
        device = AdversarialDRAM(rng=random.Random(99), **kwargs)
        holder.append(device)
        return device

    system = SecureMemorySystem(config, protected_bytes=PROTECTED,
                                l2_size=2 * 1024, l2_assoc=2,
                                dram_factory=factory)
    device = holder[0]
    device.set_layout(system.protected_bytes, system._code_region_base,
                      device.size_bytes)
    return system, device


def _populate(system, count=10):
    addresses = [index * 8 * BLOCK for index in range(count)]
    for address in addresses:
        system.write_block(address,
                           bytes((address // BLOCK + i) & 0xFF
                                 for i in range(BLOCK)))
    system.flush()
    for address, _ in list(system.l2.resident_blocks()):
        system.l2.invalidate(address)
    return addresses


def _dram_digest(device):
    import hashlib

    digest = hashlib.sha256()
    for address in sorted(device._blocks):
        digest.update(address.to_bytes(8, "big"))
        digest.update(bytes(device._blocks[address]))
    return digest.hexdigest()


class TestEndToEndRecovery:
    def test_transient_fault_recovered_matches_fault_free_run(self):
        """The differential proof: recovered run == fault-free run."""
        faulty_sys, faulty_dev = _adversarial_system()
        clean_sys, clean_dev = _adversarial_system()
        addresses = _populate(faulty_sys)
        assert _populate(clean_sys) == addresses

        event = faulty_dev.fire_now(
            FaultSpec(kind=FaultKind.TRANSIENT_FLIP, bits=3, duration=2))
        assert event is not None
        assert event.spec.kind is FaultKind.TRANSIENT_FLIP

        for address in addresses:
            assert (faulty_sys.read_block(address)
                    == clean_sys.read_block(address))
        assert faulty_sys.recovery.stats.transient_recoveries >= 1
        assert faulty_sys.recovery.stats.persistent_faults == 0
        # The glitch corrupted reads, never DRAM: images stay identical.
        assert _dram_digest(faulty_dev) == _dram_digest(clean_dev)
        assert (faulty_sys.stats.integrity_violations
                >= clean_sys.stats.integrity_violations + 1)

    def test_persistent_tamper_halts_loudly(self):
        system, device = _adversarial_system(RecoveryPolicy.HALT)
        addresses = _populate(system)
        device.fire_now(FaultSpec(kind=FaultKind.BIT_FLIP, bits=3))
        with pytest.raises(RecoveryHalted):
            for address in addresses:
                system.read_block(address)
        assert system.recovery.stats.persistent_faults == 1

    def test_persistent_tamper_quarantines_and_fences(self):
        system, device = _adversarial_system(RecoveryPolicy.QUARANTINE_PAGE)
        addresses = _populate(system)
        device.fire_now(FaultSpec(kind=FaultKind.BIT_FLIP, bits=3))
        tampered = None
        with pytest.raises(QuarantinedPageError) as excinfo:
            for address in addresses:
                tampered = address
                system.read_block(address)
        assert system.recovery.stats.quarantined_pages >= 1
        # the fenced page now refuses both reads and writes
        with pytest.raises(QuarantinedPageError):
            system.read_block(tampered)
        with pytest.raises(QuarantinedPageError):
            system.write_block(tampered, b"\x00" * BLOCK)
        assert excinfo.value.page is not None

    def test_recovery_metrics_registered(self):
        system, _ = _adversarial_system()
        snapshot = system.metrics.snapshot()
        assert any(name.startswith("recovery") for name in snapshot)
