"""Deterministic checkpoint/resume of timing simulations through the API."""

import math

import pytest

from repro import api
from repro.resilience import CheckpointError

REFS = 5000
EVERY = 1500
SCHEME = "split+gcm"


def _snapshot_equal(left: dict, right: dict) -> bool:
    if left.keys() != right.keys():
        return False
    for key, a in left.items():
        b = right[key]
        if (isinstance(a, float) and isinstance(b, float)
                and math.isnan(a) and math.isnan(b)):
            continue
        if a != b:
            return False
    return True


@pytest.fixture(scope="module")
def uninterrupted():
    experiment = api.Experiment(SCHEME, "swim", refs=REFS)
    result = experiment.run()
    return experiment, result


class TestResume:
    def test_checkpointed_run_matches_plain_run(self, uninterrupted,
                                                tmp_path):
        _, plain = uninterrupted
        path = str(tmp_path / "roll.ckpt")
        checked = api.run(SCHEME, "swim", refs=REFS,
                          checkpoint_every=EVERY, checkpoint_path=path)
        assert checked.to_dict() == plain.to_dict()
        assert (tmp_path / "roll.ckpt").exists()

    def test_resume_is_bit_identical(self, uninterrupted, tmp_path):
        plain_exp, plain = uninterrupted
        path = str(tmp_path / "roll.ckpt")
        api.run(SCHEME, "swim", refs=REFS,
                checkpoint_every=EVERY, checkpoint_path=path)
        resumed_exp = api.Experiment(SCHEME, "swim", refs=REFS)
        resumed = resumed_exp.run(resume_from=path)
        # headline result identical to the float
        assert resumed.to_dict() == plain.to_dict()
        # and the full metrics snapshot reproduces exactly
        assert _snapshot_equal(
            plain_exp.result.memory.metrics.snapshot(),
            resumed_exp.result.memory.metrics.snapshot())

    def test_resume_rejects_different_workload(self, tmp_path):
        path = str(tmp_path / "roll.ckpt")
        api.run(SCHEME, "swim", refs=REFS,
                checkpoint_every=EVERY, checkpoint_path=path)
        with pytest.raises(CheckpointError, match="different experiment"):
            api.run(SCHEME, "mcf", refs=REFS, resume_from=path)
        with pytest.raises(CheckpointError, match="different experiment"):
            api.run(SCHEME, "swim", refs=REFS + 1, resume_from=path)

    def test_resume_rejects_different_config(self, tmp_path):
        path = str(tmp_path / "roll.ckpt")
        api.run(SCHEME, "swim", refs=REFS,
                checkpoint_every=EVERY, checkpoint_path=path)
        with pytest.raises(CheckpointError, match="configuration"):
            api.run("mono+gcm", "swim", refs=REFS, resume_from=path)

    def test_checkpoint_keywords_must_pair(self):
        with pytest.raises(ValueError, match="go together"):
            api.run(SCHEME, "swim", refs=REFS, checkpoint_every=EVERY)
        with pytest.raises(ValueError, match="go together"):
            api.run(SCHEME, "swim", refs=REFS, checkpoint_path="x.ckpt")

    def test_checkpointing_refuses_tracer(self, tmp_path):
        from repro.obs import RecordingTracer

        experiment = api.Experiment(SCHEME, "swim", refs=REFS,
                                    trace=RecordingTracer())
        with pytest.raises(ValueError, match="trace"):
            experiment.run(checkpoint_every=EVERY,
                           checkpoint_path=str(tmp_path / "x.ckpt"))
