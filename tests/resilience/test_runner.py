"""Supervised runner tests: real subprocess workers, crash/hang/SIGINT."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.resilience import CellResult, SweepCell, SweepReport, run_many

REFS = 2_000          # small enough that a healthy worker finishes fast


class TestSweepCell:
    def test_label_and_dict_roundtrip(self):
        cell = SweepCell(scheme="split+gcm", app="mcf", refs=123,
                         inject="crash")
        assert cell.label == "split+gcm/mcf"
        assert SweepCell.from_dict(cell.to_dict()) == cell

    def test_rejects_unknown_inject(self):
        with pytest.raises(ValueError, match="unknown inject"):
            SweepCell(scheme="split", inject="explode")

    def test_accepts_always_suffix(self):
        assert SweepCell(scheme="split", inject="hang-always").inject \
            == "hang-always"


class TestSweepReport:
    def test_ok_counts_and_interrupt(self):
        cell = SweepCell(scheme="split")
        report = SweepReport(cells=[
            CellResult(cell=cell, status="ok", attempts=1),
            CellResult(cell=cell, status="failed", attempts=2),
        ])
        assert not report.ok
        assert report.counts() == {"ok": 1, "failed": 1}
        report.cells[1].status = "ok"
        assert report.ok
        report.interrupted = True
        assert not report.ok
        data = report.to_dict()
        assert data["interrupted"] is True
        assert data["cells"][1]["retried"] is True


class TestRunMany:
    def test_healthy_cell_reports_ok(self):
        seen = []
        report = run_many([SweepCell(scheme="split", refs=REFS)],
                          progress=seen.append)
        assert report.ok
        [cell] = report.cells
        assert cell.status == "ok"
        assert cell.attempts == 1 and not cell.retried
        assert cell.result is not None
        assert cell.result["scheme"] == "split"
        assert cell.result["refs"] == REFS
        assert seen == report.cells

    def test_dict_cells_are_accepted(self):
        report = run_many([{"scheme": "split", "refs": REFS}])
        assert report.ok
        assert report.cells[0].cell == SweepCell(scheme="split", refs=REFS)

    def test_crash_is_retried_to_success(self):
        report = run_many(
            [SweepCell(scheme="split", refs=REFS, inject="crash")],
            retries=1, retry_backoff=0.01)
        [cell] = report.cells
        assert cell.status == "ok"
        assert cell.attempts == 2 and cell.retried

    def test_persistent_crash_exhausts_retries(self):
        report = run_many(
            [SweepCell(scheme="split", refs=REFS, inject="crash-always")],
            retries=1, retry_backoff=0.01)
        [cell] = report.cells
        assert cell.status == "failed"
        assert cell.attempts == 2
        assert "exit code 17" in cell.error
        assert not report.ok

    def test_hang_hits_wall_clock_timeout(self):
        report = run_many(
            [SweepCell(scheme="split", refs=REFS, inject="hang-always")],
            timeout=2.0, retries=0)
        [cell] = report.cells
        assert cell.status == "timeout"
        assert "wall-clock" in cell.error
        assert cell.elapsed >= 2.0

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            run_many([SweepCell(scheme="split")], retries=-1)


class TestSigintDrain:
    """The satellite: Ctrl-C mid-sweep still yields valid partial JSON."""

    def test_sigint_mid_sweep_emits_partial_json(self, tmp_path):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep",
             "--scheme", "split+gcm", "--scheme", "mono+gcm",
             "--scheme", "baseline", "--app", "swim",
             "--refs", "50000000", "--json"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, cwd=str(tmp_path), start_new_session=True)
        try:
            time.sleep(6.0)       # let the first worker get going
            os.kill(proc.pid, signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, stderr.decode()
        report = json.loads(stdout.decode())   # one well-formed document
        assert report["interrupted"] is True
        assert report["ok"] is False
        statuses = [cell["status"] for cell in report["cells"]]
        assert len(statuses) == 3
        assert statuses.count("skipped") >= 2
        errors = {cell["error"] for cell in report["cells"]
                  if cell["status"] == "skipped"}
        assert "interrupted before start" in errors
