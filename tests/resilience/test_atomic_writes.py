"""Atomic on-disk writes + clear errors for truncated/corrupt artifacts.

Regression suite for the crash-safety bugfixes: a writer killed mid-write
must never leave a truncated checkpoint or sweep-report file, and reading
a damaged file must raise a clear :class:`CheckpointError` (a
:class:`ValueError`), never a raw :class:`json.JSONDecodeError` or
:class:`OSError` from deep inside.
"""

import json
import os

import pytest

from repro.resilience import (
    CheckpointError,
    atomic_write_bytes,
    atomic_write_json,
    dumps,
    load_checkpoint,
    load_sweep_report,
    save_checkpoint,
)
from repro.resilience.runner import SweepCell, run_many


class TestAtomicWriteBytes:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(str(path), b"one")
        atomic_write_bytes(str(path), b"two")
        assert path.read_bytes() == b"two"

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(str(path), b"payload")
        assert os.listdir(tmp_path) == ["artifact.bin"]

    def test_failed_replace_preserves_target_and_cleans_tmp(
            self, tmp_path, monkeypatch):
        path = tmp_path / "artifact.bin"
        path.write_bytes(b"good old contents")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at the rename")

        import repro.resilience.checkpoint as checkpoint_module
        monkeypatch.setattr(checkpoint_module.os, "replace",
                            exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_bytes(str(path), b"half-written junk")
        monkeypatch.undo()
        # the target is byte-identical to before, and no temp junk remains
        assert path.read_bytes() == b"good old contents"
        assert os.listdir(tmp_path) == ["artifact.bin"]

    def test_unique_temp_names_for_concurrent_writers(self, tmp_path,
                                                      monkeypatch):
        # Two writers to the same path must never share the temp file: a
        # fixed "<path>.tmp" would interleave their bytes.  Capture the
        # temp names used by two writes and assert they differ.
        import repro.resilience.checkpoint as checkpoint_module

        seen = []
        real_replace = os.replace

        def recording_replace(src, dst):
            seen.append(src)
            real_replace(src, dst)

        monkeypatch.setattr(checkpoint_module.os, "replace",
                            recording_replace)
        path = str(tmp_path / "artifact.bin")
        atomic_write_bytes(path, b"a")
        atomic_write_bytes(path, b"b")
        assert len(seen) == 2 and seen[0] != seen[1]


class TestAtomicWriteJson:
    def test_round_trips(self, tmp_path):
        path = tmp_path / "report.json"
        atomic_write_json(str(path), {"cells": [1, 2, 3]})
        assert json.loads(path.read_text()) == {"cells": [1, 2, 3]}

    def test_unserializable_payload_never_touches_target(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text('{"cells": "intact"}')
        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"bad": object()})
        # serialization happens before any file I/O: the old report
        # survives byte-for-byte and no temp file is left in the directory
        assert json.loads(path.read_text()) == {"cells": "intact"}
        assert os.listdir(tmp_path) == ["report.json"]


class TestCheckpointFileErrors:
    def test_checkpoint_error_is_a_value_error(self):
        assert issubclass(CheckpointError, ValueError)

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        missing = str(tmp_path / "never-written.ckpt")
        with pytest.raises(CheckpointError, match="cannot read checkpoint"):
            load_checkpoint(missing)

    @pytest.mark.parametrize("keep", [0, 4, 20, 60])
    def test_truncated_file_raises_checkpoint_error(self, tmp_path, keep):
        path = str(tmp_path / "roll.ckpt")
        save_checkpoint(path, dumps({"state": list(range(64))}, kind="t"))
        blob = open(path, "rb").read()
        assert len(blob) > keep
        with open(path, "wb") as handle:
            handle.write(blob[:keep])
        with pytest.raises(CheckpointError):
            load_checkpoint(path, kind="t")


class TestSweepReportPersistence:
    def test_out_path_streams_partial_results(self, tmp_path):
        out = str(tmp_path / "sweep.json")
        seen_cells = []

        def progress(_result):
            # the report on disk already includes every finalized cell,
            # and it parses — partial results stream as cells finish
            seen_cells.append(len(load_sweep_report(out)["cells"]))

        report = run_many(
            [SweepCell(scheme="split", app="swim", refs=1500),
             SweepCell(scheme="direct", app="swim", refs=1500)],
            out_path=out, progress=progress)
        assert seen_cells == [1, 2]
        final = load_sweep_report(out)
        assert final == report.to_dict()
        assert final["ok"] is True

    def test_truncated_sweep_report_raises_clear_error(self, tmp_path):
        out = tmp_path / "sweep.json"
        atomic_write_json(str(out), {"cells": [{"status": "ok"}] * 20})
        text = out.read_text()
        out.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError,
                           match="truncated or corrupt") as excinfo:
            load_sweep_report(str(out))
        # the raw JSON error is chained context, not the surfaced type
        assert isinstance(excinfo.value.__cause__, json.JSONDecodeError)

    def test_missing_sweep_report_raises_clear_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read sweep"):
            load_sweep_report(str(tmp_path / "nope.json"))

    def test_wrong_shape_raises_clear_error(self, tmp_path):
        out = tmp_path / "sweep.json"
        out.write_text('{"not_cells": []}')
        with pytest.raises(CheckpointError, match="missing the 'cells'"):
            load_sweep_report(str(out))
