"""Sweep CLI signal handling and queue-damage recovery (satellite 3).

SIGTERM must drain exactly like SIGINT — valid partial JSON, checkpoints
intact — but exit 143 so supervisors can tell platform termination from
an operator's Ctrl-C.  A corrupted per-cell result file in the queue must
be quarantined to ``*.corrupt`` and the cell re-enqueued on resume, never
trusted and never fatal.
"""

import json
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _sweep(extra, cwd, **popen_kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, cwd=str(cwd), **popen_kwargs)


class TestSigtermDrain:
    def test_sigterm_mid_fabric_sweep_exits_143_with_partial_json(
            self, tmp_path):
        queue = str(tmp_path / "queue")
        ckpt_dir = os.path.join(queue, "checkpoints")
        proc = _sweep(
            ["--scheme", "split+gcm", "--scheme", "mono+gcm",
             "--scheme", "baseline", "--app", "swim",
             "--refs", "3000000", "--json",
             "--parallel", "2", "--queue-dir", queue,
             "--heartbeat-interval", "0.2", "--lease-ttl", "2",
             "--checkpoint-refs", "2000"],
            tmp_path, start_new_session=True)
        try:
            # SIGTERM the moment a mid-cell checkpoint exists, so the
            # "drain preserves checkpoints" assertion is timing-proof
            deadline = time.monotonic() + 90
            while time.monotonic() < deadline:
                if os.path.isdir(ckpt_dir) and any(
                        name.endswith(".ckpt")
                        for name in os.listdir(ckpt_dir)):
                    break
                time.sleep(0.2)
            os.kill(proc.pid, signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 143, stderr.decode()
        report = json.loads(stdout.decode())   # one well-formed document
        assert report["interrupted"] is True
        assert report["ok"] is False
        assert len(report["cells"]) == 3
        assert {cell["status"] for cell in report["cells"]} <= \
            {"ok", "skipped"}
        # graceful drain preserved the in-flight checkpoints for resume
        checkpoints = os.listdir(os.path.join(queue, "checkpoints"))
        assert any(name.endswith(".ckpt") for name in checkpoints), \
            checkpoints


class TestCorruptResultRecovery:
    def test_corrupt_result_is_quarantined_and_cell_reruns(self, tmp_path):
        queue = str(tmp_path / "queue")
        first = _sweep(
            ["--scheme", "split+gcm", "--app", "swim", "--app", "gzip",
             "--refs", "1500", "--json", "--parallel", "2",
             "--queue-dir", queue, "--heartbeat-interval", "0.2",
             "--lease-ttl", "2", "--checkpoint-refs", "500"],
            tmp_path)
        stdout, stderr = first.communicate(timeout=120)
        assert first.returncode == 0, stderr.decode()
        reference = json.loads(stdout.decode())

        victim = os.path.join(queue, "results", "0000-split-gcm-swim.json")
        with open(victim, "wb") as handle:
            handle.write(b'{"status": "ok", "ce')       # torn mid-write

        second = _sweep(
            ["--queue-dir", queue, "--resume", "--json",
             "--heartbeat-interval", "0.2", "--lease-ttl", "2",
             "--checkpoint-refs", "500"],
            tmp_path)
        stdout, stderr = second.communicate(timeout=120)
        assert second.returncode == 0, stderr.decode()
        report = json.loads(stdout.decode())
        assert report["ok"] is True
        assert os.path.exists(victim + ".corrupt")
        # the re-run recomputed the identical simulation result
        assert report["cells"][0]["result"] \
            == reference["cells"][0]["result"]
        assert report["fabric"]["metrics"]["fabric.results_quarantined"] \
            >= 1
