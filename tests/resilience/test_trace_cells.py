"""Trace-driven sweep cells must be identified by content, not path.

Before this fix, ``fabric.cell_id`` and ``chaos.normalize_report``
assumed generator-named cells: a recorded-trace cell's identity was its
file *path*, so moving the trace (or reaching it via a different spec)
broke resume/dedupe, and two runs of the same recording normalized
unequal.  These tests pin the fingerprint-based identity.
"""

import shutil

from repro.resilience.fabric import cell_id
from repro.resilience.runner import SweepCell
from repro.testing.chaos import normalize_report
from repro.workloads import resolve_trace, trace_fingerprint, write_trace


def _record(tmp_path, name="mcf.rtrc"):
    path = tmp_path / name
    write_trace(path, resolve_trace("mcf", 500, seed=3))
    return path


def test_cell_id_uses_fingerprint_not_path(tmp_path):
    a = _record(tmp_path, "a.rtrc")
    b = tmp_path / "elsewhere"
    b.mkdir()
    moved = b / "renamed.rtrc"
    shutil.copy(a, moved)

    cell_a = SweepCell(scheme="split+gcm", app=f"trace:{a}", refs=500)
    cell_b = SweepCell(scheme="split+gcm", app=str(moved), refs=500)
    assert cell_a.workload_id() == cell_b.workload_id() \
        == f"trace-{trace_fingerprint(a)}"
    assert cell_id(3, cell_a) == cell_id(3, cell_b)
    # distinct recordings at the same index must never collide
    other = tmp_path / "other.rtrc"
    write_trace(other, resolve_trace("gcc", 500, seed=3))
    assert cell_id(3, SweepCell(scheme="split+gcm",
                                app=str(other))) != cell_id(3, cell_a)


def test_generator_cells_unchanged(tmp_path):
    cell = SweepCell(scheme="split", app="swim")
    assert cell.workload_id() == "swim"
    assert cell_id(0, cell) == "0000-split-swim"


def test_unreadable_trace_falls_back_to_raw_spec(tmp_path):
    missing = tmp_path / "gone.rtrc"
    cell = SweepCell(scheme="split", app=str(missing))
    assert cell.workload_id() == str(missing)


def test_normalize_report_canonicalizes_trace_cells(tmp_path):
    a = _record(tmp_path, "a.rtrc")
    twin = tmp_path / "twin.rtrc"
    shutil.copy(a, twin)

    def report(path):
        return {
            "schema": "repro-sweep/2",
            "cells": [{
                "cell": {"scheme": "split+gcm", "app": f"trace:{path}",
                         "refs": 500, "warmup_refs": None, "inject": None},
                "status": "ok",
                "elapsed": 1.23,
                "attempts": 1,
                "result": {"app": f"trace-{trace_fingerprint(a)}",
                           "cycles": 999},
            }],
        }

    assert normalize_report(report(a)) == normalize_report(report(twin))
    # but a different recording still normalizes differently
    other = tmp_path / "other.rtrc"
    write_trace(other, resolve_trace("gcc", 500, seed=3))
    assert normalize_report(report(a)) != normalize_report(report(other))
