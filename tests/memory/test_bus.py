"""Bus occupancy/contention model (128-bit @ 600MHz under a 5GHz core)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.bus import MemoryBus


class TestTransferCycles:
    def test_one_beat_is_16_bytes(self):
        bus = MemoryBus()
        assert bus.transfer_cycles(16) == pytest.approx(5000 / 600)

    def test_64_byte_block_is_four_beats(self):
        bus = MemoryBus()
        assert bus.transfer_cycles(64) == pytest.approx(4 * 5000 / 600)

    def test_partial_beat_rounds_up(self):
        bus = MemoryBus()
        assert bus.transfer_cycles(17) == bus.transfer_cycles(32)

    def test_72_bytes_needs_five_beats(self):
        # prediction-scheme transfers: 64B data + 8B counter
        bus = MemoryBus()
        assert bus.transfer_cycles(72) == pytest.approx(5 * 5000 / 600)


class TestScheduling:
    def test_idle_bus_starts_immediately(self):
        bus = MemoryBus()
        start, end = bus.schedule(100.0, 64)
        assert start == 100.0
        assert end == pytest.approx(100.0 + bus.transfer_cycles(64))

    def test_back_to_back_transfers_queue(self):
        bus = MemoryBus()
        _, end1 = bus.schedule(0.0, 64)
        start2, _ = bus.schedule(0.0, 64)
        assert start2 == end1

    def test_gap_leaves_bus_idle(self):
        bus = MemoryBus()
        bus.schedule(0.0, 64)
        start, _ = bus.schedule(1000.0, 64)
        assert start == 1000.0

    def test_queue_cycles_accumulate(self):
        bus = MemoryBus()
        bus.schedule(0.0, 64)
        bus.schedule(0.0, 64)
        assert bus.stats.queue_cycles == pytest.approx(bus.transfer_cycles(64))

    @settings(max_examples=30)
    @given(requests=st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e5),
                  st.integers(min_value=1, max_value=256)),
        min_size=1, max_size=50))
    def test_no_overlapping_occupancy(self, requests):
        """Transfers never overlap: each starts at or after the previous
        one's end when issued in nondecreasing time order."""
        bus = MemoryBus()
        requests.sort(key=lambda r: r[0])
        prev_end = 0.0
        for now, nbytes in requests:
            start, end = bus.schedule(now, nbytes)
            assert start >= prev_end
            assert start >= now
            assert end == pytest.approx(start + bus.transfer_cycles(nbytes))
            prev_end = end


class TestUtilization:
    def test_fully_busy(self):
        bus = MemoryBus()
        _, end = bus.schedule(0.0, 64)
        assert bus.utilization(end) == pytest.approx(1.0)

    def test_half_busy(self):
        bus = MemoryBus()
        _, end = bus.schedule(0.0, 64)
        assert bus.utilization(2 * end) == pytest.approx(0.5)

    def test_zero_elapsed(self):
        assert MemoryBus().utilization(0) == 0.0

    def test_reset(self):
        bus = MemoryBus()
        bus.schedule(0.0, 64)
        bus.reset()
        assert bus.stats.transactions == 0
        start, _ = bus.schedule(0.0, 64)
        assert start == 0.0
