"""Main-memory backing store: alignment, zero-fill, adversary interface."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.dram import MainMemory


class TestBasics:
    def test_unwritten_reads_zero(self):
        mem = MainMemory(size_bytes=4096, block_size=64)
        assert mem.read_block(0) == bytes(64)

    def test_write_read_roundtrip(self):
        mem = MainMemory(size_bytes=4096, block_size=64)
        data = bytes(range(64))
        mem.write_block(128, data)
        assert mem.read_block(128) == data

    def test_rejects_misaligned(self):
        mem = MainMemory(size_bytes=4096, block_size=64)
        with pytest.raises(ValueError):
            mem.read_block(10)
        with pytest.raises(ValueError):
            mem.write_block(10, bytes(64))

    def test_rejects_out_of_range(self):
        mem = MainMemory(size_bytes=4096, block_size=64)
        with pytest.raises(ValueError):
            mem.read_block(4096)

    def test_rejects_wrong_block_length(self):
        mem = MainMemory(size_bytes=4096, block_size=64)
        with pytest.raises(ValueError):
            mem.write_block(0, bytes(63))

    def test_stats(self):
        mem = MainMemory(size_bytes=4096, block_size=64)
        mem.write_block(0, bytes(64))
        mem.read_block(0)
        mem.read_block(64)
        assert mem.stats.reads == 2
        assert mem.stats.writes == 1
        assert mem.stats.accesses == 3


class TestAdversaryInterface:
    def test_peek_does_not_count(self):
        mem = MainMemory(size_bytes=4096, block_size=64)
        mem.write_block(0, b"\xaa" * 64)
        before = mem.stats.accesses
        assert mem.peek(0) == b"\xaa" * 64
        assert mem.stats.accesses == before

    def test_poke_overwrites_silently(self):
        mem = MainMemory(size_bytes=4096, block_size=64)
        mem.write_block(0, b"\xaa" * 64)
        before = mem.stats.accesses
        mem.poke(0, b"\x55" * 64)
        assert mem.read_block(0) == b"\x55" * 64
        assert mem.stats.accesses == before + 1  # only the read counted

    def test_stored_blocks_snapshot(self):
        mem = MainMemory(size_bytes=4096, block_size=64)
        mem.write_block(0, b"\x01" * 64)
        snapshot = mem.stored_blocks()
        mem.write_block(0, b"\x02" * 64)
        assert snapshot[0] == b"\x01" * 64  # snapshot is a copy

    @settings(max_examples=20)
    @given(data=st.binary(min_size=64, max_size=64))
    def test_poke_then_peek(self, data):
        mem = MainMemory(size_bytes=4096, block_size=64)
        mem.poke(64, data)
        assert mem.peek(64) == data
