"""Set-associative cache model: LRU, dirty tracking, evictions, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache


def small_cache(assoc=2, sets=4, block=64):
    return Cache(assoc * sets * block, assoc, block)


class TestGeometry:
    def test_set_count(self):
        c = Cache(32 * 1024, 8, 64)
        assert c.num_sets == 64

    def test_rejects_non_pow2_block(self):
        with pytest.raises(ValueError):
            Cache(1024, 2, 48)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            Cache(1000, 2, 64)

    def test_block_address_alignment(self):
        c = small_cache()
        assert c.block_address(0x1234) == 0x1200


class TestHitMiss:
    def test_first_access_misses(self):
        c = small_cache()
        assert not c.access(0)
        assert c.stats.misses == 1

    def test_access_after_fill_hits(self):
        c = small_cache()
        c.access(0)
        c.fill(0)
        assert c.access(0)
        assert c.stats.hits == 1

    def test_sub_block_addresses_share_line(self):
        c = small_cache()
        c.fill(0x100)
        assert c.access(0x13F)   # same 64B block
        assert not c.access(0x140)  # next block

    def test_contains_without_stats(self):
        c = small_cache()
        c.fill(0)
        before = c.stats.accesses
        assert c.contains(0)
        assert not c.contains(64)
        assert c.stats.accesses == before


class TestLRUAndEviction:
    def test_lru_victim(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0)
        c.fill(64)
        c.access(0)  # 0 becomes MRU; 64 is LRU
        evicted = c.fill(128)
        assert evicted is not None and evicted.address == 64

    def test_eviction_reports_dirty(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0, dirty=True)
        evicted = c.fill(64)
        assert evicted.dirty and evicted.address == 0
        assert c.stats.writebacks == 1

    def test_clean_eviction(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0)
        evicted = c.fill(64)
        assert not evicted.dirty
        assert c.stats.writebacks == 0

    def test_refill_resident_block_keeps_dirty(self):
        c = small_cache()
        c.fill(0, dirty=True)
        assert c.fill(0) is None
        assert c.lookup(0).dirty

    def test_write_access_sets_dirty(self):
        c = small_cache()
        c.fill(0)
        c.access(0, write=True)
        assert c.lookup(0).dirty

    def test_payload_travels_with_eviction(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0, dirty=True, payload=b"hello")
        evicted = c.fill(64)
        assert evicted.payload == b"hello"


class TestMaintenance:
    def test_invalidate(self):
        c = small_cache()
        c.fill(0)
        line = c.invalidate(0)
        assert line is not None
        assert not c.contains(0)
        assert c.invalidate(0) is None

    def test_mark_dirty(self):
        c = small_cache()
        c.fill(0)
        assert c.mark_dirty(0)
        assert c.lookup(0).dirty
        assert not c.mark_dirty(0x4000)

    def test_flush_returns_dirty_blocks(self):
        c = small_cache()
        c.fill(0, dirty=True)
        c.fill(64)
        c.fill(128, dirty=True)
        dirty = c.flush()
        assert {e.address for e in dirty} == {0, 128}
        assert c.occupancy() == 0

    def test_dirty_blocks_iterator(self):
        c = small_cache()
        c.fill(0, dirty=True)
        c.fill(64)
        assert {a for a, _ in c.dirty_blocks()} == {0}


class TestInvariants:
    @settings(max_examples=30)
    @given(ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63),
                  st.booleans()), min_size=1, max_size=200))
    def test_against_reference_model(self, ops):
        """The cache must agree with a brute-force LRU reference model."""
        assoc, sets, block = 2, 4, 64
        cache = Cache(assoc * sets * block, assoc, block)
        reference = [[] for _ in range(sets)]  # MRU-first lists of blocks

        for block_index, write in ops:
            address = block_index * block
            set_index = block_index % sets
            ref_set = reference[set_index]
            expect_hit = block_index in ref_set
            assert cache.access(address, write=write) == expect_hit
            if expect_hit:
                ref_set.remove(block_index)
                ref_set.insert(0, block_index)
            else:
                cache.fill(address, dirty=write)
                if len(ref_set) >= assoc:
                    ref_set.pop()
                ref_set.insert(0, block_index)
            # residency agrees
            for candidate in range(64):
                assert (cache.contains(candidate * block)
                        == (candidate in reference[candidate % sets]))

    @settings(max_examples=30)
    @given(blocks=st.lists(st.integers(min_value=0, max_value=1000),
                           max_size=100))
    def test_occupancy_never_exceeds_capacity(self, blocks):
        c = small_cache(assoc=2, sets=2)
        for b in blocks:
            c.fill(b * 64)
        assert c.occupancy() <= 4
