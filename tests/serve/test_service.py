"""Service behavior: tenant isolation, backpressure, fault containment.

Everything here runs the real asyncio server over loopback TCP with the
deterministic inline shard backend (one test exercises the process
backend end to end).  Each scenario is a coroutine driven by
``asyncio.run`` so the suite needs no async test plugin.
"""

import asyncio
import threading

import pytest

from repro.serve import (
    SecureMemoryService,
    ServeConfig,
    ServeClient,
    loadgen,
)
from repro.serve.client import ServeError
from repro.serve.protocol import ErrorCode, encode_frame, read_frame


def _run(scenario_factory, **config_kwargs):
    """Boot a service, run the scenario coroutine, always stop cleanly."""
    config_kwargs.setdefault("backend", "inline")
    config_kwargs.setdefault("num_shards", 2)
    config_kwargs.setdefault("tenant_bytes", 1 << 16)

    async def main():
        service = SecureMemoryService(ServeConfig(**config_kwargs))
        await service.start()
        try:
            host, port = service.address
            return await scenario_factory(service, host, port)
        finally:
            await service.stop()

    return asyncio.run(main())


async def _open(client, tenant, recovery=None):
    response = await client.open_tenant(tenant, recovery)
    return response["token"], response["block_size"]


def _code(excinfo) -> str:
    return excinfo.value.code


class TestBasicOps:
    def test_write_read_round_trip_across_shards(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token, bs = await _open(client, "t0")
                # blocks 0..15 stripe across both shards
                writes = [(i * bs, bytes([i]) * bs) for i in range(16)]
                assert await client.write("t0", token, writes) == 16
                data = await client.read("t0", token,
                                         [i * bs for i in range(16)])
                assert data == [bytes([i]) * bs for i in range(16)]

        _run(scenario)

    def test_unwritten_blocks_read_as_zero(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token, bs = await _open(client, "t0")
                [block] = await client.read("t0", token, [8 * bs])
                assert block == bytes(bs)

        _run(scenario)

    def test_pipelined_requests_matched_by_id(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token, bs = await _open(client, "t0")
                await client.write("t0", token,
                                   [(i * bs, bytes([i]) * bs)
                                    for i in range(8)])
                reads = [client.read("t0", token, [i * bs])
                         for i in range(8)]
                results = await asyncio.gather(*reads)
                assert [r[0] for r in results] == [bytes([i]) * bs
                                                   for i in range(8)]

        _run(scenario)

    def test_unknown_op_and_bad_requests(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                with pytest.raises(ServeError) as err:
                    await client.request("conjure")
                assert _code(err) == ErrorCode.UNKNOWN_OP
                token, bs = await _open(client, "t0")
                for addresses, why in [
                        ([bs + 1], "unaligned"),
                        ([-bs], "negative"),
                        ([1 << 40], "out of range"),
                        (["zero"], "non-integer")]:
                    with pytest.raises(ServeError) as err:
                        await client.read("t0", token, addresses)
                    assert _code(err) == ErrorCode.BAD_REQUEST, why
                with pytest.raises(ServeError) as err:
                    await client.write("t0", token, [(0, b"short")])
                assert _code(err) == ErrorCode.BAD_REQUEST

        _run(scenario)


class TestMalformedFramesAtServer:
    def test_garbage_frame_gets_error_response_server_survives(self):
        async def scenario(_service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            body = b"not json at all"
            writer.write(len(body).to_bytes(4, "big") + body)
            await writer.drain()
            response = await read_frame(reader)
            assert response["ok"] is False
            assert response["error"] == ErrorCode.BAD_REQUEST
            writer.close()
            # the server must keep serving fresh connections
            async with ServeClient(host, port) as client:
                assert (await client.ping())["pong"] is True

        _run(scenario)

    def test_oversize_declaration_drops_connection_not_server(self):
        async def scenario(_service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((1 << 30).to_bytes(4, "big"))
            await writer.drain()
            response = await read_frame(reader)
            assert response["ok"] is False
            # after the terminal error the stream ends
            assert await read_frame(reader) is None
            writer.close()
            async with ServeClient(host, port) as client:
                assert (await client.ping())["pong"] is True

        _run(scenario)

    def test_request_without_op_rejected(self):
        async def scenario(_service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame({"id": 1}))
            await writer.drain()
            response = await read_frame(reader)
            assert response["ok"] is False
            assert response["error"] == ErrorCode.BAD_REQUEST
            writer.close()

        _run(scenario)


class TestTenantIsolation:
    def test_same_address_different_tenants_different_data(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token_a, bs = await _open(client, "alice")
                token_b, _ = await _open(client, "bob")
                await client.write("alice", token_a, [(0, b"A" * bs)])
                await client.write("bob", token_b, [(0, b"B" * bs)])
                assert (await client.read("alice", token_a, [0]))[0] \
                    == b"A" * bs
                assert (await client.read("bob", token_b, [0]))[0] \
                    == b"B" * bs

        _run(scenario)

    def test_wrong_token_rejected_everywhere(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token_a, bs = await _open(client, "alice")
                token_b, _ = await _open(client, "bob")
                for call in (
                        client.read("alice", token_b, [0]),
                        client.write("alice", token_b, [(0, b"x" * bs)]),
                        client.metrics("alice", token_b),
                        client.rotate_epoch("alice", token_b),
                        client.corrupt("alice", token_b, 0),
                        client.close_tenant("alice", token_b)):
                    with pytest.raises(ServeError) as err:
                        await call
                    assert _code(err) == ErrorCode.AUTH

        _run(scenario)

    def test_unknown_tenant_and_duplicate_open(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                with pytest.raises(ServeError) as err:
                    await client.read("ghost", "deadbeef", [0])
                assert _code(err) == ErrorCode.NO_TENANT
                await _open(client, "alice")
                with pytest.raises(ServeError) as err:
                    await client.open_tenant("alice")
                assert _code(err) == ErrorCode.TENANT_EXISTS

        _run(scenario)

    def test_epoch_rotation_rekeys_and_resets(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token, bs = await _open(client, "alice")
                await client.write("alice", token, [(0, b"A" * bs)])
                assert await client.rotate_epoch("alice", token) == 1
                # fresh epoch: fresh key, fresh (zero) address space
                assert (await client.read("alice", token, [0]))[0] \
                    == bytes(bs)
                metrics = await client.metrics("alice", token)
                assert metrics["epoch"] == 1

        _run(scenario)


class TestFaultContainment:
    def test_halt_latches_other_tenant_unaffected(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token_a, bs = await _open(client, "alice", "halt")
                token_b, _ = await _open(client, "bob", "halt")
                await client.write("alice", token_a, [(0, b"A" * bs)])
                await client.write("bob", token_b, [(0, b"B" * bs)])
                await client.corrupt("alice", token_a, 0)
                with pytest.raises(ServeError) as err:
                    await client.read("alice", token_a, [0])
                assert _code(err) == ErrorCode.HALTED
                # halt latches: even untouched addresses refuse
                with pytest.raises(ServeError) as err:
                    await client.read("alice", token_a, [4 * bs])
                assert _code(err) == ErrorCode.HALTED
                # the blast radius is one tenant
                assert (await client.read("bob", token_b, [0]))[0] \
                    == b"B" * bs
                # rotation is the recovery path after a halt
                await client.rotate_epoch("alice", token_a)
                assert (await client.read("alice", token_a, [0]))[0] \
                    == bytes(bs)

        _run(scenario)

    def test_quarantine_fences_page_keeps_tenant_alive(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token, bs = await _open(client, "alice", "quarantine_page")
                await client.write("alice", token, [(0, b"A" * bs)])
                await client.corrupt("alice", token, 0)
                with pytest.raises(ServeError) as err:
                    await client.read("alice", token, [0])
                assert _code(err) == ErrorCode.QUARANTINED
                # a distant address on the same shard but a different
                # local page (2 shards: tenant block 128 -> shard 0,
                # local block 64 = local page 1) still works
                far = 128 * bs
                await client.write("alice", token, [(far, b"Z" * bs)])
                assert (await client.read("alice", token, [far]))[0] \
                    == b"Z" * bs
                metrics = await client.metrics("alice", token)
                assert metrics["aggregate"].get(
                    "recovery.quarantined_pages", 0) >= 1

        _run(scenario)

    def test_degrade_serves_unverified_data_and_counts_it(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token, bs = await _open(client, "alice", "degrade")
                await client.write("alice", token, [(0, b"A" * bs)])
                await client.corrupt("alice", token, 0)
                [block] = await client.read("alice", token, [0])
                assert block != b"A" * bs       # corrupt image, no error
                metrics = await client.metrics("alice", token)
                assert metrics["aggregate"].get(
                    "recovery.degraded_accesses", 0) >= 1

        _run(scenario)


class TestBackpressure:
    def test_full_lane_rejects_with_busy_and_recovers(self):
        gate = threading.Event()
        entered = threading.Event()

        async def scenario(service, host, port):
            lane = service._lanes[0]
            inner = lane.shard.request

            def blocking(kind, payload):
                if kind == "execute":
                    entered.set()
                    gate.wait(timeout=30)
                return inner(kind, payload)

            lane.shard.request = blocking
            async with ServeClient(host, port) as client:
                token, bs = await _open(client, "t0")
                # step 1: occupy the worker and wait until it is provably
                # inside the (blocked) shard call, so later submissions
                # cannot be drained out from under the test
                head = asyncio.ensure_future(client.read("t0", token, [0]))
                await asyncio.get_running_loop().run_in_executor(
                    None, entered.wait, 30)
                # step 2: fill the depth-2 queue behind it
                in_flight = [
                    asyncio.ensure_future(client.read("t0", token, [0]))
                    for _ in range(2)]
                for _ in range(500):
                    if lane.queue.full():
                        break
                    await asyncio.sleep(0.01)
                assert lane.queue.full()
                # step 3: admission control rejects instantly with BUSY
                with pytest.raises(ServeError) as err:
                    await client.read("t0", token, [0])
                assert _code(err) == ErrorCode.BUSY
                stats = await client.stats()
                assert stats["metrics"]["serve.busy"] >= 1
                gate.set()                       # unblock the lane
                results = await asyncio.gather(head, *in_flight)
                assert all(r == [bytes(bs)] for r in results)
                # after draining, admission control admits again
                assert (await client.read("t0", token, [0]))[0] == bytes(bs)

        _run(scenario, num_shards=1, queue_depth=2, batch_max=1)
        gate.set()


class TestCoalescing:
    def test_concurrent_singles_become_few_batches(self):
        async def scenario(service, host, port):
            async with ServeClient(host, port) as client:
                token, bs = await _open(client, "t0")
                await client.write("t0", token,
                                   [(i * bs, bytes([i]) * bs)
                                    for i in range(32)])
                before = service.metrics.snapshot()
                reads = [client.read("t0", token, [i * bs])
                         for i in range(32)]
                results = await asyncio.gather(*reads)
                assert [r[0] for r in results] == [bytes([i]) * bs
                                                   for i in range(32)]
                after = service.metrics.snapshot()
                ops = after["serve.batched_ops"] - before["serve.batched_ops"]
                batches = after["serve.batches"] - before["serve.batches"]
                assert ops == 32
                # 32 pipelined single-block reads on one lane must land in
                # strictly fewer shard calls than ops (the coalescing
                # contract); scheduling decides the exact count
                assert batches < ops

        _run(scenario, num_shards=1)


class TestLifecycle:
    def test_stop_drains_and_rejects_new_work(self):
        async def scenario(service, host, port):
            async with ServeClient(host, port) as client:
                token, bs = await _open(client, "t0")
                assert await client.write("t0", token, [(0, b"x" * bs)]) == 1
            await service.stop()        # idempotent with the outer stop
            # post-stop: connections are refused (socket closed)
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)

        _run(scenario)

    def test_metrics_snapshot_shape(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token, bs = await _open(client, "t0", "halt")
                await client.write("t0", token, [(0, b"x" * bs)])
                await client.read("t0", token, [0])
                metrics = await client.metrics("t0", token)
                assert metrics["recovery_policy"] == "halt"
                assert metrics["halted"] == [False, False]
                assert set(metrics["shards"]) == {"0", "1"}
                aggregate = metrics["aggregate"]
                # L2 absorbs the read-after-write, but both ops hit the L2
                assert aggregate["l2.accesses"] >= 2
                assert "mem.reads" in aggregate
                assert "recovery.violations" in aggregate
                stats = await client.stats()
                assert stats["tenants"] == 1
                assert stats["metrics"]["serve.requests"] >= 4

        _run(scenario)


class TestLoadgen:
    def test_loadgen_against_inline_service(self):
        async def scenario(_service, host, port):
            return await loadgen(host, port, tenants=2, connections=3,
                                 requests=10, batch=2,
                                 footprint_blocks=32, seed=7)

        result = _run(scenario)
        assert result.requests == 30
        assert result.reads + result.writes == 30
        assert result.errors == 0, result.error_details
        assert result.blocks == 60
        assert result.rps > 0
        assert result.p50_ms <= result.p99_ms

    def test_loadgen_deterministic_op_mix(self):
        async def scenario(_service, host, port):
            return await loadgen(host, port, tenants=1, connections=2,
                                 requests=8, batch=1,
                                 footprint_blocks=16, seed=42)

        first = _run(scenario)
        second = _run(scenario)
        # same seed, same mix (timing differs; the op stream must not)
        assert (first.reads, first.writes) == (second.reads, second.writes)
        assert first.errors == second.errors == 0


class TestProcessBackend:
    def test_process_shards_end_to_end(self):
        async def scenario(_service, host, port):
            async with ServeClient(host, port) as client:
                token_a, bs = await _open(client, "alice", "halt")
                token_b, _ = await _open(client, "bob", "degrade")
                await client.write("alice", token_a,
                                   [(i * bs, bytes([i]) * bs)
                                    for i in range(4)])
                await client.write("bob", token_b, [(0, b"B" * bs)])
                data = await client.read("alice", token_a,
                                         [i * bs for i in range(4)])
                assert data == [bytes([i]) * bs for i in range(4)]
                # a halt inside the worker process is contained to alice
                await client.corrupt("alice", token_a, 0)
                with pytest.raises(ServeError) as err:
                    await client.read("alice", token_a, [0])
                assert _code(err) == ErrorCode.HALTED
                assert (await client.read("bob", token_b, [0]))[0] \
                    == b"B" * bs

        _run(scenario, backend="process", num_shards=1)
