"""ServeClient per-request timeout (satellite 2).

A hung shard must not block the pipelined loop forever: a request that
misses its deadline surfaces ``ServeError`` with code ``TIMEOUT`` while
the connection — and every other in-flight request — stays healthy.
Scenarios run against a scriptable frame server (responds, stalls, or
delays per op) driven by ``asyncio.run``, matching the suite's
no-async-plugin convention.
"""

import asyncio

import pytest

from repro.serve import ServeClient
from repro.serve.client import ServeError
from repro.serve.protocol import ErrorCode, encode_frame, read_frame


class ScriptedServer:
    """Loopback frame server whose per-op behavior is scripted.

    ``behavior[op]`` is ``"ok"`` (respond immediately), ``"stall"``
    (never respond), or a float (respond after that many seconds) —
    unknown ops respond immediately.
    """

    def __init__(self, behavior: dict):
        self.behavior = behavior
        self._server = None
        self.port = None

    async def __aenter__(self) -> "ScriptedServer":
        self._server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *_exc) -> None:
        self._server.close()
        await self._server.wait_closed()

    async def _serve(self, reader, writer) -> None:
        tasks = []
        try:
            while True:
                request = await read_frame(reader)
                if request is None:
                    break
                tasks.append(asyncio.ensure_future(
                    self._answer(request, writer)))
        except (ConnectionError, Exception):
            pass
        finally:
            for task in tasks:
                task.cancel()
            writer.close()

    async def _answer(self, request, writer) -> None:
        what = self.behavior.get(request.get("op"), "ok")
        if what == "stall":
            return
        if isinstance(what, (int, float)):
            await asyncio.sleep(what)
        writer.write(encode_frame(
            {"id": request.get("id"), "ok": True, "op": request.get("op")}))
        await writer.drain()


class TestRequestTimeout:
    def test_stalled_request_raises_timeout_code(self):
        async def scenario():
            async with ScriptedServer({"hang": "stall"}) as server:
                async with ServeClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ServeError) as excinfo:
                        await client.request("hang", timeout=0.2)
                    assert excinfo.value.code == ErrorCode.TIMEOUT
                    assert "0.2" in excinfo.value.detail

        asyncio.run(scenario())

    def test_connection_survives_a_timeout(self):
        async def scenario():
            async with ScriptedServer({"hang": "stall"}) as server:
                async with ServeClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ServeError):
                        await client.request("hang", timeout=0.1)
                    # same connection, next request: perfectly healthy
                    response = await client.request("ping", timeout=5.0)
                    assert response["ok"]

        asyncio.run(scenario())

    def test_late_response_is_dropped_not_misdelivered(self):
        async def scenario():
            async with ScriptedServer({"slow": 0.3}) as server:
                async with ServeClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ServeError) as excinfo:
                        await client.request("slow", timeout=0.05)
                    assert excinfo.value.code == ErrorCode.TIMEOUT
                    # the straggler answer for the abandoned id arrives
                    # mid-flight here; it must not satisfy this request
                    response = await client.request("ping", timeout=5.0)
                    assert response["op"] == "ping"
                    await asyncio.sleep(0.4)      # straggler fully lands
                    response = await client.request("ping", timeout=5.0)
                    assert response["op"] == "ping"

        asyncio.run(scenario())

    def test_client_default_timeout_applies_to_every_request(self):
        async def scenario():
            async with ScriptedServer({"hang": "stall"}) as server:
                async with ServeClient("127.0.0.1", server.port,
                                       timeout=0.2) as client:
                    with pytest.raises(ServeError) as excinfo:
                        await client.request("hang")
                    assert excinfo.value.code == ErrorCode.TIMEOUT

        asyncio.run(scenario())

    def test_explicit_none_overrides_client_default(self):
        async def scenario():
            async with ScriptedServer({"slow": 0.3}) as server:
                async with ServeClient("127.0.0.1", server.port,
                                       timeout=0.05) as client:
                    # per-request None = wait forever, despite the default
                    response = await client.request("slow", timeout=None)
                    assert response["ok"]

        asyncio.run(scenario())
