"""``python -m repro serve`` + ``loadgen``: the shipped commands, end to end.

Boots the real server as a subprocess (ephemeral port, announced as one
JSON line on stdout), drives it with the real loadgen CLI, and checks the
shutdown contract: SIGINT drains the lanes and exits 0.
"""

import json
import signal
import subprocess
import sys
import time

import pytest


@pytest.fixture(scope="module")
def server():
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--shards", "2", "--backend", "inline",
         "--tenant-bytes", str(1 << 16)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        line = process.stdout.readline()
        event = json.loads(line)
        assert event["event"] == "listening"
        yield process, event["host"], event["port"]
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()


def run_loadgen(port, *args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", "loadgen", "--port", str(port),
         *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestServeLoadgenCli:
    def test_loadgen_json_contract_and_clean_run(self, server):
        _process, _host, port = server
        result = run_loadgen(port, "--tenants", "2", "--connections", "2",
                             "--requests", "10", "--batch", "2",
                             "--footprint-blocks", "32", "--json")
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)     # exactly one JSON document
        assert report["requests"] == 20
        assert report["errors"] == 0
        assert report["rps"] > 0
        assert report["p50_ms"] <= report["p99_ms"]

    def test_loadgen_human_output(self, server):
        _process, _host, port = server
        result = run_loadgen(port, "--tenants", "1", "--connections", "1",
                             "--requests", "5", "--footprint-blocks", "16",
                             "--seed", "9")
        assert result.returncode == 0, result.stderr
        assert "throughput" in result.stdout
        assert "p99" in result.stdout

    def test_loadgen_unreachable_port_is_exit_2(self):
        result = run_loadgen(1)      # port 1: nothing listens there
        assert result.returncode == 2
        assert "cannot reach" in result.stderr

    def test_sigint_drains_and_exits_zero(self, server):
        # NOTE: must stay the last test using the shared server fixture —
        # it shuts the server down
        process, _host, port = server
        result = run_loadgen(port, "--connections", "1", "--requests", "3",
                             "--footprint-blocks", "16", "--json")
        assert result.returncode == 0, result.stderr
        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=30) == 0
        stderr = process.stderr.read()
        assert "drained and stopped" in stderr


class TestServeCliErrors:
    def test_unknown_scheme_is_exit_2(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--scheme", "nope"],
            capture_output=True, text=True, timeout=60)
        assert result.returncode == 2

    def test_bad_shard_count_is_exit_2(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--shards", "0"],
            capture_output=True, text=True, timeout=60)
        assert result.returncode == 2
