"""Wire-format unit tests: framing round-trips, malformed-frame rejection."""

import asyncio
import json

import pytest

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
)


def _read(*chunks: bytes):
    """Feed bytes to a StreamReader and read one frame.

    The reader is built *inside* the running loop: constructing one
    without a current event loop is a DeprecationWarning (an error under
    the tier-1 filter) once any earlier ``asyncio.run`` has torn the
    loop down.
    """

    async def scenario():
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(scenario())


class TestFraming:
    def test_round_trip(self):
        payload = {"id": 7, "op": "read", "addresses": [0, 64, 128],
                   "nested": {"k": [1, 2, None, True]}}
        assert decode_frame(encode_frame(payload)[4:]) == payload

    def test_length_prefix_is_big_endian_payload_length(self):
        frame = encode_frame({"id": 1})
        body = json.dumps({"id": 1}, separators=(",", ":")).encode()
        assert frame[:4] == len(body).to_bytes(4, "big")
        assert frame[4:] == body

    def test_read_frame_round_trip(self):
        frame = encode_frame({"id": 3, "op": "ping"})
        assert _read(frame) == {"id": 3, "op": "ping"}

    def test_read_two_frames_then_clean_eof(self):
        first = encode_frame({"id": 1})
        second = encode_frame({"id": 2})

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(first + second)
            reader.feed_eof()
            assert (await read_frame(reader))["id"] == 1
            assert (await read_frame(reader))["id"] == 2
            assert await read_frame(reader) is None

        asyncio.run(scenario())

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


class TestMalformedFrames:
    def test_declared_oversize_rejected_before_reading_payload(self):
        # only the 4-byte header arrives; the reader must refuse without
        # waiting for (or buffering) the declared 2 GB
        header = (1 << 31).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="declared"):
            _read(header)

    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="frame header"):
            _read(b"\x00\x00")

    def test_truncated_payload(self):
        frame = encode_frame({"id": 9, "op": "ping"})
        with pytest.raises(ProtocolError, match="closed inside a frame"):
            _read(frame[:-3])

    def test_non_json_payload(self):
        body = b"definitely not json"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(ProtocolError, match="not valid JSON"):
            _read(frame)

    def test_non_object_payload(self):
        body = json.dumps([1, 2, 3]).encode()
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(ProtocolError, match="JSON object"):
            _read(frame)

    def test_non_utf8_payload(self):
        body = b"\xff\xfe\xfd\xfc"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(ProtocolError, match="not valid JSON"):
            _read(frame)

    def test_encode_rejects_non_dict(self):
        with pytest.raises(ProtocolError, match="object"):
            encode_frame([1, 2, 3])
