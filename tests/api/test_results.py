"""Normalized result surface: shared meta block, deprecation shims."""

import json
import subprocess
import sys

import pytest

from repro import api
from repro.core.config import PRESETS
from repro.core.results import (
    RESULT_SCHEMA,
    ResultBase,
    ResultMeta,
    config_fingerprint,
)


class TestConfigFingerprint:
    def test_stable(self):
        config = PRESETS["split+gcm"]
        assert config_fingerprint(config) == config_fingerprint(config)

    def test_distinguishes_presets(self):
        prints = {config_fingerprint(c) for c in PRESETS.values()}
        assert len(prints) == len(PRESETS)

    def test_constructor_and_registry_agree(self):
        from repro.core.config import secddr_config
        from repro.schemes import REGISTRY
        assert (config_fingerprint(secddr_config())
                == config_fingerprint(REGISTRY.resolve("secddr")))


class TestMetaAttached:
    def test_run_meta(self):
        result = api.run("split+gcm", "mcf", refs=300)
        assert isinstance(result, ResultBase)
        assert result.meta.kind == "run"
        assert result.meta.schema == RESULT_SCHEMA
        assert result.meta.preset == "split+gcm"
        assert result.meta.config_fingerprint == config_fingerprint(
            PRESETS["split+gcm"])

    def test_profile_meta_and_run_field(self):
        result = api.profile("split+gcm", "mcf", refs=300)
        assert result.meta.kind == "profile"
        assert result.run.cycles > 0
        assert result.to_dict()["meta"]["schema"] == RESULT_SCHEMA

    def test_fuzz_meta(self):
        report = api.fuzz(campaigns=1, presets=["split+gcm"], seed=0)
        assert report.meta.kind == "fuzz"
        assert report.meta.seed == 0
        assert report.to_dict()["meta"]["kind"] == "fuzz"

    def test_bench_meta(self):
        result = api.bench(quick=True, seed=3)
        assert result.meta.kind == "bench"
        assert result.meta.seed == 3
        assert result.ok
        assert result.report["schema"].startswith("repro-bench/")

    def test_meta_is_frozen(self):
        import dataclasses
        meta = ResultMeta(kind="run")
        with pytest.raises(dataclasses.FrozenInstanceError):
            meta.kind = "other"


class TestDeprecatedNames:
    def test_profile_result_attribute_warns(self):
        result = api.profile("split+gcm", "mcf", refs=300)
        with pytest.warns(DeprecationWarning, match="ProfileResult.run"):
            legacy = result.result
        assert legacy is result.run

    def test_bench_indexing_warns(self):
        result = api.bench(quick=True)
        with pytest.warns(DeprecationWarning, match="BenchResult.report"):
            legacy = result["schema"]
        assert legacy == result.report["schema"]


class TestSchemesJSONPurity:
    def test_schemes_json_stdout_is_pure_json(self):
        """The documented machine interface: the ENTIRE stdout of
        ``python -m repro schemes --json`` must parse as one JSON object
        (no banners, progress lines, or warnings mixed in)."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "schemes", "--json"],
            capture_output=True, text=True, timeout=600)
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert set(payload) == set(PRESETS)
        for name, entry in payload.items():
            assert entry["name"] == name
            assert {c["kind"] for c in entry["components"]} == {
                "codec", "counter", "mac", "integrity"}
        assert payload["secddr"]["integrity"] == "secddr"
        assert payload["scattered"]["encryption"] == "shares"
