"""The repro.api facade: config lookup, experiments, result shape."""

import dataclasses
import json

import pytest

from repro import api
from repro.api import Experiment, ExperimentResult, get_config, list_configs
from repro.core.config import PRESETS, SecureMemoryConfig
from repro.workloads import spec_trace


class TestGetConfig:
    def test_every_preset_resolves(self):
        for name in list_configs():
            config = get_config(name)
            assert isinstance(config, SecureMemoryConfig)
            assert config.name == name

    def test_list_matches_presets(self):
        assert list_configs() == list(PRESETS)

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            get_config("rot13")

    def test_typo_gets_a_suggestion(self):
        with pytest.raises(KeyError, match="did you mean"):
            get_config("spilt")
        with pytest.raises(KeyError, match="split"):
            get_config("splitt")

    def test_message_lists_choices(self):
        with pytest.raises(KeyError, match="baseline"):
            get_config("zzzzzz")

    def test_overrides_applied(self):
        config = get_config("split+gcm", mac_bits=32)
        assert config.mac_bits == 32
        assert get_config("split+gcm").mac_bits == 64  # preset untouched

    def test_overrides_validated(self):
        with pytest.raises(ValueError, match="mac_bits"):
            get_config("split+gcm", mac_bits=48)


class TestExperiment:
    def test_accepts_preset_name_or_config(self):
        by_name = Experiment("split", refs=5000)
        by_config = Experiment(get_config("split"), refs=5000)
        assert by_name.config == by_config.config

    def test_rejects_unknown_app(self):
        with pytest.raises(ValueError, match="unknown app"):
            Experiment("split", "notanapp")

    def test_run_produces_consistent_result(self):
        result = Experiment("split", "gzip", refs=8000).run()
        assert isinstance(result, ExperimentResult)
        assert result.scheme == "split"
        assert result.app == "gzip"
        assert 0.0 < result.normalized_ipc <= 1.5
        assert result.overhead == pytest.approx(1.0 - result.normalized_ipc)
        assert result.counter_cache_hit_rate is not None

    def test_baseline_has_no_counter_cache(self):
        result = Experiment("baseline", "gzip", refs=6000).run()
        assert result.counter_cache_hit_rate is None
        assert result.timely_pad_rate is None
        assert result.normalized_ipc == pytest.approx(1.0)

    def test_prebuilt_trace_and_shared_baseline(self):
        trace = spec_trace("gzip", 6000)
        first = Experiment("split", trace, refs=6000)
        first_result = first.run()
        second = Experiment("mono64b", trace, refs=6000,
                            baseline=first.baseline_result)
        second_result = second.run()
        # the shared baseline was reused, not re-simulated
        assert second.baseline_result is first.baseline_result
        assert second_result.baseline_ipc == first_result.baseline_ipc

    def test_raw_results_kept(self):
        experiment = Experiment("split", "gzip", refs=6000)
        experiment.run()
        assert experiment.result is not None
        assert experiment.baseline_result is not None
        assert experiment.result.ipc > 0

    def test_to_dict_is_json_ready(self):
        result = Experiment("split", "gzip", refs=6000).run()
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["scheme"] == "split"
        assert set(payload) == {
            f.name for f in dataclasses.fields(ExperimentResult)
        }


class TestRunShortcut:
    def test_one_shot(self):
        result = api.run("direct", "gzip", refs=6000)
        assert result.scheme == "direct"
        assert result.counter_cache_hit_rate is None
