"""Up-front validation of Experiment.run's checkpoint arguments.

Regression suite for the bugfix: a bad cadence, an unpaired keyword, or a
``resume_from`` that is missing / corrupt / from a different experiment
must raise a clear :class:`ValueError` *before* any simulation starts —
previously the baseline simulation ran first and a missing file surfaced
as a raw :class:`FileNotFoundError` minutes into the run.
"""

import pytest

import repro.api
from repro import api
from repro.resilience import CheckpointError

REFS = 3000
EVERY = 1000
SCHEME = "split+gcm"


@pytest.fixture
def no_simulation(monkeypatch):
    """Make any simulation attempt explode — validation must come first."""

    def _boom(*_args, **_kwargs):
        raise AssertionError(
            "simulate() ran before checkpoint-argument validation")

    monkeypatch.setattr(repro.api, "simulate", _boom)


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("ckpt") / "roll.ckpt")
    api.run(SCHEME, "swim", refs=REFS, checkpoint_every=EVERY,
            checkpoint_path=path)
    return path


class TestUpFrontValidation:
    @pytest.mark.parametrize("every", [0, -1, -100])
    def test_non_positive_cadence(self, no_simulation, tmp_path, every):
        with pytest.raises(ValueError, match="must be >= 1"):
            api.run(SCHEME, "swim", refs=REFS, checkpoint_every=every,
                    checkpoint_path=str(tmp_path / "x.ckpt"))

    def test_cadence_without_path(self, no_simulation):
        with pytest.raises(ValueError, match="go together"):
            api.run(SCHEME, "swim", refs=REFS, checkpoint_every=EVERY)

    def test_path_without_cadence(self, no_simulation, tmp_path):
        with pytest.raises(ValueError, match="go together"):
            api.run(SCHEME, "swim", refs=REFS,
                    checkpoint_path=str(tmp_path / "x.ckpt"))

    def test_missing_resume_file(self, no_simulation, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            api.run(SCHEME, "swim", refs=REFS,
                    resume_from=str(tmp_path / "never-written.ckpt"))

    def test_resume_from_directory(self, no_simulation, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            api.run(SCHEME, "swim", refs=REFS, resume_from=str(tmp_path))

    def test_corrupt_resume_file(self, no_simulation, tmp_path):
        bad = tmp_path / "corrupt.ckpt"
        bad.write_bytes(b"this is not a checkpoint container")
        with pytest.raises(CheckpointError, match="magic"):
            api.run(SCHEME, "swim", refs=REFS, resume_from=str(bad))

    def test_config_mismatch_fails_before_simulation(self, checkpoint,
                                                     no_simulation):
        # a checkpoint whose config fingerprint differs from the
        # experiment's must be rejected up front (and CheckpointError is a
        # ValueError, so plain ValueError guards also catch it)
        with pytest.raises(ValueError, match="configuration"):
            api.run("mono+gcm", "swim", refs=REFS, resume_from=checkpoint)

    def test_experiment_mismatch_fails_before_simulation(self, checkpoint,
                                                         no_simulation):
        with pytest.raises(CheckpointError, match="different experiment"):
            api.run(SCHEME, "mcf", refs=REFS, resume_from=checkpoint)

    def test_valid_resume_still_works(self, checkpoint):
        result = api.run(SCHEME, "swim", refs=REFS, resume_from=checkpoint)
        plain = api.run(SCHEME, "swim", refs=REFS)
        assert result.to_dict() == plain.to_dict()
