"""Overflow extrapolation and re-encryption work-ratio arithmetic."""

import pytest

from repro.analysis.overflow import (
    estimate_overflow,
    reencryption_work_ratio,
)


class TestEstimate:
    def test_basic_extrapolation(self):
        # 256 increments in 1 second -> an 8-bit counter lasts 1 second
        est = estimate_overflow(8, 256, 1.0)
        assert est.growth_rate_per_s == 256
        assert est.seconds_to_overflow == pytest.approx(1.0)

    def test_wider_counters_last_exponentially_longer(self):
        rate = 1000
        seconds = {b: estimate_overflow(b, rate, 1.0).seconds_to_overflow
                   for b in (8, 16, 32, 64)}
        assert seconds[16] / seconds[8] == pytest.approx(256)
        assert seconds[64] > 1000 * 365.25 * 86400  # millennia

    def test_zero_rate_never_overflows(self):
        assert estimate_overflow(8, 0, 1.0).seconds_to_overflow == float("inf")

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            estimate_overflow(8, 1, 0.0)

    @pytest.mark.parametrize("seconds,fragment", [
        (0.002, "ms"), (30, "s"), (600, "min"), (7200, "h"),
        (10 * 86400, "days"), (3 * 365 * 86400, "year"),
        (1e7 * 365.25 * 86400, "millennia"),
    ])
    def test_humanization_bands(self, seconds, fragment):
        est = estimate_overflow(8, 256, 256 / (256 / seconds))
        # rebuild directly to dodge float gymnastics
        from repro.analysis.overflow import OverflowEstimate
        est = OverflowEstimate(8, 1.0, seconds)
        assert fragment in est.human

    def test_never(self):
        from repro.analysis.overflow import OverflowEstimate
        assert OverflowEstimate(8, 0.0, float("inf")).human == "never"


class TestWorkRatio:
    def test_uniform_counters_ratio_is_locality_free(self):
        """With every block advancing equally, split still wins by the
        ratio of page size to memory size times the overflow-rate ratio."""
        counters = {i * 64: 100 for i in range(64)}  # one full page
        ratio = reencryption_work_ratio(
            counters, minor_bits=7, mono_bits=8, blocks_per_page=64,
            page_of=lambda a: a // 4096, total_memory_blocks=1_000_000,
        )
        # mono: (100/256) * 1e6 blocks; split: (100/128) * 64 blocks
        assert ratio == pytest.approx((100 / 128 * 64) / (100 / 256 * 1e6))

    def test_skewed_counters_amplify_the_advantage(self):
        """Most pages advance slowly: split work tracks per-page rates
        while mono work tracks the single fastest counter."""
        hot = {0: 1000}
        cold = {4096 * (i + 1): 1 for i in range(100)}
        skewed = {**hot, **cold}
        uniform = {4096 * i: 1000 for i in range(101)}
        kwargs = dict(minor_bits=7, mono_bits=8, blocks_per_page=64,
                      page_of=lambda a: a // 4096,
                      total_memory_blocks=1_000_000)
        assert (reencryption_work_ratio(skewed, **kwargs)
                < reencryption_work_ratio(uniform, **kwargs))

    def test_empty_counters(self):
        assert reencryption_work_ratio(
            {}, minor_bits=7, mono_bits=8, blocks_per_page=64,
            page_of=lambda a: a // 4096, total_memory_blocks=10,
        ) == 0.0
