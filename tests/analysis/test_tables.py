"""FigureTable rendering and persistence."""

import os

from repro.analysis.tables import FigureTable


class TestFigureTable:
    def test_set_get(self):
        t = FigureTable(title="T")
        t.set("row", "col", 0.5)
        assert t.get("row", "col") == 0.5
        assert t.get("row", "other") is None

    def test_row_extraction(self):
        t = FigureTable(title="T")
        t.set("a", "x", 1.0)
        t.set("a", "y", 2.0)
        t.set("b", "x", 3.0)
        assert t.row("a") == [1.0, 2.0]

    def test_label_order_preserved(self):
        t = FigureTable(title="T")
        t.set("z", "c2", 1.0)
        t.set("a", "c1", 2.0)
        assert t.row_labels == ["z", "a"]
        assert t.col_labels == ["c2", "c1"]

    def test_render_contains_everything(self):
        t = FigureTable(title="My Figure")
        t.set("scheme", "app", 0.987)
        t.notes.append("a note")
        text = t.render()
        assert "My Figure" in text
        assert "scheme" in text
        assert "0.987" in text
        assert "a note" in text

    def test_render_missing_cell_as_dash(self):
        t = FigureTable(title="T")
        t.set("a", "x", 1.0)
        t.set("b", "y", 2.0)
        assert "-" in t.render()

    def test_save(self, tmp_path):
        t = FigureTable(title="T")
        t.set("a", "x", 1.0)
        path = os.path.join(tmp_path, "sub", "out.txt")
        t.save(path)
        with open(path) as handle:
            assert "T" in handle.read()

    def test_custom_format(self):
        t = FigureTable(title="T", value_format="{:,.0f}")
        t.set("a", "x", 12345.6)
        assert "12,346" in t.render()
