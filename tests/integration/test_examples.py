"""Smoke tests: every example script runs cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "examples"
)


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "tampering detected" in result.stdout

    def test_attack_demo(self):
        result = run_example("attack_demo.py")
        assert result.returncode == 0, result.stderr
        out = result.stdout
        # the 4.3 flaw reproduces, and the fix catches it
        assert "pad reuse induced" in out
        assert out.count("DETECTED") >= 4

    def test_ipc_study(self):
        result = run_example("ipc_study.py", "gzip", "20000")
        assert result.returncode == 0, result.stderr
        assert "split" in result.stdout
        assert "mono+sha" in result.stdout

    def test_ipc_study_rejects_unknown_app(self):
        result = run_example("ipc_study.py", "doom")
        assert result.returncode != 0

    def test_reencryption_study(self):
        result = run_example("reencryption_study.py")
        assert result.returncode == 0, result.stderr
        assert "page re-encryptions" in result.stdout
        assert "millennia" in result.stdout
