"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main


def run_cli(*args):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=600)


class TestCLI:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "split+gcm" in out
        assert "mono+sha" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        assert "mcf" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--app", "gzip", "--scheme", "split",
                     "--refs", "15000"]) == 0
        out = capsys.readouterr().out
        assert "normalized IPC" in out
        assert "counter-cache hits" in out

    def test_simulate_unknown_scheme(self, capsys):
        assert main(["simulate", "--scheme", "rot13"]) == 2

    def test_attack_detected_with_full_design(self, capsys):
        assert main(["attack"]) == 0
        assert "DETECTED" in capsys.readouterr().out

    def test_attack_succeeds_without_counter_auth(self, capsys):
        assert main(["attack", "--no-counter-auth"]) == 1
        assert "SUCCEEDED" in capsys.readouterr().out

    def test_module_invocation(self):
        result = run_cli("apps")
        assert result.returncode == 0
        assert "swim" in result.stdout
