"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main


def run_cli(*args):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=600)


class TestCLI:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "split+gcm" in out
        assert "mono+sha" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        assert "mcf" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--app", "gzip", "--scheme", "split",
                     "--refs", "15000"]) == 0
        out = capsys.readouterr().out
        assert "normalized IPC" in out
        assert "counter-cache hits" in out

    def test_simulate_unknown_scheme(self, capsys):
        assert main(["simulate", "--scheme", "rot13"]) == 2

    def test_attack_detected_with_full_design(self, capsys):
        assert main(["attack"]) == 0
        assert "DETECTED" in capsys.readouterr().out

    def test_attack_succeeds_without_counter_auth(self, capsys):
        assert main(["attack", "--no-counter-auth"]) == 1
        assert "SUCCEEDED" in capsys.readouterr().out

    def test_module_invocation(self):
        result = run_cli("apps")
        assert result.returncode == 0
        assert "swim" in result.stdout


class TestJSONOutput:
    def test_schemes_json(self, capsys):
        import json
        assert main(["schemes", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "split+gcm" in payload
        assert payload["split+gcm"]["auth"] == "gcm"
        assert payload["split+gcm"]["mac_bits"] == 64
        assert payload["baseline"]["encryption"] == "none"

    def test_simulate_json_is_one_object(self, capsys):
        import json
        assert main(["simulate", "--app", "gzip", "--scheme", "split",
                     "--refs", "15000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheme"] == "split"
        assert payload["app"] == "gzip"
        assert 0.0 < payload["normalized_ipc"] <= 1.5
        assert payload["counter_cache_hit_rate"] is not None
        assert "page_reencryptions" in payload

    def test_simulate_json_baseline_nulls(self, capsys):
        import json
        assert main(["simulate", "--app", "gzip", "--scheme", "baseline",
                     "--refs", "10000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counter_cache_hit_rate"] is None
        assert payload["timely_pad_rate"] is None

    def test_unknown_scheme_suggestion_on_stderr(self, capsys):
        assert main(["simulate", "--scheme", "spilt"]) == 2
        err = capsys.readouterr().err
        assert "unknown scheme" in err
        assert "split" in err
