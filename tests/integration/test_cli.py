"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main


def run_cli(*args):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=600)


class TestCLI:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "split+gcm" in out
        assert "mono+sha" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        assert "mcf" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--app", "gzip", "--scheme", "split",
                     "--refs", "15000"]) == 0
        out = capsys.readouterr().out
        assert "normalized IPC" in out
        assert "counter-cache hits" in out

    def test_simulate_unknown_scheme(self, capsys):
        assert main(["simulate", "--scheme", "rot13"]) == 2

    def test_attack_detected_with_full_design(self, capsys):
        assert main(["attack"]) == 0
        assert "DETECTED" in capsys.readouterr().out

    def test_attack_succeeds_without_counter_auth(self, capsys):
        assert main(["attack", "--no-counter-auth"]) == 1
        assert "SUCCEEDED" in capsys.readouterr().out

    def test_module_invocation(self):
        result = run_cli("apps")
        assert result.returncode == 0
        assert "swim" in result.stdout


class TestJSONOutput:
    def test_schemes_json(self, capsys):
        import json
        assert main(["schemes", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "split+gcm" in payload
        assert payload["split+gcm"]["auth"] == "gcm"
        assert payload["split+gcm"]["mac_bits"] == 64
        assert payload["baseline"]["encryption"] == "none"

    def test_simulate_json_is_one_object(self, capsys):
        import json
        assert main(["simulate", "--app", "gzip", "--scheme", "split",
                     "--refs", "15000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheme"] == "split"
        assert payload["app"] == "gzip"
        assert 0.0 < payload["normalized_ipc"] <= 1.5
        assert payload["counter_cache_hit_rate"] is not None
        assert "page_reencryptions" in payload

    def test_simulate_json_baseline_nulls(self, capsys):
        import json
        assert main(["simulate", "--app", "gzip", "--scheme", "baseline",
                     "--refs", "10000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counter_cache_hit_rate"] is None
        assert payload["timely_pad_rate"] is None

    def test_unknown_scheme_suggestion_on_stderr(self, capsys):
        assert main(["simulate", "--scheme", "spilt"]) == 2
        err = capsys.readouterr().err
        assert "unknown scheme" in err
        assert "split" in err


class TestJSONPurity:
    """With --json, stdout is EXACTLY one JSON document — json.loads must
    swallow the whole stream, piped through a real subprocess so stray
    prints anywhere in the import graph are caught too."""

    def test_simulate_json_stdout_is_pure(self):
        import json
        result = run_cli("simulate", "--app", "gzip", "--scheme", "split",
                         "--refs", "8000", "--json")
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["scheme"] == "split"

    def test_fuzz_json_stdout_is_pure(self):
        import json
        result = run_cli("fuzz", "--campaigns", "1", "--preset", "split+gcm",
                         "--ops", "12", "--json")
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert "ok" in payload

    def test_profile_json_stdout_is_pure(self, tmp_path):
        import json
        trace_path = str(tmp_path / "trace.json")
        result = run_cli("profile", "--app", "gzip", "--scheme", "split+gcm",
                         "--refs", "8000", "--trace-out", trace_path,
                         "--json")
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["ok"] is True
        assert payload["misses"] > 0
        # The file-written note goes to stderr, never stdout.
        assert "wrote Chrome trace" in result.stderr
        # The exported trace is itself valid Chrome-trace JSON.
        with open(trace_path) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]


class TestProfileCommand:
    def test_profile_text_output(self, capsys):
        assert main(["profile", "--app", "gzip", "--scheme", "split+gcm",
                     "--refs", "8000"]) == 0
        out = capsys.readouterr().out
        assert "misses attributed" in out
        assert "max residual" in out
        assert "dram" in out

    def test_profile_json_reports_attribution(self, capsys):
        import json
        assert main(["profile", "--app", "gzip", "--scheme", "split+sha",
                     "--refs", "8000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        report = payload["attribution"]
        assert report["misses"] > 0
        assert report["max_residual_fraction"] <= 0.01
        total = sum(report["components_cycles"].values())
        assert total == pytest.approx(report["total_latency_cycles"],
                                      rel=1e-6)

    def test_profile_csv_export(self, capsys, tmp_path):
        csv_path = str(tmp_path / "events.csv")
        assert main(["profile", "--app", "gzip", "--scheme", "split+gcm",
                     "--refs", "6000", "--csv-out", csv_path]) == 0
        with open(csv_path) as handle:
            header = handle.readline()
        assert header.startswith("type,cat,name")

    def test_profile_unknown_scheme(self, capsys):
        assert main(["profile", "--scheme", "rot13"]) == 2
