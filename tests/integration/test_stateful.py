"""Stateful property test: the secure memory vs. a plain dict reference.

Hypothesis drives random interleavings of block writes, reads, byte-level
read-modify-writes, flushes, and forced L2 evictions against the full
Split+GCM system (small caches so evictions and counter traffic are
constant), checking that the plaintext view always matches a reference
model and that no integrity violation ever fires without an attack.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.core import SecureMemorySystem, split_gcm_config

REGION = 32 * 1024
NUM_BLOCKS = REGION // 64


class SecureMemoryMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.system = SecureMemorySystem(
            split_gcm_config(minor_bits=3, counter_cache_size=512,
                             counter_cache_assoc=2),
            protected_bytes=REGION, l2_size=1024, l2_assoc=2,
        )
        self.reference: dict[int, bytes] = {}

    @rule(block=st.integers(min_value=0, max_value=NUM_BLOCKS - 1),
          fill=st.integers(min_value=0, max_value=255))
    def write_block(self, block, fill):
        data = bytes([fill ^ (i & 0xFF) for i in range(64)])
        self.system.write_block(block * 64, data)
        self.reference[block * 64] = data

    @rule(block=st.integers(min_value=0, max_value=NUM_BLOCKS - 1))
    def read_block(self, block):
        expected = self.reference.get(block * 64, bytes(64))
        assert self.system.read_block(block * 64) == expected

    @rule(address=st.integers(min_value=0, max_value=REGION - 8),
          payload=st.binary(min_size=1, max_size=8))
    def write_bytes(self, address, payload):
        self.system.write(address, payload)
        for i, value in enumerate(payload):
            base = (address + i) & ~63
            block = bytearray(self.reference.get(base, bytes(64)))
            block[(address + i) - base] = value
            self.reference[base] = bytes(block)

    @rule()
    def flush(self):
        self.system.flush()

    @rule(block=st.integers(min_value=0, max_value=NUM_BLOCKS - 1))
    def evict_block(self, block):
        """Natural eviction stand-in: write back + drop from the L2."""
        address = block * 64
        line = self.system.l2.lookup(address)
        if line is None:
            return
        payload = bytes(line.payload)
        dirty = line.dirty
        self.system.l2.invalidate(address)
        if dirty:
            self.system._write_back(address, payload)

    @invariant()
    def no_spurious_violations(self):
        if hasattr(self, "system"):
            assert self.system.integrity_violations == 0


TestSecureMemoryStateful = SecureMemoryMachine.TestCase
TestSecureMemoryStateful.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)
