"""End-to-end integration: miniature versions of the headline results.

These are scaled-down (single-app, short-trace) versions of the benchmark
suite's shape checks, fast enough for the regular test run.
"""

import pytest

from repro.core import (
    baseline_config,
    direct_config,
    gcm_auth_config,
    mono_config,
    mono_sha_config,
    sha_auth_config,
    split_config,
    split_gcm_config,
)
from repro.sim import run_normalized, simulate
from repro.workloads import spec_trace

REFS = 30_000
WARMUP = 10_000


@pytest.fixture(scope="module")
def swim_trace():
    return spec_trace("swim", REFS)


@pytest.fixture(scope="module")
def swim_baseline(swim_trace):
    return simulate(baseline_config(), swim_trace, warmup_refs=WARMUP)


def nipc(config, trace, baseline):
    return run_normalized(config, trace, baseline=baseline,
                          warmup_refs=WARMUP).normalized_ipc


class TestFigure4Shape:
    def test_split_beats_mono64_and_direct(self, swim_trace, swim_baseline):
        split = nipc(split_config(), swim_trace, swim_baseline)
        mono64 = nipc(mono_config(64), swim_trace, swim_baseline)
        direct = nipc(direct_config(), swim_trace, swim_baseline)
        assert split > mono64
        assert split > direct
        assert split > 0.85

    def test_counter_width_gradient(self, swim_trace, swim_baseline):
        values = [nipc(mono_config(b), swim_trace, swim_baseline)
                  for b in (8, 16, 32, 64)]
        assert values == sorted(values, reverse=True)


class TestFigure7Shape:
    def test_gcm_beats_slow_sha(self, swim_trace, swim_baseline):
        gcm = nipc(gcm_auth_config(), swim_trace, swim_baseline)
        sha320 = nipc(sha_auth_config(320), swim_trace, swim_baseline)
        sha640 = nipc(sha_auth_config(640), swim_trace, swim_baseline)
        assert gcm > sha320 > sha640


class TestFigure9Shape:
    def test_new_scheme_beats_old(self, swim_trace, swim_baseline):
        new = nipc(split_gcm_config(), swim_trace, swim_baseline)
        old = nipc(mono_sha_config(), swim_trace, swim_baseline)
        assert (1 - old) > 1.8 * (1 - new)


class TestFunctionalTimingAgreement:
    def test_counter_cache_behaviour_matches(self):
        """The functional and timing layers share counter-cache structure:
        driving both with the same block-level access pattern yields the
        same hit/miss counts."""
        from repro.core import SecureMemorySystem
        from repro.sim.timing_memory import TimingSecureMemory

        config = split_config(counter_cache_size=1024,
                              counter_cache_assoc=2)
        functional = SecureMemorySystem(config, protected_bytes=256 * 1024,
                                        l2_size=2 * 1024)
        timing = TimingSecureMemory(config)

        addresses = [i * 4096 for i in range(16)] * 3
        for address in addresses:
            functional.write_block(address, bytes(64))
            line = functional.l2.lookup(address)
            functional.l2.invalidate(address)
            functional._write_back(address, bytes(line.payload))
            timing.write_back(0.0, address)
        assert (functional.counter_cache.stats.misses
                == timing.counter_cache.stats.misses)

    def test_overflow_counts_match(self):
        """Minor-counter overflow schedules identically in both layers."""
        from repro.core import SecureMemorySystem
        from repro.sim.timing_memory import TimingSecureMemory

        config = split_config(minor_bits=3)
        functional = SecureMemorySystem(config, protected_bytes=64 * 1024,
                                        l2_size=1024)
        timing = TimingSecureMemory(config)
        for i in range(30):
            functional.write_block(0, bytes([i]) * 64)
            functional.flush()
            timing.write_back(float(i), 0)
        assert (functional.stats.reencryption.page_reencryptions
                == timing.stats.reencryption.page_reencryptions)
