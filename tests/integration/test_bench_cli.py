"""The ``python -m repro bench`` perf-regression harness, end to end.

The CI gate consumes this command as a black box: stdout must be exactly
one schema-versioned JSON document, the exit code must be 0 on a clean
run and 2 when the regression gate trips, and the ``--out`` file must be
the same report byte-for-byte-parseable.  These tests pin that contract
with real subprocess invocations (quick mode, so the whole file stays in
tier-1 time budget).
"""

import json
import subprocess
import sys

import pytest

from repro.bench import (
    BENCH_ID,
    BENCH_SCHEMA,
    compare_reports,
    load_report,
    validate_report,
)


def run_bench(*args, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", "bench", *args],
        capture_output=True, text=True, timeout=timeout,
    )


@pytest.fixture(scope="module")
def quick_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "report.json"
    result = run_bench("--quick", "--json", "--seed", "3",
                       "--out", str(out))
    return result, out


class TestJSONContract:
    def test_exit_code_clean(self, quick_run):
        result, _ = quick_run
        assert result.returncode == 0, result.stderr

    def test_stdout_is_exactly_one_json_document(self, quick_run):
        result, _ = quick_run
        # json.loads on the whole stream fails if anything but the one
        # document (progress lines, warnings) leaked onto stdout.
        report = json.loads(result.stdout)
        assert isinstance(report, dict)

    def test_progress_goes_to_stderr_not_stdout(self, quick_run):
        result, _ = quick_run
        assert "bench: timing crypto micros" in result.stderr
        assert not result.stdout.lstrip().startswith("bench")

    def test_report_passes_schema_validation(self, quick_run):
        result, _ = quick_run
        report = json.loads(result.stdout)
        validate_report(report)
        assert report["schema"] == BENCH_SCHEMA
        assert report["bench_id"] == BENCH_ID
        assert report["quick"] is True
        assert report["seed"] == 3

    def test_out_file_matches_stdout(self, quick_run):
        result, out = quick_run
        on_disk = load_report(str(out))
        assert on_disk == json.loads(result.stdout)

    def test_gate_metrics_are_positive_numbers(self, quick_run):
        result, _ = quick_run
        report = json.loads(result.stdout)
        assert report["gate_metrics"]
        for name, value in report["gate_metrics"].items():
            assert isinstance(value, float) and value > 0, name


class TestRegressionGate:
    def test_gate_against_own_baseline_passes(self, quick_run):
        # Quick-mode micros run 1 repeat over 64 blocks, so speedups are
        # noisy under parallel test load; a wide tolerance keeps this a
        # test of the gate plumbing rather than of timer stability (the
        # doctored-baseline test below covers actual tripping).
        _, out = quick_run
        result = run_bench("--quick", "--json", "--seed", "3",
                           "--baseline", str(out), "--tolerance", "0.75")
        assert result.returncode == 0, result.stderr
        gate = json.loads(result.stdout)["regression_gate"]
        assert gate["ok"] is True
        assert gate["tolerance"] == pytest.approx(0.75)

    def test_gate_trips_on_doctored_baseline(self, quick_run, tmp_path):
        # A baseline claiming 10x today's numbers must read as a >10%
        # regression and exit 2.
        _, out = quick_run
        doctored = load_report(str(out))
        doctored["gate_metrics"] = {
            name: value * 10.0
            for name, value in doctored["gate_metrics"].items()
        }
        path = tmp_path / "doctored.json"
        path.write_text(json.dumps(doctored))
        result = run_bench("--quick", "--json", "--seed", "3",
                           "--baseline", str(path))
        assert result.returncode == 2, result.stderr
        gate = json.loads(result.stdout)["regression_gate"]
        assert gate["ok"] is False
        assert gate["geomean_ratio"] < 0.9

    def test_improvements_cannot_mask_regressions(self, quick_run):
        # Half the metrics regress 10x while the other half improve 10x.
        # Uncapped, the geo-mean would sit at exactly 1.0 and the
        # regressions would sail through; the per-metric improvement cap
        # keeps the gains from buying back the losses.
        _, out = quick_run
        current = load_report(str(out))
        doctored = json.loads(json.dumps(current))
        for index, name in enumerate(sorted(doctored["gate_metrics"])):
            doctored["gate_metrics"][name] *= (
                10.0 if index % 2 == 0 else 0.1)
        gate = compare_reports(current, doctored)
        assert gate["ok"] is False
        assert gate["geomean_ratio"] < 0.5
        # the reported per-metric ratios stay raw — only the geo-mean
        # input is capped
        assert max(gate["ratios"].values()) > 5.0

    def test_missing_baseline_is_exit_2(self, tmp_path):
        result = run_bench("--quick", "--json",
                           "--baseline", str(tmp_path / "nope.json"))
        assert result.returncode == 2

    def test_corrupt_baseline_schema_is_exit_2(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9"}))
        result = run_bench("--quick", "--json", "--baseline", str(path))
        assert result.returncode == 2

    def test_quick_refuses_full_baseline(self, quick_run, tmp_path):
        _, out = quick_run
        full_ish = load_report(str(out))
        full_ish["quick"] = False
        path = tmp_path / "full.json"
        path.write_text(json.dumps(full_ish))
        result = run_bench("--quick", "--json", "--baseline", str(path))
        assert result.returncode == 2


class TestHumanOutput:
    def test_table_mode_mentions_kernels_and_gate(self, quick_run):
        _, out = quick_run
        result = run_bench("--quick", "--seed", "3",
                           "--baseline", str(out), "--tolerance", "0.75")
        assert result.returncode == 0, result.stderr
        for token in ("pad_generation", "vector", "ghash"):
            assert token in result.stdout
        # human mode must never be mistaken for the JSON contract
        with pytest.raises(json.JSONDecodeError):
            json.loads(result.stdout)
