"""Authentication strictness policies: exposed-latency arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.auth.policies import (
    COMMIT_HIDE_CYCLES,
    AuthPolicy,
    exposed_auth_latency,
)

times = st.floats(min_value=0, max_value=1e6, allow_nan=False)


class TestPolicies:
    def test_lazy_exposes_nothing(self):
        assert exposed_auth_latency(AuthPolicy.LAZY, 100.0, 700.0) == 0.0

    def test_safe_exposes_everything(self):
        assert exposed_auth_latency(AuthPolicy.SAFE, 100.0, 700.0) == 600.0

    def test_commit_hides_window(self):
        exposed = exposed_auth_latency(AuthPolicy.COMMIT, 100.0, 700.0)
        assert exposed == 600.0 - COMMIT_HIDE_CYCLES

    def test_commit_fully_hides_short_auth(self):
        assert exposed_auth_latency(AuthPolicy.COMMIT, 100.0, 150.0) == 0.0

    def test_auth_before_data_is_free(self):
        for policy in AuthPolicy:
            assert exposed_auth_latency(policy, 500.0, 400.0) == 0.0

    @given(data_ready=times, gap=times)
    def test_strictness_ordering(self, data_ready, gap):
        """lazy <= commit <= safe for every timing combination."""
        auth_done = data_ready + gap
        lazy = exposed_auth_latency(AuthPolicy.LAZY, data_ready, auth_done)
        commit = exposed_auth_latency(AuthPolicy.COMMIT, data_ready,
                                      auth_done)
        safe = exposed_auth_latency(AuthPolicy.SAFE, data_ready, auth_done)
        assert lazy <= commit <= safe

    @given(data_ready=times, gap=times)
    def test_exposure_never_exceeds_gap(self, data_ready, gap):
        auth_done = data_ready + gap
        for policy in AuthPolicy:
            assert 0 <= exposed_auth_latency(
                policy, data_ready, auth_done
            ) <= gap + 1e-9

    def test_custom_hide_window(self):
        assert exposed_auth_latency(AuthPolicy.COMMIT, 0.0, 100.0,
                                    commit_hide_cycles=30.0) == 70.0
