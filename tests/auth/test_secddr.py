"""SecDDR-style authenticator: flat MAC-of-MACs, O(1) verify, detection."""

import pytest

from repro.auth.codes import build_flat_geometry, build_geometry
from repro.auth.merkle import IntegrityViolation
from repro.auth.schemes import GCMMACScheme
from repro.auth.secddr import SecDDRAuthenticator
from repro.memory.dram import MainMemory

NUM_LEAVES = 64
BLOCK = 64


def make_auth(node_cache_bytes=2 * 1024, mac_bits=64):
    geometry = build_flat_geometry(NUM_LEAVES, BLOCK, mac_bits)
    code_bytes = geometry.total_code_blocks * BLOCK
    dram = MainMemory(size_bytes=NUM_LEAVES * BLOCK + code_bytes,
                      block_size=BLOCK)
    auth = SecDDRAuthenticator(geometry, GCMMACScheme(bytes(16), mac_bits),
                               dram, code_region_base=NUM_LEAVES * BLOCK,
                               node_cache_bytes=node_cache_bytes)
    return auth, dram


def leaf_addr(index):
    return index * BLOCK


class TestVerifyUpdate:
    def test_update_then_verify(self):
        auth, _ = make_auth()
        content = bytes(range(64))
        auth.update_leaf(3, leaf_addr(3), 1, content)
        auth.verify_leaf(3, leaf_addr(3), 1, content)  # must not raise

    def test_verify_wrong_content_fails(self):
        auth, _ = make_auth()
        auth.update_leaf(3, leaf_addr(3), 1, bytes(64))
        with pytest.raises(IntegrityViolation):
            auth.verify_leaf(3, leaf_addr(3), 1, b"\x01" + bytes(63))

    def test_verify_wrong_counter_fails(self):
        auth, _ = make_auth()
        auth.update_leaf(3, leaf_addr(3), 1, bytes(64))
        with pytest.raises(IntegrityViolation):
            auth.verify_leaf(3, leaf_addr(3), 2, bytes(64))

    def test_relocated_content_fails(self):
        """The leaf MAC binds the address: ciphertext moved to another
        address must not verify (SecDDR's splicing defence)."""
        auth, _ = make_auth()
        auth.update_leaf(3, leaf_addr(3), 1, bytes(64))
        with pytest.raises(IntegrityViolation):
            auth.verify_leaf(3, leaf_addr(4), 1, bytes(64))

    def test_rejects_deep_geometry(self):
        geometry = build_geometry(NUM_LEAVES, BLOCK, 64)
        dram = MainMemory(size_bytes=1 << 20, block_size=BLOCK)
        with pytest.raises(ValueError):
            SecDDRAuthenticator(geometry, GCMMACScheme(bytes(16), 64),
                                dram, code_region_base=NUM_LEAVES * BLOCK)


class TestConstantTimeVerify:
    def test_chain_never_longer_than_one(self):
        """The whole point: at most ONE off-chip node fetch per verify,
        regardless of memory size — no Merkle walk."""
        auth, _ = make_auth(node_cache_bytes=512)
        for i in range(NUM_LEAVES):
            auth.update_leaf(i, leaf_addr(i), 1, bytes([i]) * 64)
        auth.flush()
        auth.node_cache.flush()
        for i in range(NUM_LEAVES):
            fetched = auth.verify_leaf(i, leaf_addr(i), 1, bytes([i]) * 64)
            assert fetched <= 1
        assert max(auth.stats.chain_lengths) <= 1

    def test_cached_group_means_zero_fetches(self):
        auth, _ = make_auth()
        auth.update_leaf(0, 0, 1, bytes(64))
        fetches_before = auth.stats.node_fetches
        assert auth.verify_leaf(0, 0, 1, bytes(64)) == 0
        assert auth.stats.node_fetches == fetches_before

    def test_virgin_group_needs_no_dram_read(self):
        """Never-written groups are trusted zeros; garbage planted in
        their DRAM location before first use has no effect."""
        auth, dram = make_auth()
        dram.poke(auth.node_address(1, 1), b"\xff" * 64)
        auth.update_leaf(8, leaf_addr(8), 1, bytes(64))
        auth.verify_leaf(8, leaf_addr(8), 1, bytes(64))


class TestTamperDetection:
    def _cold(self, auth):
        auth.flush()
        auth.node_cache.flush()

    def test_tampered_group_detected_by_onchip_mac(self):
        """Corrupting the off-chip MAC group trips the on-chip
        MAC-of-MACs — the replacement for the parent chain."""
        auth, dram = make_auth()
        auth.update_leaf(0, 0, 1, bytes(64))
        self._cold(auth)
        node_address = auth.node_address(1, 0)
        image = bytearray(dram.peek(node_address))
        image[0] ^= 0x01
        dram.poke(node_address, bytes(image))
        with pytest.raises(IntegrityViolation) as excinfo:
            auth.verify_leaf(0, 0, 1, bytes(64))
        assert excinfo.value.kind == "node"
        assert auth.stats.violations_detected >= 1

    def test_replayed_group_detected(self):
        """Rolling a MAC group back to an older valid image fails against
        the on-chip table (derivative counter moved on)."""
        auth, dram = make_auth()
        auth.update_leaf(0, 0, 1, bytes(64))
        auth.flush()
        node_address = auth.node_address(1, 0)
        old_image = dram.peek(node_address)
        auth.update_leaf(0, 0, 2, b"\x99" * 64)
        self._cold(auth)
        dram.poke(node_address, old_image)
        with pytest.raises(IntegrityViolation):
            auth.verify_leaf(0, 0, 2, b"\x99" * 64)

    def test_stale_leaf_after_cold_restart_detected(self):
        """Replaying an old leaf against the current group MAC fails."""
        auth, _ = make_auth()
        auth.update_leaf(5, leaf_addr(5), 1, b"\x01" * 64)
        auth.update_leaf(5, leaf_addr(5), 2, b"\x02" * 64)
        self._cold(auth)
        with pytest.raises(IntegrityViolation):
            auth.verify_leaf(5, leaf_addr(5), 1, b"\x01" * 64)
        auth2, _ = make_auth()
        auth2.update_leaf(5, leaf_addr(5), 2, b"\x02" * 64)
        auth2.load_state(auth.state_dict())
        auth2.verify_leaf(5, leaf_addr(5), 2, b"\x02" * 64)


class TestBatchedLeaves:
    def test_batched_matches_scalar(self):
        batched, _ = make_auth()
        scalar, _ = make_auth()
        items = [(i, leaf_addr(i), 1, bytes([i ^ 0x5A]) * 64)
                 for i in (9, 2, 14, 3, 8)]
        batched.update_leaves(items)
        for item in items:
            scalar.update_leaf(*item)
        for item in items:
            batched.verify_leaf(*item)
            scalar.verify_leaf(*item)

    def test_verify_leaves_detects_tampering(self):
        auth, _ = make_auth()
        items = [(i, leaf_addr(i), 1, bytes(64)) for i in range(4)]
        auth.update_leaves(items)
        bad = list(items)
        bad[2] = (2, leaf_addr(2), 1, b"\xff" + bytes(63))
        with pytest.raises(IntegrityViolation):
            auth.verify_leaves(bad)

    def test_empty_batch(self):
        auth, _ = make_auth()
        assert auth.verify_leaves([]) == 0
        auth.update_leaves([])  # must not raise


class TestStateRoundTrip:
    def test_state_dict_round_trip(self):
        auth, dram = make_auth()
        for i in range(0, NUM_LEAVES, 3):
            auth.update_leaf(i, leaf_addr(i), i + 1, bytes([i]) * 64)
        auth.flush()
        saved = auth.state_dict()
        fresh, fresh_dram = make_auth()
        fresh_dram.load_state(dram.state_dict())
        fresh.load_state(saved)
        assert fresh.state_dict() == saved
        for i in range(0, NUM_LEAVES, 3):
            fresh.verify_leaf(i, leaf_addr(i), i + 1, bytes([i]) * 64)
