"""Functional Merkle tree: cached verification, lazy updates, detection."""

import pytest

from repro.auth.codes import build_geometry
from repro.auth.merkle import IntegrityViolation, MerkleTree
from repro.auth.schemes import GCMMACScheme, SHAMACScheme
from repro.memory.dram import MainMemory

NUM_LEAVES = 64
BLOCK = 64


def make_tree(mac="gcm", node_cache_bytes=2 * 1024, mac_bits=64):
    geometry = build_geometry(NUM_LEAVES, BLOCK, mac_bits)
    code_bytes = geometry.total_code_blocks * BLOCK
    dram = MainMemory(size_bytes=NUM_LEAVES * BLOCK + code_bytes,
                      block_size=BLOCK)
    scheme = (GCMMACScheme(bytes(16), mac_bits) if mac == "gcm"
              else SHAMACScheme(bytes(16), mac_bits))
    tree = MerkleTree(geometry, scheme, dram,
                      code_region_base=NUM_LEAVES * BLOCK,
                      node_cache_bytes=node_cache_bytes)
    return tree, dram


def leaf_addr(index):
    return index * BLOCK


class TestVerifyUpdate:
    def test_update_then_verify(self):
        tree, _ = make_tree()
        content = bytes(range(64))
        tree.update_leaf(3, leaf_addr(3), 1, content)
        tree.verify_leaf(3, leaf_addr(3), 1, content)  # must not raise

    def test_verify_wrong_content_fails(self):
        tree, _ = make_tree()
        tree.update_leaf(3, leaf_addr(3), 1, bytes(64))
        with pytest.raises(IntegrityViolation):
            tree.verify_leaf(3, leaf_addr(3), 1, b"\x01" + bytes(63))

    def test_verify_wrong_counter_fails(self):
        tree, _ = make_tree()
        tree.update_leaf(3, leaf_addr(3), 1, bytes(64))
        with pytest.raises(IntegrityViolation):
            tree.verify_leaf(3, leaf_addr(3), 2, bytes(64))

    def test_verify_wrong_address_fails(self):
        tree, _ = make_tree()
        tree.update_leaf(3, leaf_addr(3), 1, bytes(64))
        with pytest.raises(IntegrityViolation):
            tree.verify_leaf(3, leaf_addr(4), 1, bytes(64))

    def test_multiple_leaves_coexist(self):
        tree, _ = make_tree()
        for i in range(NUM_LEAVES):
            tree.update_leaf(i, leaf_addr(i), i, bytes([i]) * 64)
        for i in range(NUM_LEAVES):
            tree.verify_leaf(i, leaf_addr(i), i, bytes([i]) * 64)

    def test_sha_scheme_also_works(self):
        tree, _ = make_tree(mac="sha")
        tree.update_leaf(0, 0, 5, b"\xab" * 64)
        tree.verify_leaf(0, 0, 5, b"\xab" * 64)


class TestCachedTreeProtocol:
    def test_verification_stops_at_cached_node(self):
        tree, _ = make_tree()
        tree.update_leaf(0, 0, 1, bytes(64))
        fetches_before = tree.stats.node_fetches
        tree.verify_leaf(0, 0, 1, bytes(64))
        # parent is resident from the update: no node fetch needed
        assert tree.stats.node_fetches == fetches_before

    def test_flush_then_cold_verify(self):
        """After flush + node-cache flush, verification walks the full
        chain from DRAM up to the root register and succeeds."""
        tree, _ = make_tree()
        tree.update_leaf(0, 0, 1, b"\x42" * 64)
        tree.flush()
        tree.node_cache.flush()
        tree.verify_leaf(0, 0, 1, b"\x42" * 64)
        assert tree.stats.node_fetches > 0

    def test_dirty_eviction_propagates_upward(self):
        """A displaced dirty node updates its parent, bumping derivative
        counters and node write-backs."""
        geometry = build_geometry(NUM_LEAVES, BLOCK, 64)
        code_bytes = geometry.total_code_blocks * BLOCK
        dram = MainMemory(size_bytes=NUM_LEAVES * BLOCK + code_bytes,
                          block_size=BLOCK)
        # 4 lines, 2-way: the 8 level-1 nodes cannot all stay resident
        tree = MerkleTree(geometry, GCMMACScheme(bytes(16), 64), dram,
                          code_region_base=NUM_LEAVES * BLOCK,
                          node_cache_bytes=256, node_cache_assoc=2)
        for i in range(NUM_LEAVES):
            tree.update_leaf(i, leaf_addr(i), 1, bytes([i]) * 64)
        assert tree.stats.node_writebacks > 0
        for i in range(NUM_LEAVES):
            tree.verify_leaf(i, leaf_addr(i), 1, bytes([i]) * 64)

    def test_chain_length_recorded(self):
        tree, _ = make_tree()
        tree.update_leaf(0, 0, 1, bytes(64))
        tree.flush()
        tree.node_cache.flush()
        tree.verify_leaf(0, 0, 1, bytes(64))
        assert sum(tree.stats.chain_lengths.values()) >= 1
        assert max(tree.stats.chain_lengths) >= 1


class TestTamperDetection:
    def test_tampered_code_block_detected(self):
        tree, dram = make_tree()
        tree.update_leaf(0, 0, 1, bytes(64))
        tree.flush()
        tree.node_cache.flush()
        # corrupt the level-1 node image in DRAM
        node_address = tree.node_address(1, 0)
        image = bytearray(dram.peek(node_address))
        image[0] ^= 0x01
        dram.poke(node_address, bytes(image))
        with pytest.raises(IntegrityViolation):
            tree.verify_leaf(0, 0, 1, bytes(64))
        assert tree.stats.violations_detected >= 1

    def test_replayed_code_block_detected_above(self):
        """Rolling a written node back to an older valid image fails at
        the next level up (its parent holds the newer MAC)."""
        tree, dram = make_tree()
        tree.update_leaf(0, 0, 1, bytes(64))
        tree.flush()
        node_address = tree.node_address(1, 0)
        old_image = dram.peek(node_address)
        tree.update_leaf(0, 0, 2, b"\x99" * 64)
        tree.flush()
        tree.node_cache.flush()
        dram.poke(node_address, old_image)
        with pytest.raises(IntegrityViolation):
            tree.verify_leaf(0, 0, 2, b"\x99" * 64)

    def test_virgin_nodes_ignore_dram_garbage(self):
        """Never-written nodes are trusted zeros; garbage written to their
        DRAM location before first use has no effect."""
        tree, dram = make_tree()
        dram.poke(tree.node_address(1, 1), b"\xff" * 64)
        tree.update_leaf(8, leaf_addr(8), 1, bytes(64))
        tree.verify_leaf(8, leaf_addr(8), 1, bytes(64))


class TestRootRegister:
    def test_root_changes_when_top_written(self):
        tree, _ = make_tree(node_cache_bytes=512)
        root0 = tree.root_register
        for i in range(NUM_LEAVES):
            tree.update_leaf(i, leaf_addr(i), 1, bytes([i]) * 64)
        tree.flush()
        assert tree.root_register != root0

    def test_flush_makes_dram_self_contained(self):
        tree, _ = make_tree()
        tree.update_leaf(5, leaf_addr(5), 3, b"\x07" * 64)
        tree.flush()
        assert not any(True for _ in tree.node_cache.dirty_blocks())


class TestBatchedLeaves:
    def test_update_leaves_then_verify_leaves(self):
        tree, _ = make_tree()
        items = [(i, leaf_addr(i), i + 1, bytes([i]) * 64) for i in range(8)]
        tree.update_leaves(items)
        tree.verify_leaves(items)  # must not raise

    def test_batched_matches_scalar(self):
        batched, _ = make_tree()
        scalar, _ = make_tree()
        items = [(i, leaf_addr(i), 1, bytes([i ^ 0x5A]) * 64)
                 for i in (9, 2, 14, 3, 8)]
        batched.update_leaves(items)
        for item in items:
            scalar.update_leaf(*item)
        for item in items:
            batched.verify_leaf(*item)
            scalar.verify_leaf(*item)

    def test_verify_leaves_detects_tampering(self):
        tree, _ = make_tree()
        items = [(i, leaf_addr(i), 1, bytes(64)) for i in range(4)]
        tree.update_leaves(items)
        bad = list(items)
        bad[2] = (2, leaf_addr(2), 1, b"\xff" + bytes(63))
        with pytest.raises(IntegrityViolation):
            tree.verify_leaves(bad)

    def test_sibling_leaves_share_ancestor_walk(self):
        """Grouping by parent: verifying siblings as one batch must fetch
        no more tree levels than the scalar verify-each loop."""
        scalar, _ = make_tree()
        batched, _ = make_tree()
        items = [(i, leaf_addr(i), 1, bytes(64)) for i in range(4)]
        for tree in (scalar, batched):
            for item in items:
                tree.update_leaf(*item)
        separate = sum(scalar.verify_leaf(*item) for item in items)
        together = batched.verify_leaves(items)
        assert together <= separate

    def test_empty_batch(self):
        tree, _ = make_tree()
        assert tree.verify_leaves([]) == 0
        tree.update_leaves([])  # must not raise
