"""MAC scheme objects: GCM vs SHA construction differences."""

from repro.auth.schemes import GCMMACScheme, SHAMACScheme
from repro.crypto.aes import AES128
from repro.crypto.mac import gcm_block_mac, sha_block_mac

BLOCK = b"\x5a" * 64
KEY = bytes(range(16))


class TestGCMScheme:
    def test_matches_primitive(self):
        scheme = GCMMACScheme(KEY, 64)
        aes = AES128(KEY)
        h = aes.encrypt_block(bytes(16))
        assert scheme.compute(0x40, 7, BLOCK) == gcm_block_mac(
            aes, h, 0x40, 7, BLOCK, 64
        )

    def test_name_and_width(self):
        scheme = GCMMACScheme(KEY, 32)
        assert scheme.name == "gcm"
        assert scheme.mac_bytes == 4
        assert len(scheme.compute(0, 0, BLOCK)) == 4


class TestSHAScheme:
    def test_matches_primitive(self):
        scheme = SHAMACScheme(KEY, 64)
        assert scheme.compute(0x40, 7, BLOCK) == sha_block_mac(
            KEY, 0x40, 7, BLOCK, 64
        )

    def test_name(self):
        assert SHAMACScheme(KEY).name == "sha1"


class TestCrossScheme:
    def test_schemes_disagree(self):
        """GCM and SHA MACs of the same input differ (different keys and
        algorithms) — configurations are not interchangeable mid-run."""
        assert (GCMMACScheme(KEY).compute(0, 0, BLOCK)
                != SHAMACScheme(KEY).compute(0, 0, BLOCK))

    def test_both_sensitive_to_every_input(self):
        for scheme in (GCMMACScheme(KEY), SHAMACScheme(KEY)):
            base = scheme.compute(0, 0, BLOCK)
            assert scheme.compute(64, 0, BLOCK) != base
            assert scheme.compute(0, 1, BLOCK) != base
            assert scheme.compute(0, 0, b"\x00" * 64) != base
