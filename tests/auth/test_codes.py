"""Merkle-tree geometry: arity, level sizes, addressing, overheads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.auth.codes import build_geometry, merkle_levels_for_memory


class TestArity:
    def test_64bit_macs_give_arity_8(self):
        assert build_geometry(1000, 64, 64).arity == 8

    def test_128bit_macs_give_arity_4(self):
        assert build_geometry(1000, 64, 128).arity == 4

    def test_32bit_macs_give_arity_16(self):
        assert build_geometry(1000, 64, 32).arity == 16

    def test_rejects_mac_wider_than_block(self):
        with pytest.raises(ValueError):
            build_geometry(10, 16, 128)


class TestLevels:
    def test_single_leaf(self):
        g = build_geometry(1, 64, 64)
        assert g.depth == 1
        assert g.level_sizes == (1, 1)

    def test_exact_power(self):
        g = build_geometry(64, 64, 64)  # 8-ary: 64 -> 8 -> 1
        assert g.level_sizes == (64, 8, 1)
        assert g.depth == 2

    def test_rounding_up(self):
        g = build_geometry(65, 64, 64)  # 65 -> 9 -> 2 -> 1
        assert g.level_sizes == (65, 9, 2, 1)

    def test_paper_example_1gb_128bit(self):
        """Section 3: 128-bit codes over 1GB give a 12-level tree with a
        33% space overhead."""
        g = build_geometry((1 << 30) // 64, 64, 128)
        assert g.depth == 12
        assert g.storage_overhead == pytest.approx(1 / 3, rel=0.01)

    def test_512mb_64bit_default(self):
        depth = merkle_levels_for_memory(512 * 1024 * 1024, 64, 64)
        assert depth == 8  # 8M leaves, 8-ary

    def test_overhead_shrinks_with_smaller_macs(self):
        leaves = (1 << 29) // 64
        oh = {bits: build_geometry(leaves, 64, bits).storage_overhead
              for bits in (32, 64, 128)}
        assert oh[32] < oh[64] < oh[128]


class TestNavigation:
    def test_parent_and_slot(self):
        g = build_geometry(64, 64, 64)
        assert g.parent_index(0) == 0
        assert g.parent_index(7) == 0
        assert g.parent_index(8) == 1
        assert g.slot_in_parent(13) == 5

    def test_child_indices(self):
        g = build_geometry(65, 64, 64)
        assert list(g.child_indices(1, 8)) == [64]  # last, partial group

    def test_node_region_blocks_are_dense_and_unique(self):
        g = build_geometry(100, 64, 64)
        seen = set()
        for level in range(1, g.depth + 1):
            for index in range(g.level_sizes[level]):
                block = g.node_region_block(level, index)
                assert block not in seen
                seen.add(block)
        assert seen == set(range(g.total_code_blocks))

    def test_node_region_block_bounds(self):
        g = build_geometry(100, 64, 64)
        with pytest.raises(ValueError):
            g.node_region_block(1, g.level_sizes[1])
        with pytest.raises(ValueError):
            g.level_offset_blocks(0)

    @settings(max_examples=30)
    @given(num_leaves=st.integers(min_value=1, max_value=100_000),
           mac_bits=st.sampled_from([32, 64, 128]))
    def test_every_parent_chain_reaches_root(self, num_leaves, mac_bits):
        g = build_geometry(num_leaves, 64, mac_bits)
        for leaf in (0, num_leaves // 2, num_leaves - 1):
            index = g.parent_index(leaf)
            for level in range(1, g.depth + 1):
                assert 0 <= index < g.level_sizes[level]
                index = g.parent_index(index)
        assert g.level_sizes[-1] == 1
