"""Configuration presets and derived properties."""

import pytest

from repro.auth.policies import AuthPolicy
from repro.core.config import (
    AuthMode,
    CounterOrg,
    EncryptionMode,
    PRESETS,
    baseline_config,
    direct_config,
    gcm_auth_config,
    mono_config,
    mono_sha_config,
    prediction_config,
    sha_auth_config,
    split_config,
    split_gcm_config,
    xom_sha_config,
)


class TestPresets:
    def test_all_presets_named_consistently(self):
        for name, config in PRESETS.items():
            assert config.name == name

    def test_baseline_has_no_protection(self):
        config = baseline_config()
        assert config.encryption is EncryptionMode.NONE
        assert config.auth is AuthMode.NONE
        assert not config.uses_counters

    def test_split_gcm_is_the_paper_default(self):
        config = split_gcm_config()
        assert config.encryption is EncryptionMode.COUNTER
        assert config.counter_org is CounterOrg.SPLIT
        assert config.auth is AuthMode.GCM
        assert config.auth_policy is AuthPolicy.COMMIT
        assert config.parallel_auth
        assert config.mac_bits == 64
        assert config.authenticate_counters

    def test_mono_widths(self):
        for bits, org in [(8, CounterOrg.MONO8), (16, CounterOrg.MONO16),
                          (32, CounterOrg.MONO32), (64, CounterOrg.MONO64)]:
            assert mono_config(bits).counter_org is org

    def test_xom_is_direct_plus_sha(self):
        config = xom_sha_config()
        assert config.encryption is EncryptionMode.DIRECT
        assert config.auth is AuthMode.SHA1

    def test_prediction_engine_naming(self):
        assert prediction_config().name == "pred"
        assert prediction_config(aes_engines=2).name == "pred2eng"
        assert prediction_config(aes_engines=2).aes_engines == 2

    def test_sha_latency_parameterized(self):
        assert sha_auth_config(160).sha_latency == 160
        assert "160" in sha_auth_config(160).name


class TestUsesCounters:
    def test_counter_mode_uses_counters(self):
        assert split_config().uses_counters

    def test_gcm_auth_only_still_uses_counters(self):
        """Figure 7: only GCM maintains per-block counters when no
        encryption is used."""
        assert gcm_auth_config().uses_counters

    def test_sha_auth_only_does_not(self):
        assert not sha_auth_config().uses_counters

    def test_direct_does_not(self):
        assert not direct_config().uses_counters
        assert not xom_sha_config().uses_counters


class TestUpdates:
    def test_with_updates_returns_new_config(self):
        base = split_gcm_config()
        changed = base.with_updates(mac_bits=32)
        assert changed.mac_bits == 32
        assert base.mac_bits == 64

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            split_config().mac_bits = 128

    def test_configs_hashable(self):
        assert hash(split_config()) == hash(split_config())
        assert {split_config(), split_config()} == {split_config()}


class TestValidation:
    """__post_init__ rejects configurations the hardware could not build."""

    @pytest.mark.parametrize("mac_bits", [0, 16, 48, 96, 256])
    def test_rejects_bad_mac_bits(self, mac_bits):
        with pytest.raises(ValueError, match="mac_bits"):
            split_gcm_config(mac_bits=mac_bits)

    @pytest.mark.parametrize("minor_bits", [0, -1, 17, 64])
    def test_rejects_bad_minor_bits(self, minor_bits):
        with pytest.raises(ValueError, match="minor_bits"):
            split_config(minor_bits=minor_bits)

    @pytest.mark.parametrize("size", [0, -64, 100, 3000])
    def test_rejects_non_power_of_two_counter_cache(self, size):
        with pytest.raises(ValueError, match="counter_cache_size"):
            split_config(counter_cache_size=size)

    @pytest.mark.parametrize("size", [0, 1000])
    def test_rejects_non_power_of_two_node_cache(self, size):
        with pytest.raises(ValueError, match="node_cache_size"):
            split_gcm_config(node_cache_size=size)

    def test_rejects_zero_aes_engines(self):
        with pytest.raises(ValueError, match="aes_engines"):
            prediction_config(aes_engines=0)

    def test_with_updates_validates_too(self):
        with pytest.raises(ValueError, match="mac_bits"):
            split_gcm_config().with_updates(mac_bits=48)

    def test_valid_edges_accepted(self):
        assert split_gcm_config(mac_bits=32).mac_bits == 32
        assert split_config(minor_bits=1).minor_bits == 1
        assert split_config(minor_bits=16).minor_bits == 16


class TestPresetsReadOnly:
    def test_presets_mapping_is_immutable(self):
        with pytest.raises(TypeError):
            PRESETS["rogue"] = baseline_config()

    def test_presets_cannot_be_deleted_from(self):
        with pytest.raises(TypeError):
            del PRESETS["baseline"]
