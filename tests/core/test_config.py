"""Configuration presets and derived properties."""

import pytest

from repro.auth.policies import AuthPolicy
from repro.core.config import (
    AuthMode,
    CounterOrg,
    EncryptionMode,
    PRESETS,
    baseline_config,
    direct_config,
    gcm_auth_config,
    mono_config,
    mono_sha_config,
    prediction_config,
    sha_auth_config,
    split_config,
    split_gcm_config,
    xom_sha_config,
)


class TestPresets:
    def test_all_presets_named_consistently(self):
        for name, config in PRESETS.items():
            assert config.name == name

    def test_baseline_has_no_protection(self):
        config = baseline_config()
        assert config.encryption is EncryptionMode.NONE
        assert config.auth is AuthMode.NONE
        assert not config.uses_counters

    def test_split_gcm_is_the_paper_default(self):
        config = split_gcm_config()
        assert config.encryption is EncryptionMode.COUNTER
        assert config.counter_org is CounterOrg.SPLIT
        assert config.auth is AuthMode.GCM
        assert config.auth_policy is AuthPolicy.COMMIT
        assert config.parallel_auth
        assert config.mac_bits == 64
        assert config.authenticate_counters

    def test_mono_widths(self):
        for bits, org in [(8, CounterOrg.MONO8), (16, CounterOrg.MONO16),
                          (32, CounterOrg.MONO32), (64, CounterOrg.MONO64)]:
            assert mono_config(bits).counter_org is org

    def test_xom_is_direct_plus_sha(self):
        config = xom_sha_config()
        assert config.encryption is EncryptionMode.DIRECT
        assert config.auth is AuthMode.SHA1

    def test_prediction_engine_naming(self):
        assert prediction_config().name == "pred"
        assert prediction_config(aes_engines=2).name == "pred2eng"
        assert prediction_config(aes_engines=2).aes_engines == 2

    def test_sha_latency_parameterized(self):
        assert sha_auth_config(160).sha_latency == 160
        assert "160" in sha_auth_config(160).name


class TestUsesCounters:
    def test_counter_mode_uses_counters(self):
        assert split_config().uses_counters

    def test_gcm_auth_only_still_uses_counters(self):
        """Figure 7: only GCM maintains per-block counters when no
        encryption is used."""
        assert gcm_auth_config().uses_counters

    def test_sha_auth_only_does_not(self):
        assert not sha_auth_config().uses_counters

    def test_direct_does_not(self):
        assert not direct_config().uses_counters
        assert not xom_sha_config().uses_counters


class TestUpdates:
    def test_with_updates_returns_new_config(self):
        base = split_gcm_config()
        changed = base.with_updates(mac_bits=32)
        assert changed.mac_bits == 32
        assert base.mac_bits == 64

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            split_config().mac_bits = 128

    def test_configs_hashable(self):
        assert hash(split_config()) == hash(split_config())
        assert {split_config(), split_config()} == {split_config()}
