"""Authentication-failure response policies (section 3)."""

import pytest

from repro.core.response import (
    ResponseMode,
    SystemHalted,
    ViolationResponder,
    expected_forgery_stall_cycles,
)


class TestExponentialStall:
    def test_stalls_double(self):
        responder = ViolationResponder(base_stall_cycles=100.0)
        assert responder.on_violation() == 100.0
        assert responder.on_violation() == 200.0
        assert responder.on_violation() == 400.0
        assert responder.total_stall_cycles == 700.0
        assert responder.failures == 3

    def test_cap(self):
        responder = ViolationResponder(base_stall_cycles=1.0,
                                       max_stall_cycles=8.0)
        for _ in range(10):
            stall = responder.on_violation()
        assert stall == 8.0

    def test_reset(self):
        responder = ViolationResponder()
        responder.on_violation()
        responder.reset()
        assert responder.failures == 0
        assert responder.on_violation() == responder.base_stall_cycles


class TestOtherModes:
    def test_report_mode_never_stalls(self):
        responder = ViolationResponder(mode=ResponseMode.REPORT)
        for _ in range(5):
            assert responder.on_violation() == 0.0
        assert responder.failures == 5

    def test_halt_mode_raises(self):
        responder = ViolationResponder(mode=ResponseMode.HALT)
        with pytest.raises(SystemHalted):
            responder.on_violation()


class TestSecurityArgument:
    def test_small_macs_still_costly_to_forge(self):
        """Even a 32-bit MAC makes brute-force forgery astronomically slow
        under exponential stalls — the paper's justification for trading
        MAC size for tree arity."""
        cycles = expected_forgery_stall_cycles(32)
        years_at_5ghz = cycles / 5e9 / (365.25 * 86400)
        assert years_at_5ghz > 1e3

    def test_wider_macs_no_cheaper(self):
        assert (expected_forgery_stall_cycles(64)
                >= expected_forgery_stall_cycles(32))
