"""Seeded write-storm property tests for RSR page re-encryption.

Section 4.2's correctness obligations under minor-counter overflow:

* plaintext is preserved across any number of page re-encryptions
  (including for blocks the storm never touched after materializing);
* no (key epoch, address, counter) encryption tuple ever repeats — a
  repeat would reuse a counter-mode pad, the exact break the paper's
  counter-replay discussion (section 4.3) warns about.

The storms are seeded, so a failure replays from its printed seed.
"""

import random

import pytest

from repro.analysis.overflow import estimate_overflow, reencryption_work_ratio
from repro.core import SecureMemorySystem, split_gcm_config


def _storm_system(minor_bits=2):
    # Tiny minors overflow after 2^minor_bits write-backs; a tiny counter
    # cache keeps counter blocks moving through DRAM while the storm runs.
    config = split_gcm_config(minor_bits=minor_bits,
                              counter_cache_size=128,
                              counter_cache_assoc=1)
    return SecureMemorySystem(config, protected_bytes=64 * 1024,
                              l2_size=2 * 1024, l2_assoc=2)


class _EncryptSpy:
    """Records every (key epoch, address, counter) the system encrypts."""

    def __init__(self, system):
        self.system = system
        self.tuples = []
        self.duplicates = []
        self._seen = set()
        self._orig = system._encrypt
        system._encrypt = self._call

    def _call(self, address, counter, plaintext):
        key = (self.system._key_epoch, address, counter)
        if key in self._seen:
            self.duplicates.append(key)
        self._seen.add(key)
        self.tuples.append(key)
        return self._orig(address, counter, plaintext)


def _force_writeback(system, address):
    line = system.l2.lookup(address)
    if line is not None and line.dirty:
        data = bytes(line.payload)
        system.l2.invalidate(address)
        system._write_back(address, data)


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_write_storm_preserves_plaintext_and_never_reuses_pads(seed):
    system = _storm_system()
    spy = _EncryptSpy(system)
    rng = random.Random(seed)
    block = system.block_size
    addresses = [index * block for index in
                 rng.sample(range(64 * 1024 // block), 10)]
    model = {}
    for _ in range(300):
        address = rng.choice(addresses)
        data = rng.randbytes(block)
        system.write_block(address, data)
        model[address] = data
        if rng.random() < 0.7:
            _force_writeback(system, address)
    assert system.stats.reencryption.page_reencryptions > 0, \
        "storm too weak: minors never overflowed"
    assert not spy.duplicates, \
        f"pad reuse: {spy.duplicates[:3]} (seed {seed})"
    for address, expected in model.items():
        assert system.read_block(address) == expected, hex(address)


def test_reencrypted_page_readable_after_flush():
    system = _storm_system(minor_bits=1)     # overflow every 2 write-backs
    block = system.block_size
    # Materialize several blocks of one page, then hammer a single one.
    for index in range(4):
        system.write_block(index * block, bytes([index]) * block)
    system.flush()
    for round_ in range(10):
        system.write_block(0, bytes([0x10 + round_]) * block)
        _force_writeback(system, 0)
    assert system.stats.reencryption.page_reencryptions > 0
    system.flush()
    for address, _ in list(system.l2.resident_blocks()):
        system.l2.invalidate(address)
    for index in range(1, 4):
        assert system.read_block(index * block) == bytes([index]) * block
    assert system.read_block(0) == bytes([0x19]) * block


class TestOverflowAnalysis:
    def test_wider_counters_overflow_later(self):
        times = [estimate_overflow(bits, fastest_count=1_000_000,
                                   simulated_seconds=1.0).seconds_to_overflow
                 for bits in (8, 16, 32, 64)]
        assert times == sorted(times)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_zero_growth_never_overflows(self):
        estimate = estimate_overflow(8, 0, 1.0)
        assert estimate.seconds_to_overflow == float("inf")
        assert estimate.human == "never"

    def test_split_work_beats_monolithic_with_skewed_pages(self):
        # One hot page, many cold pages: split re-encrypts only the hot
        # page, monolithic re-encrypts everything at the hot page's rate.
        counters = {0: 1024}
        counters.update({64 * page: 1 for page in range(1, 16)})
        ratio = reencryption_work_ratio(
            counters, minor_bits=7, mono_bits=7, blocks_per_page=64,
            page_of=lambda block: block // 64,
            total_memory_blocks=16 * 64)
        assert 0 < ratio < 1

    def test_work_ratio_empty_distribution(self):
        assert reencryption_work_ratio({}, 7, 7, 64, lambda b: 0, 64) == 0.0
