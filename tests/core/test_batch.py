"""Batch reads/writes must be byte-equivalent to the scalar loop.

``read_blocks``/``write_blocks`` reorder work internally (counter-block
grouping, bulk pad generation, Merkle ancestor sharing), so these tests
drive a batched system and a scalar system through identical operation
sequences and require identical observable values — including when a
minor-counter overflow forces a page re-encryption in the middle of a
batch, and when a tiny L2 forces dirty evictions between batch items.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    SecureMemorySystem,
    direct_config,
    mono_config,
    split_config,
    split_gcm_config,
    split_sha_config,
)

REGION = 32 * 64  # 32 cache blocks
ADDRESSES = [i * 64 for i in range(REGION // 64)]


def make_pair(config, **kwargs):
    kwargs.setdefault("protected_bytes", REGION)
    kwargs.setdefault("l2_size", 1024)  # tiny: evictions mid-batch
    kwargs.setdefault("l2_assoc", 2)
    return (SecureMemorySystem(config, **kwargs),
            SecureMemorySystem(config, **kwargs))


def block_data(seed: int) -> bytes:
    return bytes((seed * 31 + i * 7) & 0xFF for i in range(64))


# a "round" is (writes, reads): writes may repeat addresses (last wins),
# reads may repeat addresses (all aliases must return the same bytes)
round_strategy = st.tuples(
    st.lists(st.tuples(st.integers(0, len(ADDRESSES) - 1),
                       st.integers(0, 255)), max_size=12),
    st.lists(st.integers(0, len(ADDRESSES) - 1), max_size=12),
)


def run_rounds(config, rounds, **kwargs):
    scalar, batched = make_pair(config, **kwargs)
    for writes, reads in rounds:
        pairs = [(ADDRESSES[i], block_data(seed)) for i, seed in writes]
        for address, data in pairs:
            scalar.write_block(address, data)
        batched.write_blocks(pairs)
        read_addrs = [ADDRESSES[i] for i in reads]
        scalar_values = [scalar.read_block(a) for a in read_addrs]
        assert batched.read_blocks(read_addrs) == scalar_values
    # final off-chip state must agree too
    scalar.flush()
    batched.flush()
    for address in ADDRESSES:
        assert batched.read_block(address) == scalar.read_block(address)
    return batched


CONFIGS = [
    split_config(),
    split_gcm_config(),
    split_sha_config(),
    mono_config(8),
    direct_config(),
]


class TestBatchEqualsScalar:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
    @settings(max_examples=15, deadline=None)
    @given(rounds=st.lists(round_strategy, min_size=1, max_size=6))
    def test_property_shuffled_rounds(self, config, rounds):
        run_rounds(config, rounds)

    def test_duplicate_reads_alias_one_fetch(self):
        _, batched = make_pair(split_gcm_config())
        zeros = bytes(64)
        # an untouched block is a guaranteed miss; duplicates must alias it
        assert batched.read_blocks([320, 320, 320]) == [zeros, zeros, zeros]
        assert batched.l2.stats.misses == 1
        assert batched.l2.stats.hits == 0

    def test_duplicate_writes_last_wins(self):
        _, batched = make_pair(split_gcm_config())
        batched.write_blocks([(0, block_data(1)), (0, block_data(2)),
                              (64, block_data(3)), (0, block_data(4))])
        assert batched.read_block(0) == block_data(4)
        assert batched.read_block(64) == block_data(3)

    def test_empty_batches(self):
        _, batched = make_pair(split_config())
        assert batched.read_blocks([]) == []
        batched.write_blocks([])  # must not raise


class TestOverflowMidBatch:
    """minor_bits=2 overflows after four writes: page re-encryption must
    fire inside a batch without breaking equivalence."""

    def test_reencryption_triggered_and_equivalent(self):
        config = split_config(minor_bits=1)
        # cycle writes over 24 blocks through an 8-block L2 so every round
        # forces write-backs, each of which bumps a 1-bit minor counter
        rounds = [
            ([(i, r * 24 + i) for i in range(24)], list(range(0, 24, 3)))
            for r in range(8)
        ]
        batched = run_rounds(config, rounds, l2_size=512)
        assert batched.stats.reencryption.page_reencryptions > 0

    @settings(max_examples=10, deadline=None)
    @given(rounds=st.lists(round_strategy, min_size=2, max_size=5))
    def test_property_with_tiny_minor_counters(self, rounds):
        run_rounds(split_config(minor_bits=1), rounds)
