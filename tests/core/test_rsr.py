"""Re-encryption status registers: allocation, done bits, timing helpers."""

import pytest

from repro.core.rsr import RSR, RSRFile


class TestRSR:
    def test_allocate_sets_state(self):
        rsr = RSR(blocks_per_page=64)
        rsr.allocate(page_index=3, old_major=7)
        assert rsr.valid
        assert rsr.page_index == 3
        assert rsr.old_major == 7
        assert rsr.remaining == 64

    def test_double_allocate_rejected(self):
        rsr = RSR(blocks_per_page=4)
        rsr.allocate(0, 0)
        with pytest.raises(RuntimeError):
            rsr.allocate(1, 0)

    def test_marking_all_done_frees(self):
        rsr = RSR(blocks_per_page=4)
        rsr.allocate(0, 0)
        for slot in range(4):
            rsr.mark_done(slot)
        assert not rsr.valid
        assert rsr.remaining == 0

    def test_partial_done(self):
        rsr = RSR(blocks_per_page=4)
        rsr.allocate(0, 0)
        rsr.mark_done(1)
        rsr.mark_done(3)
        assert rsr.valid
        assert rsr.remaining == 2


class TestRSRFile:
    def test_find_by_page(self):
        rsrs = RSRFile(num_rsrs=2, blocks_per_page=4)
        rsrs.rsrs[0].allocate(5, 0)
        assert rsrs.find(5) is rsrs.rsrs[0]
        assert rsrs.find(6) is None

    def test_find_free(self):
        rsrs = RSRFile(num_rsrs=2, blocks_per_page=4)
        rsrs.rsrs[0].allocate(5, 0)
        assert rsrs.find_free() is rsrs.rsrs[1]
        rsrs.rsrs[1].allocate(6, 0)
        assert rsrs.find_free() is None

    def test_active_count(self):
        rsrs = RSRFile(num_rsrs=8, blocks_per_page=4)
        assert rsrs.active_count == 0
        rsrs.rsrs[0].allocate(1, 0)
        rsrs.rsrs[3].allocate(2, 0)
        assert rsrs.active_count == 2

    def test_expire_frees_completed(self):
        rsrs = RSRFile(num_rsrs=2, blocks_per_page=4)
        rsrs.rsrs[0].allocate(1, 0, busy_until=100.0)
        rsrs.rsrs[1].allocate(2, 0, busy_until=200.0)
        rsrs.expire(150.0)
        assert not rsrs.rsrs[0].valid
        assert rsrs.rsrs[1].valid

    def test_earliest_free_time(self):
        rsrs = RSRFile(num_rsrs=2, blocks_per_page=4)
        rsrs.rsrs[0].allocate(1, 0, busy_until=300.0)
        rsrs.rsrs[1].allocate(2, 0, busy_until=100.0)
        assert rsrs.earliest_free_time() == 100.0

    def test_rejects_zero_rsrs(self):
        with pytest.raises(ValueError):
            RSRFile(num_rsrs=0)

    def test_storage_is_small(self):
        """Section 4.2: eight RSRs cost under 150 bytes of state — one
        valid bit, a page tag, a 64-bit old major, and 64 done bits each."""
        page_tag_bits = 17  # 512MB memory / 4KB pages = 2^17 pages
        bits_per_rsr = 1 + page_tag_bits + 64 + 64  # valid+tag+major+done
        assert 8 * bits_per_rsr / 8 < 150
