"""Reset-field drift: every stats dataclass resets every field.

The bug class this retires: a hand-listed ``reset()`` that silently skips
a newly added counter, so the value survives ``Experiment`` reuse across
runs.  The resets now derive from ``dataclasses.fields()``; these tests
mutate *every* field (recursively) and assert the reset restores every
declared default — so adding a field can never reintroduce the drift.
"""

import dataclasses

import pytest

from repro.auth.merkle import MerkleStats
from repro.core.stats import PadStats, ReencryptionStats, SecureMemoryStats
from repro.counters.global_ctr import GlobalCounterStats
from repro.counters.monolithic import MonolithicStats
from repro.counters.prediction import PredictionStats
from repro.counters.split import SplitCounterStats
from repro.engines.pipeline import EngineStats
from repro.memory.bus import BusStats
from repro.memory.cache import CacheStats

ALL_STATS_CLASSES = [
    BusStats,
    CacheStats,
    EngineStats,
    GlobalCounterStats,
    MerkleStats,
    MonolithicStats,
    PadStats,
    PredictionStats,
    ReencryptionStats,
    SecureMemoryStats,
    SplitCounterStats,
]


def mutate_every_field(obj, value=7):
    """Drive every field (recursively) away from its default."""
    for f in dataclasses.fields(obj):
        current = getattr(obj, f.name)
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            mutate_every_field(current, value)
        elif isinstance(current, bool):
            setattr(obj, f.name, not current)
        elif isinstance(current, (int, float)):
            setattr(obj, f.name, type(current)(value))
        elif isinstance(current, list):
            setattr(obj, f.name, [value])
        elif isinstance(current, dict):
            setattr(obj, f.name, {value: value})
        elif isinstance(current, set):
            setattr(obj, f.name, {value})
        else:  # pragma: no cover - no stats class has other field kinds
            raise TypeError(
                f"add a mutation rule for {type(obj).__name__}.{f.name} "
                f"({type(current).__name__})"
            )


def assert_all_defaults(obj):
    for f in dataclasses.fields(obj):
        current = getattr(obj, f.name)
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            assert_all_defaults(current)
        elif f.default is not dataclasses.MISSING:
            assert current == f.default, (
                f"{type(obj).__name__}.{f.name} survived reset: {current!r}"
            )
        elif f.default_factory is not dataclasses.MISSING:
            assert current == f.default_factory(), (
                f"{type(obj).__name__}.{f.name} survived reset: {current!r}"
            )


@pytest.mark.parametrize("stats_cls", ALL_STATS_CLASSES,
                         ids=lambda c: c.__name__)
class TestFieldDrivenReset:
    def test_reset_restores_every_field(self, stats_cls):
        stats = stats_cls()
        mutate_every_field(stats)
        stats.reset()
        assert_all_defaults(stats)

    def test_reset_yields_equal_to_fresh(self, stats_cls):
        stats = stats_cls()
        mutate_every_field(stats)
        stats.reset()
        assert stats == stats_cls()


class TestNestedResetIdentity:
    def test_nested_stats_reset_in_place(self):
        """Held references to nested stats must survive the reset live."""
        stats = SecureMemoryStats()
        reenc = stats.reencryption
        pads = stats.pads
        mutate_every_field(stats)
        stats.reset()
        assert stats.reencryption is reenc
        assert stats.pads is pads
        assert reenc.page_reencryptions == 0
        assert pads.pad_requests == 0
