"""Functional secure memory system: every configuration round-trips, the
overflow paths work, and the on-chip/off-chip state stays consistent."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    SecureMemorySystem,
    baseline_config,
    direct_config,
    gcm_auth_config,
    mono_config,
    split_config,
    split_gcm_config,
    split_sha_config,
    xom_sha_config,
)
from repro.core.config import AuthMode, CounterOrg, make_counter_config

REGION = 128 * 1024


def make_system(config, **kwargs):
    kwargs.setdefault("protected_bytes", REGION)
    kwargs.setdefault("l2_size", 8 * 1024)
    return SecureMemorySystem(config, **kwargs)


ALL_CONFIGS = [
    baseline_config(),
    direct_config(),
    split_config(),
    mono_config(8),
    mono_config(64),
    make_counter_config(CounterOrg.GLOBAL32),
    gcm_auth_config(),
    split_gcm_config(),
    split_sha_config(),
    xom_sha_config(),
]


class TestRoundTrip:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_random_workload_roundtrip(self, config):
        system = make_system(config)
        rng = random.Random(99)
        expected = {}
        for step in range(300):
            address = rng.randrange(REGION // 64) * 64
            if rng.random() < 0.5 or address not in expected:
                data = bytes(rng.randrange(256) for _ in range(64))
                system.write_block(address, data)
                expected[address] = data
            else:
                assert system.read_block(address) == expected[address]
        system.flush()
        for address, data in expected.items():
            assert system.read_block(address) == data
        assert system.integrity_violations == 0

    def test_byte_granular_io(self):
        system = make_system(split_gcm_config())
        system.write(100, b"hello across a block boundary" * 5)
        assert system.read(100, 29 * 5) == b"hello across a block boundary" * 5

    def test_unwritten_memory_reads_zero(self):
        system = make_system(split_gcm_config())
        assert system.read_block(0x3000) == bytes(64)

    def test_rejects_out_of_region(self):
        system = make_system(split_config())
        with pytest.raises(ValueError):
            system.read_block(REGION)
        with pytest.raises(ValueError):
            system.read_block(33)

    def test_rejects_bad_block_length(self):
        system = make_system(split_config())
        with pytest.raises(ValueError):
            system.write_block(0, b"short")


class TestCiphertextProperties:
    def test_dram_holds_ciphertext(self):
        system = make_system(split_config())
        secret = b"top-secret-payload".ljust(64, b".")
        system.write_block(0, secret)
        system.flush()
        assert system.dram.peek(0) != secret

    def test_baseline_dram_holds_plaintext(self):
        system = make_system(baseline_config())
        data = b"visible".ljust(64, b".")
        system.write_block(0, data)
        system.flush()
        assert system.dram.peek(0) == data

    def test_rewrites_produce_distinct_ciphertexts(self):
        """Counter mode: writing the same plaintext twice yields different
        ciphertexts (fresh pad each write-back)."""
        system = make_system(split_config())
        data = b"\xab" * 64
        system.write_block(0, data)
        system.flush()
        ct1 = system.dram.peek(0)
        system.write_block(0, data)
        system.flush()
        ct2 = system.dram.peek(0)
        assert ct1 != ct2

    def test_direct_mode_rewrites_repeat(self):
        """Direct AES has no freshness: same plaintext -> same ciphertext
        (one reason counter mode is preferable)."""
        system = make_system(direct_config())
        data = b"\xab" * 64
        system.write_block(0, data)
        system.flush()
        ct1 = system.dram.peek(0)
        system.write_block(0, data)
        system.flush()
        assert system.dram.peek(0) == ct1


class TestCounterPaths:
    def test_counter_blocks_serialized_on_eviction(self):
        config = split_config(counter_cache_size=64, counter_cache_assoc=1)
        system = make_system(config, protected_bytes=512 * 1024)
        system.write_block(0, b"\x01" * 64)
        system.flush()  # counter block dirty -> in cache
        # touch a different page's counter block to displace it
        system.write_block(8 * 4096, b"\x02" * 64)
        system.flush()
        counter_image = system.dram.peek(
            system.counter_cache.memory_address(0)
        )
        assert counter_image != bytes(64)

    def test_counter_refetch_after_eviction(self):
        config = split_config(counter_cache_size=64, counter_cache_assoc=1)
        system = make_system(config, protected_bytes=512 * 1024)
        system.write_block(0, b"\x01" * 64)
        system.flush()
        system.write_block(8 * 4096, b"\x02" * 64)  # displaces page-0 ctr
        system.flush()
        # reading block 0 must re-resolve its counter from DRAM correctly
        assert system.read_block(0) == b"\x01" * 64

    def test_minor_overflow_page_reencryption(self):
        config = split_gcm_config(minor_bits=2)
        system = make_system(config, l2_size=1024, l2_assoc=1)
        for i in range(40):
            system.write_block(0, bytes([i]) * 64)
            system.flush()
        assert system.stats.reencryption.page_reencryptions > 0
        assert system.read_block(0) == bytes([39]) * 64
        assert system.integrity_violations == 0

    def test_mono8_full_reencryption(self):
        config = mono_config(8).with_updates(auth=AuthMode.GCM)
        system = make_system(config, l2_size=1024)
        system.write_block(64, b"\x77" * 64)  # a bystander block
        for i in range(300):
            system.write_block(0, bytes([i % 251]) * 64)
            system.flush()
        assert system.stats.reencryption.full_reencryptions >= 1
        # the bystander survived the key change
        assert system.read_block(64) == b"\x77" * 64
        assert system.read_block(0) == bytes([299 % 251]) * 64

    def test_page_reencryption_lazy_dirty_marking(self):
        """Cached blocks of a re-encrypted page are dirty-marked, not
        refetched (section 4.2's lazy optimization)."""
        config = split_config(minor_bits=2)
        system = make_system(config)
        neighbour = 64  # same page as block 0
        system.write_block(neighbour, b"\x33" * 64)
        system.flush()
        reads_before = system.dram.stats.reads
        for _ in range(4):  # force minor overflow of block 0
            system.write_block(0, b"\x11" * 64)
            system.flush()
        assert system.stats.reencryption.page_reencryptions >= 1
        assert system.stats.reencryption.blocks_found_onchip >= 1
        assert system.read_block(neighbour) == b"\x33" * 64


class TestStatistics:
    def test_read_write_counts(self):
        system = make_system(split_config())
        system.write_block(0, bytes(64))
        system.flush()
        assert system.stats.writes >= 1

    def test_integrity_violation_counter(self):
        system = make_system(split_gcm_config())
        system.write_block(0, b"\x01" * 64)
        system.flush()
        system.l2.invalidate(0)
        image = bytearray(system.dram.peek(0))
        image[5] ^= 0xFF
        system.dram.poke(0, bytes(image))
        from repro.auth.merkle import IntegrityViolation
        with pytest.raises(IntegrityViolation):
            system.read_block(0)
        assert system.integrity_violations >= 1


class TestProperties:
    @settings(max_examples=10, deadline=None)
    @given(writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63),
                  st.binary(min_size=64, max_size=64)),
        min_size=1, max_size=20))
    def test_last_write_wins(self, writes):
        system = SecureMemorySystem(split_gcm_config(),
                                    protected_bytes=8 * 1024,
                                    l2_size=1024)
        expected = {}
        for block_index, data in writes:
            system.write_block(block_index * 64, data)
            expected[block_index] = data
        system.flush()
        for block_index, data in expected.items():
            assert system.read_block(block_index * 64) == data
