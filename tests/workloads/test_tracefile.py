"""Round-trip and corruption lockdown for the ``.rtrc`` trace container.

Two halves:

* **Hypothesis round-trip** — encode→decode is the identity on random
  traces (including empty ones, negative gaps are impossible by
  construction but addresses span the full int64 range the format
  stores), chunked streaming ingest equals one-shot writing, and the
  mmap view agrees element-for-element with the list view.
* **Corruption suite** — truncated files, bit flips in the payload, bit
  flips in the header, wrong magic, and unknown versions are rejected
  with :class:`TraceFileError` (never a silent mis-replay).
"""

import json
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    Trace,
    TraceFileError,
    TraceWriter,
    iter_records,
    load_trace,
    mmap_records,
    read_header,
    trace_fingerprint,
    write_trace,
)
from repro.workloads.tracefile import DATA_OFFSET, MAGIC, RECORD_STRUCT

traces = st.builds(
    lambda name, rows: Trace(
        name=name,
        gaps=[r[0] for r in rows],
        writes=[r[1] for r in rows],
        addrs=[r[2] for r in rows],
    ),
    name=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        min_size=1, max_size=24),
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**31 - 1),
            st.booleans(),
            st.integers(min_value=-2**63, max_value=2**63 - 1),
        ),
        min_size=0, max_size=400),
)


@settings(max_examples=60, deadline=None)
@given(trace=traces)
def test_roundtrip_identity(tmp_path_factory, trace):
    path = tmp_path_factory.mktemp("rt") / "t.rtrc"
    write_trace(path, trace)
    back = load_trace(path)
    assert back.name == trace.name
    assert back.gaps == trace.gaps
    assert back.writes == trace.writes
    assert back.addrs == trace.addrs


@settings(max_examples=25, deadline=None)
@given(trace=traces, chunk=st.integers(min_value=1, max_value=64))
def test_streaming_ingest_equals_oneshot(tmp_path_factory, trace, chunk):
    """Appending in arbitrary chunks produces a byte-identical file."""
    base = tmp_path_factory.mktemp("stream")
    one = base / "one.rtrc"
    many = base / "many.rtrc"
    write_trace(one, trace)
    with TraceWriter(many, name=trace.name) as writer:
        for start in range(0, len(trace.addrs), chunk):
            stop = start + chunk
            writer.extend(trace.gaps[start:stop], trace.writes[start:stop],
                          trace.addrs[start:stop])
    assert one.read_bytes() == many.read_bytes()
    assert trace_fingerprint(one) == trace_fingerprint(many)


@settings(max_examples=25, deadline=None)
@given(trace=traces)
def test_mmap_agrees_with_lists(tmp_path_factory, trace):
    numpy = pytest.importorskip("numpy")
    path = tmp_path_factory.mktemp("mm") / "t.rtrc"
    write_trace(path, trace)
    view = mmap_records(path)
    assert len(view) == len(trace.addrs)
    assert list(view["addr"]) == trace.addrs
    assert list(view["gap"]) == trace.gaps
    assert [bool(w) for w in view["write"]] == trace.writes
    del view


@pytest.fixture
def good_file(tmp_path):
    trace = Trace(name="probe",
                  gaps=list(range(64)),
                  writes=[i % 3 == 0 for i in range(64)],
                  addrs=[i * 4096 + 7 for i in range(64)])
    path = tmp_path / "good.rtrc"
    write_trace(path, trace)
    return path, trace


def test_header_contents(good_file):
    path, trace = good_file
    header = read_header(path)
    assert header["version"] == 1
    assert header["name"] == "probe"
    assert header["records"] == len(trace.addrs)
    assert header["payload_sha256"].startswith(trace_fingerprint(path))


def test_iter_records_streams(good_file):
    path, trace = good_file
    rows = list(iter_records(path))
    assert rows == list(zip(trace.gaps, trace.writes, trace.addrs))


def test_truncated_payload_rejected(good_file):
    path, _ = good_file
    data = path.read_bytes()
    path.write_bytes(data[:-5])
    with pytest.raises(TraceFileError, match="size|truncat"):
        load_trace(path)


def test_truncated_header_rejected(good_file):
    path, _ = good_file
    path.write_bytes(path.read_bytes()[:10])
    with pytest.raises(TraceFileError):
        read_header(path)


def test_payload_bitflip_rejected(good_file):
    path, _ = good_file
    data = bytearray(path.read_bytes())
    data[DATA_OFFSET + 17] ^= 0x40
    path.write_bytes(bytes(data))
    read_header(path)  # header itself is fine ...
    with pytest.raises(TraceFileError, match="checksum|crc|sha"):
        load_trace(path)  # ... but the payload digest must catch the flip


def test_header_bitflip_rejected(good_file):
    path, _ = good_file
    data = bytearray(path.read_bytes())
    data[20] ^= 0x01  # inside the JSON header, after magic+lengths
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFileError, match="header"):
        read_header(path)


def test_wrong_magic_rejected(good_file):
    path, _ = good_file
    data = bytearray(path.read_bytes())
    data[0] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFileError, match="magic|not a repro trace"):
        read_header(path)


def test_unknown_version_rejected(good_file):
    """A future version must be refused, not guessed at."""
    path, _ = good_file
    data = bytearray(path.read_bytes())
    header_len, _ = struct.unpack_from("<II", data, 8)
    header = json.loads(bytes(data[16:16 + header_len]))
    header["version"] = 99
    raw = json.dumps(header, sort_keys=True,
                     separators=(",", ":")).encode()
    data[8:16] = struct.pack("<II", len(raw), zlib.crc32(raw))
    data[16:16 + header_len] = b" " * header_len
    data[16:16 + len(raw)] = raw
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFileError, match="version"):
        read_header(path)


def test_record_count_mismatch_rejected(good_file):
    """Appending stray bytes breaks the size invariant."""
    path, _ = good_file
    with open(path, "ab") as handle:
        handle.write(b"\x00" * RECORD_STRUCT.size)
    with pytest.raises(TraceFileError, match="size|records"):
        read_header(path)


def test_abort_on_exception_removes_partial_file(tmp_path):
    path = tmp_path / "partial.rtrc"
    with pytest.raises(RuntimeError):
        with TraceWriter(path, name="doomed") as writer:
            writer.append(1, False, 0x1000)
            raise RuntimeError("ingest died")
    assert not path.exists()


def test_fingerprint_is_content_addressed(tmp_path):
    """Same records, different path/filename → same fingerprint."""
    trace = Trace(name="fp", gaps=[0, 1], writes=[True, False],
                  addrs=[64, 128])
    a, b = tmp_path / "a.rtrc", tmp_path / "sub-b.rtrc"
    write_trace(a, trace)
    write_trace(b, trace)
    assert trace_fingerprint(a) == trace_fingerprint(b)
    other = Trace(name="fp", gaps=[0, 1], writes=[True, False],
                  addrs=[64, 192])
    c = tmp_path / "c.rtrc"
    write_trace(c, other)
    assert trace_fingerprint(c) != trace_fingerprint(a)
