"""Trace container: accounting and slicing."""

import pytest

from repro.workloads.trace import Trace


class TestTrace:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            Trace(name="bad", gaps=[1], writes=[], addrs=[0])

    def test_instruction_count(self):
        trace = Trace(name="t", gaps=[2, 3, 0], writes=[False] * 3,
                      addrs=[0, 64, 128])
        assert trace.instructions == 3 + 5

    def test_write_fraction(self):
        trace = Trace(name="t", gaps=[0] * 4,
                      writes=[True, False, True, False],
                      addrs=[0] * 4)
        assert trace.write_fraction == 0.5

    def test_write_fraction_empty(self):
        trace = Trace(name="t", gaps=[], writes=[], addrs=[])
        assert trace.write_fraction == 0.0

    def test_footprint_blocks(self):
        trace = Trace(name="t", gaps=[0] * 4, writes=[False] * 4,
                      addrs=[0, 10, 64, 129])
        assert trace.footprint_blocks() == 3

    def test_slice(self):
        trace = Trace(name="t", gaps=[1, 2, 3, 4], writes=[False] * 4,
                      addrs=[0, 64, 128, 192])
        sub = trace.slice(1, 3)
        assert sub.addrs == [64, 128]
        assert sub.gaps == [2, 3]
        assert len(sub) == 2
