"""Synthetic trace generators: determinism, components, layout."""

import pytest

from repro.workloads.generators import (
    BLOCK,
    PAGE,
    WorkloadProfile,
    generate_trace,
)


def simple_profile(**kw):
    defaults = dict(name="unit", mean_gap=2.0, write_fraction=0.3)
    defaults.update(kw)
    return WorkloadProfile(**defaults)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        p = simple_profile()
        a = generate_trace(p, 2000, seed=7)
        b = generate_trace(p, 2000, seed=7)
        assert a.addrs == b.addrs
        assert a.writes == b.writes
        assert a.gaps == b.gaps

    def test_different_seed_differs(self):
        p = simple_profile()
        assert (generate_trace(p, 2000, seed=7).addrs
                != generate_trace(p, 2000, seed=8).addrs)

    def test_prefix_consistency(self):
        """A longer trace extends the shorter one — the Figure 6b
        cumulative-interval methodology depends on this."""
        p = simple_profile()
        short = generate_trace(p, 1000, seed=7)
        long = generate_trace(p, 3000, seed=7)
        assert long.addrs[:1000] == short.addrs


class TestComponents:
    def test_addresses_stay_in_footprint(self):
        p = simple_profile()
        trace = generate_trace(p, 3000)
        assert max(trace.addrs) < p.footprint_bytes

    def test_regions_do_not_overlap(self):
        p = simple_profile()
        layout = p.region_layout()
        names = ["hot", "stream", "random", "pages", "thrash", "end"]
        bases = [layout[n] for n in names]
        assert bases == sorted(bases)

    def test_hot_only_stays_in_hot_region(self):
        p = simple_profile(w_hot=1.0, w_stream=0, w_random=0, w_pages=0,
                           w_thrash=0, hot_bytes=4096)
        trace = generate_trace(p, 1000)
        assert all(a < 4096 for a in trace.addrs)

    def test_stream_is_sequential(self):
        p = simple_profile(w_hot=0, w_stream=1.0, w_random=0, w_pages=0,
                           w_thrash=0, num_streams=1, stream_stride=8)
        trace = generate_trace(p, 100)
        deltas = [b - a for a, b in zip(trace.addrs, trace.addrs[1:])]
        assert all(d == 8 for d in deltas)

    def test_thrash_blocks_conflict_in_l2(self):
        """Thrash addresses must map to one L2 set (the fast-counter
        mechanism requires conflict evictions)."""
        p = simple_profile(w_hot=0, w_stream=0, w_random=0, w_pages=0,
                           w_thrash=1.0, thrash_blocks=12)
        trace = generate_trace(p, 48)
        num_sets = 1024 * 1024 // (8 * 64)
        sets = {(a // BLOCK) % num_sets for a in trace.addrs}
        assert len(sets) == 1
        assert len(set(trace.addrs)) == 12

    def test_page_component_respects_stride(self):
        p = simple_profile(w_hot=0, w_stream=0, w_random=0, w_pages=1.0,
                           w_thrash=0, page_pool_pages=4, page_stride=32)
        trace = generate_trace(p, 500)
        base = p.region_layout()["pages"]
        pages = {(a - base) // PAGE for a in trace.addrs}
        assert all(page % 32 == 0 for page in pages)

    def test_write_fraction_approximate(self):
        p = simple_profile(write_fraction=0.4)
        trace = generate_trace(p, 5000)
        assert 0.3 < trace.write_fraction < 0.5

    def test_mean_gap_approximate(self):
        p = simple_profile(mean_gap=4.0)
        trace = generate_trace(p, 5000)
        mean = sum(trace.gaps) / len(trace.gaps)
        assert 3.0 < mean < 5.0

    def test_rejects_zero_weights(self):
        p = simple_profile(w_hot=0, w_stream=0, w_random=0, w_pages=0,
                           w_thrash=0)
        with pytest.raises(ValueError):
            generate_trace(p, 10)

    def test_random_skew_concentrates_head(self):
        uniform = simple_profile(w_hot=0, w_stream=0, w_random=1.0,
                                 w_pages=0, w_thrash=0, random_skew=1.0,
                                 random_bytes=1024 * 1024)
        skewed = simple_profile(name="unit2", w_hot=0, w_stream=0,
                                w_random=1.0, w_pages=0, w_thrash=0,
                                random_skew=3.0, random_bytes=1024 * 1024)
        tu = generate_trace(uniform, 4000)
        ts = generate_trace(skewed, 4000)
        assert ts.footprint_blocks() < tu.footprint_blocks()
