"""Scenario library: registration, determinism, and working-set claims.

The scenario library's whole point is workloads whose working sets dwarf
the paper's 1 MB L2 — these tests pin that property (footprint ≫ L2),
the seeding discipline (same seed → bit-identical trace, different seed
→ different trace), and that every scenario is a first-class workload
name everywhere a SPEC app is (resolver, Experiment, fuzz shaping).
"""

import pytest

from repro.api import Experiment
from repro.workloads import (
    SCENARIO_APPS,
    SCENARIOS,
    SPEC_APPS,
    resolve_trace,
    scenario_trace,
    workload_kind,
    workload_names,
)

L2_BYTES = 1024 * 1024
BLOCK = 64


def test_registry_contents():
    assert set(SCENARIO_APPS) == {"db-page-cache", "gc-mark-sweep",
                                  "ml-weight-stream"}
    assert SCENARIO_APPS == tuple(sorted(SCENARIOS))
    assert not set(SCENARIO_APPS) & set(SPEC_APPS)
    for name in SCENARIO_APPS:
        assert name in workload_names()
        assert workload_kind(name) == "scenario"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_deterministic_replay(name):
    a = scenario_trace(name, num_refs=4000, seed=5)
    b = scenario_trace(name, num_refs=4000, seed=5)
    c = scenario_trace(name, num_refs=4000, seed=6)
    assert (a.gaps, a.writes, a.addrs) == (b.gaps, b.writes, b.addrs)
    assert a.addrs != c.addrs


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_prefix_property(name):
    """Shorter runs are exact prefixes — required for trace slicing."""
    short = scenario_trace(name, num_refs=1500, seed=5)
    long = scenario_trace(name, num_refs=3000, seed=5)
    assert long.addrs[:1500] == short.addrs
    assert long.gaps[:1500] == short.gaps
    assert long.writes[:1500] == short.writes


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_working_set_exceeds_l2(name):
    """Each scenario touches well more than the 1 MB L2 within 60k refs."""
    trace = scenario_trace(name, num_refs=60_000, seed=1234)
    footprint = trace.footprint_blocks(BLOCK) * BLOCK
    assert footprint > 2 * L2_BYTES, (
        f"{name}: footprint {footprint} bytes does not dwarf the L2")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_resolver_and_experiment(name):
    trace = resolve_trace(name, 2000, seed=9)
    assert len(trace.addrs) == 2000
    assert trace.name == name
    result = Experiment("split+gcm", name, refs=2000).run()
    assert result.app == name
    assert result.cycles > 0


def test_unknown_workload_suggests(tmp_path):
    with pytest.raises(ValueError, match="db-page-cache"):
        workload_kind("db-page-cach")
    with pytest.raises(ValueError):
        Experiment("split+gcm", "no-such-workload")


def test_scenario_shapes_fuzz_working_set():
    """Scenario names feed the fuzz campaign's working-set sampler."""
    from repro.testing.schedule import generate_scenario

    shaped = generate_scenario("split+gcm", 42, workload="gc-mark-sweep")
    default = generate_scenario("split+gcm", 42)
    assert shaped.workload == "gc-mark-sweep"
    assert shaped.workload_id == "gc-mark-sweep"
    assert default.workload is None
    addresses = {op.address for op in shaped.ops if op.kind != "flush"}
    assert len(addresses) > 1
