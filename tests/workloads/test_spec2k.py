"""SPEC CPU 2000 profile suite: structure and qualitative character."""

import pytest

from repro.workloads.spec2k import (
    FAST_COUNTER_APPS,
    MEMORY_BOUND,
    PROFILES,
    SPEC_APPS,
    profile_for,
    spec_trace,
)


class TestSuiteStructure:
    def test_twenty_one_apps(self):
        """Table 1: 21 applications (Fortran-90 ones omitted)."""
        assert len(SPEC_APPS) == 21

    def test_expected_names_present(self):
        expected = {
            "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf",
            "parser", "perlbmk", "twolf", "vortex", "vpr",
            "ammp", "apsi", "art", "applu", "equake", "mesa", "mgrid",
            "swim", "wupwise",
        }
        assert set(SPEC_APPS) == expected

    def test_memory_bound_subset(self):
        assert set(MEMORY_BOUND) <= set(SPEC_APPS)
        assert set(FAST_COUNTER_APPS) <= set(MEMORY_BOUND)

    def test_profile_for_unknown_app(self):
        with pytest.raises(KeyError):
            profile_for("linpack")

    def test_profiles_named_after_apps(self):
        for app, profile in PROFILES.items():
            assert profile.name == app


class TestCharacter:
    def test_memory_bound_have_larger_footprints(self):
        mem = min(PROFILES[a].footprint_bytes for a in MEMORY_BOUND)
        compute = [a for a in SPEC_APPS if a not in MEMORY_BOUND]
        comp = max(PROFILES[a].footprint_bytes for a in compute)
        assert mem > comp

    def test_fast_counter_apps_have_thrash_weight(self):
        for app in FAST_COUNTER_APPS:
            assert PROFILES[app].w_thrash >= 0.01

    def test_equake_twolf_write_rate_below_average(self):
        """The paper notes their overall write-back rate is below average
        despite their fast counters."""
        avg = sum(p.write_fraction for p in PROFILES.values()) / 21
        assert PROFILES["equake"].write_fraction < avg
        assert PROFILES["twolf"].write_fraction < avg

    def test_trace_generation(self):
        trace = spec_trace("mcf", 5000)
        assert len(trace) == 5000
        assert trace.name == "mcf"

    def test_traces_deterministic_per_app(self):
        assert spec_trace("swim", 1000).addrs == spec_trace("swim", 1000).addrs

    def test_apps_have_distinct_traces(self):
        assert spec_trace("swim", 1000).addrs != spec_trace("mcf", 1000).addrs
