"""Normalization and aggregation helpers."""

import math

import pytest

from repro.core.config import baseline_config, direct_config
from repro.sim.metrics import (
    NormalizedResult,
    arithmetic_mean,
    geometric_mean,
    run_normalized,
)
from repro.sim.processor import SimResult
from repro.workloads.trace import Trace


def sim_result(instructions, cycles, name="synthetic"):
    """A hand-built SimResult; memory is unused by the metrics layer."""
    return SimResult(name=name, instructions=instructions, cycles=cycles,
                     l1_hits=0, l1_misses=0, l2_hits=0, l2_misses=0,
                     writebacks=0, memory=None)


def miss_trace(n=200):
    return Trace(name="t", gaps=[2] * n, writes=[False] * n,
                 addrs=[i * 64 * 33 for i in range(n)])


class TestNormalization:
    def test_baseline_normalizes_to_one(self):
        result = run_normalized(baseline_config(), miss_trace())
        assert result.normalized_ipc == pytest.approx(1.0)
        assert result.overhead == pytest.approx(0.0)

    def test_direct_shows_overhead(self):
        result = run_normalized(direct_config(), miss_trace())
        assert 0 < result.normalized_ipc < 1
        assert result.overhead == pytest.approx(1 - result.normalized_ipc)

    def test_shared_baseline_reused(self):
        from repro.sim.processor import simulate
        trace = miss_trace()
        base = simulate(baseline_config(), trace)
        result = run_normalized(direct_config(), trace, baseline=base)
        assert result.baseline is base


class TestNormalizedResultEdgeCases:
    def test_zero_cycle_result_has_zero_ipc(self):
        assert sim_result(100, 0).ipc == 0.0

    def test_zero_baseline_ipc_is_undefined_not_zero(self):
        """A dead baseline (0 cycles → 0 IPC) makes the ratio undefined.

        It must surface as nan — not 0.0, which would read as "the scheme
        is infinitely slow" and silently drag figure averages down.
        """
        cell = NormalizedResult(app="a", scheme="s",
                                baseline=sim_result(100, 0),
                                result=sim_result(100, 200))
        assert math.isnan(cell.normalized_ipc)
        assert math.isnan(cell.overhead)
        assert not cell.valid

    def test_valid_cell_reports_valid(self):
        cell = NormalizedResult(app="a", scheme="s",
                                baseline=sim_result(100, 100),
                                result=sim_result(100, 200))
        assert cell.valid

    def test_aggregation_skips_invalid_cells(self):
        """Means either reject nan loudly or skip it on request."""
        cells = [
            NormalizedResult(app="ok", scheme="s",
                             baseline=sim_result(1000, 1000),
                             result=sim_result(1000, 1250)),
            NormalizedResult(app="dead", scheme="s",
                             baseline=sim_result(100, 0),
                             result=sim_result(100, 200)),
        ]
        nipcs = [cell.normalized_ipc for cell in cells]
        with pytest.raises(ValueError):
            geometric_mean(nipcs)
        with pytest.raises(ValueError):
            arithmetic_mean(nipcs)
        assert geometric_mean(nipcs, skip_invalid=True) == pytest.approx(0.8)
        assert arithmetic_mean(nipcs, skip_invalid=True) == pytest.approx(0.8)

    def test_overhead_positive_when_scheme_slower(self):
        cell = NormalizedResult(app="a", scheme="s",
                                baseline=sim_result(1000, 1000),   # IPC 1.0
                                result=sim_result(1000, 1250))     # IPC 0.8
        assert cell.normalized_ipc == pytest.approx(0.8)
        assert cell.overhead == pytest.approx(0.2)

    def test_overhead_negative_when_scheme_faster(self):
        cell = NormalizedResult(app="a", scheme="s",
                                baseline=sim_result(1000, 1250),   # IPC 0.8
                                result=sim_result(1000, 1000))     # IPC 1.0
        assert cell.normalized_ipc == pytest.approx(1.25)
        assert cell.overhead == pytest.approx(-0.25)

    def test_multi_app_average_hand_computed(self):
        """The figure-level average over apps, checked against paper math:
        nIPCs 0.9, 0.8, 0.6 → arithmetic 0.766…, geometric (0.432)^(1/3)."""
        cells = [
            NormalizedResult(app=a, scheme="s",
                             baseline=sim_result(1000, 1000),
                             result=sim_result(1000, cycles))
            for a, cycles in (("x", 1000 / 0.9), ("y", 1250),
                              ("z", 1000 / 0.6))
        ]
        nipcs = [cell.normalized_ipc for cell in cells]
        assert arithmetic_mean(nipcs) == pytest.approx((0.9 + 0.8 + 0.6) / 3)
        assert geometric_mean(nipcs) == pytest.approx(
            (0.9 * 0.8 * 0.6) ** (1 / 3))


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric_leq_arithmetic(self):
        values = [0.5, 0.9, 0.99, 0.7]
        assert geometric_mean(values) <= arithmetic_mean(values)

    def test_geomean_21_small_values_does_not_underflow(self):
        """The paper averages over 21 benchmarks; 21 values near 1e-20
        underflow a naive product (1e-420 < float min) to 0.0.  The log
        domain keeps the exact answer."""
        values = [1e-20] * 21
        assert geometric_mean(values) == pytest.approx(1e-20, rel=1e-9)

    def test_geomean_21_large_values_does_not_overflow(self):
        values = [1e18] * 21
        assert geometric_mean(values) == pytest.approx(1e18, rel=1e-9)

    def test_geomean_21_mixed_values_matches_log_domain(self):
        values = [0.5 + 0.05 * i for i in range(21)]
        expected = math.exp(sum(math.log(v) for v in values) / 21)
        assert geometric_mean(values) == pytest.approx(expected)

    def test_geomean_zero_annihilates(self):
        assert geometric_mean([0.0, 2.0, 8.0]) == 0.0

    def test_geomean_negative_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    def test_geomean_nan_raises_unless_skipped(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, float("nan")])
        assert geometric_mean([4.0, float("nan"), 1.0],
                              skip_invalid=True) == pytest.approx(2.0)

    def test_geomean_all_invalid_skipped_is_zero(self):
        assert geometric_mean([float("nan")] * 3, skip_invalid=True) == 0.0
