"""Normalization and aggregation helpers."""

import pytest

from repro.core.config import baseline_config, direct_config
from repro.sim.metrics import (
    NormalizedResult,
    arithmetic_mean,
    geometric_mean,
    run_normalized,
)
from repro.sim.processor import SimResult
from repro.workloads.trace import Trace


def sim_result(instructions, cycles, name="synthetic"):
    """A hand-built SimResult; memory is unused by the metrics layer."""
    return SimResult(name=name, instructions=instructions, cycles=cycles,
                     l1_hits=0, l1_misses=0, l2_hits=0, l2_misses=0,
                     writebacks=0, memory=None)


def miss_trace(n=200):
    return Trace(name="t", gaps=[2] * n, writes=[False] * n,
                 addrs=[i * 64 * 33 for i in range(n)])


class TestNormalization:
    def test_baseline_normalizes_to_one(self):
        result = run_normalized(baseline_config(), miss_trace())
        assert result.normalized_ipc == pytest.approx(1.0)
        assert result.overhead == pytest.approx(0.0)

    def test_direct_shows_overhead(self):
        result = run_normalized(direct_config(), miss_trace())
        assert 0 < result.normalized_ipc < 1
        assert result.overhead == pytest.approx(1 - result.normalized_ipc)

    def test_shared_baseline_reused(self):
        from repro.sim.processor import simulate
        trace = miss_trace()
        base = simulate(baseline_config(), trace)
        result = run_normalized(direct_config(), trace, baseline=base)
        assert result.baseline is base


class TestNormalizedResultEdgeCases:
    def test_zero_cycle_result_has_zero_ipc(self):
        assert sim_result(100, 0).ipc == 0.0

    def test_zero_baseline_ipc_does_not_divide(self):
        """A dead baseline (0 cycles → 0 IPC) must yield 0, not raise."""
        cell = NormalizedResult(app="a", scheme="s",
                                baseline=sim_result(100, 0),
                                result=sim_result(100, 200))
        assert cell.normalized_ipc == 0.0
        assert cell.overhead == 1.0

    def test_overhead_positive_when_scheme_slower(self):
        cell = NormalizedResult(app="a", scheme="s",
                                baseline=sim_result(1000, 1000),   # IPC 1.0
                                result=sim_result(1000, 1250))     # IPC 0.8
        assert cell.normalized_ipc == pytest.approx(0.8)
        assert cell.overhead == pytest.approx(0.2)

    def test_overhead_negative_when_scheme_faster(self):
        cell = NormalizedResult(app="a", scheme="s",
                                baseline=sim_result(1000, 1250),   # IPC 0.8
                                result=sim_result(1000, 1000))     # IPC 1.0
        assert cell.normalized_ipc == pytest.approx(1.25)
        assert cell.overhead == pytest.approx(-0.25)

    def test_multi_app_average_hand_computed(self):
        """The figure-level average over apps, checked against paper math:
        nIPCs 0.9, 0.8, 0.6 → arithmetic 0.766…, geometric (0.432)^(1/3)."""
        cells = [
            NormalizedResult(app=a, scheme="s",
                             baseline=sim_result(1000, 1000),
                             result=sim_result(1000, cycles))
            for a, cycles in (("x", 1000 / 0.9), ("y", 1250),
                              ("z", 1000 / 0.6))
        ]
        nipcs = [cell.normalized_ipc for cell in cells]
        assert arithmetic_mean(nipcs) == pytest.approx((0.9 + 0.8 + 0.6) / 3)
        assert geometric_mean(nipcs) == pytest.approx(
            (0.9 * 0.8 * 0.6) ** (1 / 3))


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric_leq_arithmetic(self):
        values = [0.5, 0.9, 0.99, 0.7]
        assert geometric_mean(values) <= arithmetic_mean(values)
