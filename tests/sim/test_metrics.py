"""Normalization and aggregation helpers."""

import pytest

from repro.core.config import baseline_config, direct_config
from repro.sim.metrics import (
    arithmetic_mean,
    geometric_mean,
    run_normalized,
)
from repro.workloads.trace import Trace


def miss_trace(n=200):
    return Trace(name="t", gaps=[2] * n, writes=[False] * n,
                 addrs=[i * 64 * 33 for i in range(n)])


class TestNormalization:
    def test_baseline_normalizes_to_one(self):
        result = run_normalized(baseline_config(), miss_trace())
        assert result.normalized_ipc == pytest.approx(1.0)
        assert result.overhead == pytest.approx(0.0)

    def test_direct_shows_overhead(self):
        result = run_normalized(direct_config(), miss_trace())
        assert 0 < result.normalized_ipc < 1
        assert result.overhead == pytest.approx(1 - result.normalized_ipc)

    def test_shared_baseline_reused(self):
        from repro.sim.processor import simulate
        trace = miss_trace()
        base = simulate(baseline_config(), trace)
        result = run_normalized(direct_config(), trace, baseline=base)
        assert result.baseline is base


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric_leq_arithmetic(self):
        values = [0.5, 0.9, 0.99, 0.7]
        assert geometric_mean(values) <= arithmetic_mean(values)
