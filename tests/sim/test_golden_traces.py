"""Golden-trace lockdown: scalar engine vs the committed fixtures.

Every registered preset has a JSON fixture under ``tests/sim/golden/``
(regenerated with ``python -m repro.testing.regen_golden``) pinning final
cycles, normalized IPC, the stat counters, the full metrics snapshot, and
the PathTime sums over the first post-warmup misses.  The comparisons are
``==`` on floats — *bit-for-bit*, no tolerance — so any change to the
timing model, however small, fails here until the fixtures are
deliberately regenerated and the diff reviewed.
"""

import json
import math

import pytest

from repro.api import get_config
from repro.core.config import PRESETS
from repro.obs.tracer import RecordingTracer
from repro.sim.processor import Processor
from repro.testing.regen_golden import (
    GOLDEN_DIR,
    GOLDEN_WARMUP,
    PATHTIME_MISSES,
    baseline_ipc_for,
    golden_trace,
)


@pytest.fixture(scope="module")
def trace():
    return golden_trace()


@pytest.fixture(scope="module")
def baseline_ipc(trace):
    return baseline_ipc_for(trace)


def load_fixture(preset: str) -> dict:
    path = GOLDEN_DIR / f"{preset}.json"
    assert path.exists(), (
        f"missing golden fixture for preset {preset!r}; run "
        f"`python -m repro.testing.regen_golden` and commit the result"
    )
    return json.loads(path.read_text())


def test_every_preset_has_a_fixture_and_no_strays():
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(PRESETS)


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_scalar_matches_golden(preset, trace, baseline_ipc):
    golden = load_fixture(preset)

    p = Processor(get_config(preset, sim_engine="scalar"))
    r = p.run(trace, warmup_refs=GOLDEN_WARMUP)

    assert r.cycles == golden["cycles"]
    assert r.instructions == golden["instructions"]
    assert {
        "l1_hits": r.l1_hits,
        "l1_misses": r.l1_misses,
        "l2_hits": r.l2_hits,
        "l2_misses": r.l2_misses,
        "writebacks": r.writebacks,
    } == golden["result"]
    assert p.metrics.snapshot() == golden["metrics"]

    ipc = r.instructions / r.cycles if r.cycles else 0.0
    nipc = (ipc / baseline_ipc) if baseline_ipc else float("nan")
    assert not math.isnan(nipc)
    assert nipc == golden["normalized_ipc"]


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_scalar_pathtime_matches_golden(preset, trace):
    golden = load_fixture(preset)["pathtime"]

    tracer = RecordingTracer()
    p = Processor(get_config(preset, sim_engine="scalar"), tracer=tracer)
    p.run(trace, warmup_refs=GOLDEN_WARMUP)

    head = tracer.misses[:PATHTIME_MISSES]
    assert len(tracer.misses) == golden["misses_recorded"]
    assert len(head) == golden["n"]
    assert sum(m.issue for m in head) == golden["sum_issue"]
    assert sum(m.data_ready for m in head) == golden["sum_data_ready"]
    assert sum(m.auth_done for m in head) == golden["sum_auth_done"]
    assert sum(sum(m.parts.values()) for m in head) == golden["sum_parts"]
