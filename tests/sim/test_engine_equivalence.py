"""Differential lockdown: the batched engine must equal the scalar oracle.

The batched engine (:mod:`repro.sim.batched`) restructures the reference
loop into NumPy preclassification plus Python drains, but its contract is
*bit-for-bit* equality with the scalar engine — same final cycles, same
stat counters, same metrics snapshot, same semantic memory state, same
per-miss PathTime records.  Three layers enforce it:

* a deterministic sweep over every registered preset on two fixed traces
  (one cold, one with warmup),
* a Hypothesis differential over random short traces x random presets,
* a tracer differential comparing the full ``MissRecord``/event streams
  on the authenticated presets (the tracer forces the generic drain, so
  this also covers the instrumented path).

A fourth group pins the RNG contract from the recovery subsystem: the
simulator never consults the module-level ``random`` state, so a global
``random.seed(...)`` from embedding code cannot perturb timing results,
and an explicitly injected generator is honoured and checkpointed.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import get_config
from repro.core.config import PRESETS, RecoveryConfig
from repro.obs.tracer import RecordingTracer
from repro.sim.processor import Processor
from repro.sim.timing_memory import TimingSecureMemory
from repro.workloads import PROFILES, generate_trace

PRESET_NAMES = sorted(PRESETS)

#: Presets whose miss paths exercise the authentication machinery; the
#: tracer differential runs on these (plus a counter-mode pair).
TRACED_PRESETS = [s for s in ("split+gcm", "mono+sha", "gcm-auth",
                              "sha-auth-320", "split", "direct")
                  if s in PRESETS]


def observables(processor, result):
    """Everything an engine is held accountable for, as one comparable."""
    return (
        result.cycles, result.instructions,
        result.l1_hits, result.l1_misses,
        result.l2_hits, result.l2_misses, result.writebacks,
        processor.metrics.snapshot(),
        processor.state_dict(),
    )


def run_engine(preset, trace, engine, warmup=0, tracer=None):
    p = Processor(get_config(preset, sim_engine=engine), tracer=tracer)
    r = p.run(trace, warmup_refs=warmup)
    return observables(p, r)


@pytest.fixture(scope="module")
def cold_trace():
    return generate_trace(PROFILES["swim"], 8000, seed=7)


@pytest.fixture(scope="module")
def warm_trace():
    return generate_trace(PROFILES["mcf"], 6000, seed=11)


@pytest.mark.parametrize("preset", PRESET_NAMES)
def test_batched_equals_scalar_cold(preset, cold_trace):
    assert run_engine(preset, cold_trace, "scalar") == \
        run_engine(preset, cold_trace, "batched")


@pytest.mark.parametrize("preset", PRESET_NAMES)
def test_batched_equals_scalar_with_warmup(preset, warm_trace):
    assert run_engine(preset, warm_trace, "scalar", warmup=2000) == \
        run_engine(preset, warm_trace, "batched", warmup=2000)


@settings(max_examples=15, deadline=None)
@given(
    preset=st.sampled_from(PRESET_NAMES),
    app=st.sampled_from(sorted(PROFILES)),
    refs=st.integers(min_value=64, max_value=2500),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    warmup_frac=st.sampled_from([0.0, 0.25, 0.5]),
)
def test_batched_equals_scalar_random(preset, app, refs, seed, warmup_frac):
    trace = generate_trace(PROFILES[app], refs, seed=seed)
    warmup = int(refs * warmup_frac)
    assert run_engine(preset, trace, "scalar", warmup=warmup) == \
        run_engine(preset, trace, "batched", warmup=warmup)


@pytest.mark.parametrize("preset", TRACED_PRESETS)
def test_tracer_streams_identical(preset, warm_trace):
    """Per-miss PathTime records and every trace event match exactly."""
    streams = {}
    for engine in ("scalar", "batched"):
        tracer = RecordingTracer()
        run_engine(preset, warm_trace, engine, tracer=tracer)
        streams[engine] = (
            [repr(vars(m)) for m in tracer.misses],
            [repr(vars(e)) for e in tracer.events],
        )
    assert streams["scalar"] == streams["batched"]


# -- RNG threading (recovery subsystem) ---------------------------------


def test_global_random_seed_does_not_perturb_timing(cold_trace):
    runs = []
    for global_seed in (123, 987654321):
        random.seed(global_seed)
        runs.append(run_engine("split+gcm", cold_trace, "auto"))
        random.seed()  # leave the global state unseeded again
    assert runs[0] == runs[1]


def recovery_config(seed=0):
    return get_config("split",
                      recovery=RecoveryConfig(enabled=True, seed=seed))


def test_injected_rng_is_honoured_and_checkpointed():
    rng = random.Random(5)
    mem = TimingSecureMemory(recovery_config(), rng=rng)
    assert mem._recovery_rng is rng
    state = mem.state_dict()
    rng.random()  # advance the live generator past the saved state
    mem2 = TimingSecureMemory(recovery_config())
    mem2.load_state(state)
    assert mem2._recovery_rng.getstate() == random.Random(5).getstate()


def test_default_rng_derives_from_recovery_seed():
    a = TimingSecureMemory(recovery_config(seed=42))
    b = TimingSecureMemory(recovery_config(seed=42))
    assert a._recovery_rng.getstate() == b._recovery_rng.getstate()
    assert a._recovery_rng is not b._recovery_rng
    assert a._recovery_rng.getstate() == random.Random(42).getstate()
