"""Cross-engine checkpoint/resume: engines are interchangeable mid-run.

``sim_engine`` is a host-side execution choice, not simulation semantics,
so a checkpoint written under one engine must resume under the other and
land byte-identical to the uninterrupted run — final cycles, metrics
snapshot, and full semantic memory state.  Both directions are covered
(scalar -> batched and batched -> scalar), and the checkpoint payloads
themselves must agree on everything except the host-only fields.
"""

import pytest

from repro.api import get_config
from repro.core.config import PRESETS
from repro.resilience import (
    checkpoint_simulation,
    load_simulation,
    semantic_config_state,
)
from repro.sim.processor import LoopState, Processor
from repro.workloads import PROFILES, generate_trace

#: A cross-section of the scheme space: no protection, both counter
#: modes, direct encryption, authenticated variants, prediction, and the
#: registry-backed schemes.
SUBSET = [s for s in ("baseline", "split", "mono64b", "direct", "split+gcm",
                      "mono+sha", "xom+sha", "pred", "secddr", "scattered")
          if s in PRESETS]

WARMUP = 2000
CHECKPOINT_EVERY = 4000


@pytest.fixture(scope="module")
def trace():
    return generate_trace(PROFILES["gzip"], 12000, seed=3)


@pytest.fixture(scope="module")
def reference(trace):
    """Uninterrupted runs, keyed by preset; engine-agreement asserted."""
    out = {}
    for name in SUBSET:
        per_engine = {}
        for engine in ("scalar", "batched"):
            p = Processor(get_config(name, sim_engine=engine))
            r = p.run(trace, warmup_refs=WARMUP)
            per_engine[engine] = (r.cycles, p.metrics.snapshot(),
                                  p.state_dict())
        assert per_engine["scalar"] == per_engine["batched"], name
        out[name] = per_engine["scalar"]
    return out


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.parametrize("engines", [("scalar", "batched"),
                                     ("batched", "scalar")],
                         ids=["scalar-to-batched", "batched-to-scalar"])
def test_resume_across_engines(name, engines, trace, reference):
    save_engine, resume_engine = engines

    saved = []
    p1 = Processor(get_config(name, sim_engine=save_engine))
    p1.run(trace, warmup_refs=WARMUP, checkpoint_every=CHECKPOINT_EVERY,
           on_checkpoint=lambda loop: saved.append(
               checkpoint_simulation(p1, loop)))
    assert saved, f"{name}: no checkpoint written"

    payload = load_simulation(saved[0])
    p2 = Processor(get_config(name, sim_engine=resume_engine))
    p2.load_state(payload["processor"])
    loop = LoopState.from_dict(payload["loop"])
    r2 = p2.run(trace, warmup_refs=WARMUP, resume=loop)

    assert (r2.cycles, p2.metrics.snapshot(), p2.state_dict()) == \
        reference[name]

    # The persisted config differs from the resuming engine's only in
    # host-only fields (sim_engine, kernel).
    assert semantic_config_state(payload["config"]) == \
        semantic_config_state(get_config(name, sim_engine=resume_engine))
