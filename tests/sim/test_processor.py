"""Trace-driven processor: IPC arithmetic, window behaviour, determinism."""

import pytest

from repro.auth.policies import AuthPolicy
from repro.core.config import (
    baseline_config,
    direct_config,
    sha_auth_config,
    split_config,
)
from repro.sim.processor import Processor, simulate
from repro.workloads.trace import Trace


def make_trace(addresses, writes=None, gap=2):
    n = len(addresses)
    return Trace(name="unit", gaps=[gap] * n,
                 writes=writes or [False] * n, addrs=list(addresses))


class TestBasics:
    def test_all_hits_run_at_issue_width(self):
        # one block, referenced repeatedly: first access misses, rest hit L1
        trace = make_trace([0] * 1000, gap=2)
        result = simulate(baseline_config(), trace)
        # 3 instructions per reference at width 3 -> about 1 cycle each,
        # plus one initial miss
        assert result.ipc == pytest.approx(3.0, rel=0.15)

    def test_misses_lower_ipc(self):
        stride = 64
        trace_hits = make_trace([0] * 500)
        trace_misses = make_trace([i * stride * 33 for i in range(500)])
        ipc_hits = simulate(baseline_config(), trace_hits).ipc
        ipc_misses = simulate(baseline_config(), trace_misses).ipc
        assert ipc_misses < ipc_hits / 2

    def test_instruction_accounting(self):
        trace = make_trace([0, 64, 128], gap=5)
        result = simulate(baseline_config(), trace)
        assert result.instructions == trace.instructions == 18

    def test_determinism(self):
        trace = make_trace([i * 64 for i in range(200)])
        a = simulate(split_config(), trace)
        b = simulate(split_config(), trace)
        assert a.cycles == b.cycles

    def test_seconds_at_5ghz(self):
        trace = make_trace([0] * 10)
        result = simulate(baseline_config(), trace)
        assert result.seconds == pytest.approx(result.cycles / 5e9)


class TestHierarchy:
    def test_l1_filters_l2(self):
        trace = make_trace([0, 0, 0, 64, 64])
        result = simulate(baseline_config(), trace)
        assert result.l1_hits == 3
        assert result.l1_misses == 2
        assert result.l2_misses == 2

    def test_dirty_l2_evictions_write_back(self):
        # write blocks mapping to one L2 set until they spill
        stride = 2048 * 64  # L2 set stride for 1MB 8-way
        addresses = [i * stride for i in range(10)] * 2
        trace = make_trace(addresses, writes=[True] * 20)
        result = simulate(baseline_config(), trace)
        assert result.writebacks > 0

    def test_overlap_window_hides_independent_misses(self):
        """Ten independent misses back-to-back should cost far less than
        ten serialized round trips (MLP through the MSHR window)."""
        addresses = [i * 64 * 33 for i in range(10)]
        trace = make_trace(addresses, gap=0)
        result = simulate(baseline_config(), trace)
        serialized = 10 * 235
        assert result.cycles < serialized * 0.8


class TestPolicyIntegration:
    def test_safe_slower_than_lazy_under_sha(self):
        addresses = [i * 64 * 33 for i in range(300)]
        trace = make_trace(addresses)
        lazy = simulate(sha_auth_config(auth_policy=AuthPolicy.LAZY), trace)
        safe = simulate(sha_auth_config(auth_policy=AuthPolicy.SAFE), trace)
        assert safe.cycles > lazy.cycles

    def test_direct_slower_than_baseline(self):
        addresses = [i * 64 * 33 for i in range(300)]
        trace = make_trace(addresses)
        base = simulate(baseline_config(), trace)
        direct = simulate(direct_config(), trace)
        assert direct.cycles > base.cycles


class TestWarmup:
    def test_warmup_excludes_cold_misses(self):
        # phase 1 touches a working set; phase 2 re-touches it (warm)
        working_set = [i * 64 for i in range(100)]
        trace = make_trace(working_set * 3)
        cold = simulate(baseline_config(), trace)
        processor = Processor(baseline_config())
        warm = processor.run(trace, warmup_refs=100)
        assert warm.l2_misses < cold.l2_misses
        assert warm.instructions < cold.instructions

    def test_warmup_ipc_higher_for_warm_phase(self):
        working_set = [i * 64 for i in range(200)]
        trace = make_trace(working_set * 2)
        cold_ipc = simulate(baseline_config(), trace).ipc
        warm_ipc = simulate(baseline_config(), trace,
                            warmup_refs=200).ipc
        assert warm_ipc > cold_ipc
