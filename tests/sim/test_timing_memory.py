"""Timing secure memory: latency relationships the figures depend on."""

import pytest

from repro.auth.policies import AuthPolicy
from repro.core.config import (
    baseline_config,
    direct_config,
    gcm_auth_config,
    mono_config,
    prediction_config,
    sha_auth_config,
    split_config,
    split_gcm_config,
)
from repro.sim.timing_memory import TimingSecureMemory


def miss(config, address=0x10000, now=1000.0, memory=None):
    memory = memory or TimingSecureMemory(config)
    return memory.read_miss(now, address), memory


class TestBaselineLatency:
    def test_uncontended_miss_latency(self):
        (timing, memory) = miss(baseline_config())
        # bus transfer (4 beats) + 200-cycle round trip
        expected = 1000.0 + memory.bus.transfer_cycles(64) + 200
        assert timing.data_ready == pytest.approx(expected)
        assert timing.auth_done == timing.data_ready

    def test_bus_contention_delays_second_miss(self):
        memory = TimingSecureMemory(baseline_config())
        first = memory.read_miss(0.0, 0x1000)
        second = memory.read_miss(0.0, 0x2000)
        assert second.data_ready > first.data_ready


class TestEncryptionLatency:
    def test_direct_adds_aes_after_arrival(self):
        base, _ = miss(baseline_config())
        direct, _ = miss(direct_config())
        assert direct.data_ready >= base.data_ready + 80

    def test_counter_hit_hides_pad_generation(self):
        """With the counter cached, the pad overlaps the fetch: only the
        XOR cycle lands after arrival."""
        memory = TimingSecureMemory(split_config())
        memory.counter_cache.fill(
            memory.scheme.counter_block_address(0x10000)
        )
        timing = memory.read_miss(1000.0, 0x10000)
        base, _ = miss(baseline_config())
        assert timing.data_ready == pytest.approx(base.data_ready + 1)

    def test_counter_miss_costs_extra(self):
        hit_memory = TimingSecureMemory(split_config())
        hit_memory.counter_cache.fill(
            hit_memory.scheme.counter_block_address(0x10000)
        )
        hit = hit_memory.read_miss(1000.0, 0x10000)
        cold, _ = miss(split_config())
        assert cold.data_ready > hit.data_ready
        assert cold == cold  # sanity

    def test_counter_half_miss_waits_without_traffic(self):
        memory = TimingSecureMemory(split_config())
        memory.read_miss(1000.0, 0x10000)
        txns = memory.bus.stats.transactions
        memory.read_miss(1001.0, 0x10040)  # same page: counter in flight
        assert memory.stats.counter_half_misses == 1
        # only the data transfer was added, not a second counter fetch
        assert memory.bus.stats.transactions == txns + 1


class TestAuthenticationLatency:
    def test_gcm_tag_lands_just_after_data(self):
        """With the chain cached, GCM costs GHASH + XOR ≈ 5 cycles."""
        memory = TimingSecureMemory(gcm_auth_config())
        memory.read_miss(1000.0, 0x10000)         # warms chain + counter
        timing = memory.read_miss(5000.0, 0x10000)
        assert timing.auth_done - timing.data_ready <= 10

    def test_sha_mac_costs_full_latency_after_data(self):
        memory = TimingSecureMemory(sha_auth_config(320))
        memory.read_miss(1000.0, 0x10000)
        timing = memory.read_miss(5000.0, 0x10000)
        assert timing.auth_done - timing.data_ready >= 320

    def test_parallel_chain_not_slower_than_sequential(self):
        par = TimingSecureMemory(gcm_auth_config(parallel_auth=True))
        seq = TimingSecureMemory(gcm_auth_config(parallel_auth=False))
        tp = par.read_miss(1000.0, 0x1F000000)  # deep cold chain
        ts = seq.read_miss(1000.0, 0x1F000000)
        assert tp.auth_done <= ts.auth_done

    def test_cold_chain_fetches_tree_levels(self):
        memory = TimingSecureMemory(gcm_auth_config())
        before = memory.bus.stats.transactions
        memory.read_miss(1000.0, 0x10000)
        # data + counter + several node levels
        assert memory.bus.stats.transactions > before + 2


class TestPrediction:
    def test_correct_prediction_is_timely_pad(self):
        memory = TimingSecureMemory(prediction_config())
        timing = memory.read_miss(1000.0, 0x10000)
        assert memory.stats.pads.timely_pads == 1
        base, _ = miss(baseline_config())
        # one extra bus beat carries the 8-byte counter, plus the XOR cycle
        extra_beat = memory.bus.cycles_per_beat
        assert timing.data_ready <= base.data_ready + extra_beat + 2

    def test_wrong_prediction_pays_pad_after_arrival(self):
        memory = TimingSecureMemory(prediction_config())
        for _ in range(10):
            memory.scheme.increment(0x10000)  # drift beyond the window
        timing = memory.read_miss(1000.0, 0x10000)
        base, _ = miss(baseline_config())
        assert timing.data_ready > base.data_ready + 80

    def test_prediction_transfers_carry_counters(self):
        memory = TimingSecureMemory(prediction_config())
        memory.read_miss(1000.0, 0x10000)
        assert memory.bus.stats.bytes_moved == 72  # 64B data + 8B counter


class TestWriteBack:
    def test_writeback_is_posted(self):
        memory = TimingSecureMemory(split_config())
        stall = memory.write_back(1000.0, 0x10000)
        assert stall <= 1000.0

    def test_writeback_consumes_bus(self):
        memory = TimingSecureMemory(baseline_config())
        before = memory.bus.stats.bytes_moved
        memory.write_back(1000.0, 0x10000)
        assert memory.bus.stats.bytes_moved == before + 64

    def test_minor_overflow_triggers_rsr(self):
        config = split_gcm_config(minor_bits=2)
        memory = TimingSecureMemory(config)
        for _ in range(4):
            memory.write_back(1000.0, 0x10000)
        assert memory.stats.reencryption.page_reencryptions == 1

    def test_mono_overflow_counted_but_free(self):
        """Paper methodology: Mono8b's full re-encryption is assumed
        instantaneous with no traffic — only counted."""
        memory = TimingSecureMemory(mono_config(8))
        for i in range(256):
            memory.write_back(float(i), 0x10000)
        assert memory.stats.reencryption.full_reencryptions == 1
        assert memory.scheme.counter_for_block(0x10000) == 1


class TestBatchedMisses:
    def test_read_misses_returns_input_order(self):
        memory = TimingSecureMemory(split_config())
        addresses = [0x30000, 0x10000, 0x20000]
        timings = memory.read_misses(1000.0, addresses)
        assert len(timings) == len(addresses)
        # input order preserved even though service order is sorted
        reference = TimingSecureMemory(split_config())
        expected_first = reference.read_miss(1000.0, 0x10000)
        assert timings[1].data_ready == pytest.approx(
            expected_first.data_ready)

    def test_same_counter_block_charged_once(self):
        """Two misses on one page: batched service shares the counter
        fetch, so it finishes no later than two independent cold misses."""
        batched = TimingSecureMemory(split_config())
        together = batched.read_misses(1000.0, [0x10000, 0x10040])
        cold_a = TimingSecureMemory(split_config()).read_miss(1000.0, 0x10000)
        cold_b = TimingSecureMemory(split_config()).read_miss(1000.0, 0x10040)
        # both requests still complete; the later one must not pay a second
        # full counter fetch on top of the first
        assert max(t.data_ready for t in together) <= (
            cold_a.data_ready + cold_b.data_ready - 1000.0)

    def test_read_misses_empty(self):
        memory = TimingSecureMemory(split_config())
        assert memory.read_misses(0.0, []) == []

    def test_read_misses_baseline_no_counters(self):
        memory = TimingSecureMemory(baseline_config())
        timings = memory.read_misses(0.0, [0x2000, 0x1000])
        assert timings[0].data_ready > 0
        assert timings[1].data_ready > 0

    def test_write_backs_returns_latest_stall(self):
        memory = TimingSecureMemory(split_config())
        stall = memory.write_backs(500.0, [0x1000, 0x1040, 0x9000])
        singles = TimingSecureMemory(split_config())
        worst = max(singles.write_back(500.0, a)
                    for a in (0x1000, 0x1040, 0x9000))
        assert stall >= 500.0
        assert stall <= max(worst, stall)  # no stall regression vs scalar

    def test_write_backs_empty(self):
        memory = TimingSecureMemory(split_config())
        assert memory.write_backs(123.0, []) == 123.0
