"""Differential lockdown: trace-file replay must equal live generation.

Recording a workload generator to an ``.rtrc`` container and replaying
the file is required to be *bit-for-bit* equivalent to running the
generator live — same final cycles, same stat counters, same metrics
snapshot, same semantic memory state, same per-miss ``PathTime``/event
streams.  Anything less would make recorded-trace sweep results
incomparable with generated ones.

Covered here:

* every registered preset × both sim engines on one recorded SPEC trace,
* a scenario-library recording (db-page-cache) on a representative
  preset pair,
* the tracer differential (PathTime/event streams) on authenticated
  presets,
* the end-to-end ``Experiment`` path: running ``trace:<path>`` equals
  running the generator by name, and the result's app id is the
  path-independent ``trace-<fingerprint>``.
"""

import pytest

from repro.api import Experiment, get_config
from repro.core.config import PRESETS
from repro.obs.tracer import RecordingTracer
from repro.sim.processor import Processor
from repro.workloads import (
    PROFILES,
    generate_trace,
    load_trace,
    scenario_trace,
    trace_fingerprint,
    write_trace,
)

PRESET_NAMES = sorted(PRESETS)
ENGINES = ("scalar", "batched")
REFS = 1500

TRACED_PRESETS = [s for s in ("split+gcm", "mono+sha", "secddr", "scattered")
                  if s in PRESETS]


def observables(processor, result):
    """Everything an engine is held accountable for, as one comparable."""
    return (
        result.cycles, result.instructions,
        result.l1_hits, result.l1_misses,
        result.l2_hits, result.l2_misses, result.writebacks,
        processor.metrics.snapshot(),
        processor.state_dict(),
    )


def run_engine(preset, trace, engine, warmup=0, tracer=None):
    p = Processor(get_config(preset, sim_engine=engine), tracer=tracer)
    r = p.run(trace, warmup_refs=warmup)
    return observables(p, r)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One live trace and its round-tripped recording, as a pair."""
    live = generate_trace(PROFILES["mcf"], REFS, seed=13)
    path = tmp_path_factory.mktemp("traces") / "mcf.rtrc"
    write_trace(path, live)
    return live, load_trace(path)


@pytest.fixture(scope="module")
def recorded_scenario(tmp_path_factory):
    live = scenario_trace("db-page-cache", num_refs=REFS, seed=21)
    path = tmp_path_factory.mktemp("traces") / "db.rtrc"
    write_trace(path, live)
    return live, load_trace(path)


def test_roundtrip_streams_identical(recorded):
    live, replayed = recorded
    assert replayed.addrs == live.addrs
    assert replayed.gaps == live.gaps
    assert replayed.writes == live.writes
    assert replayed.name == live.name


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("preset", PRESET_NAMES)
def test_replay_equals_live(preset, engine, recorded):
    live, replayed = recorded
    assert run_engine(preset, replayed, engine) == \
        run_engine(preset, live, engine)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("preset", ["baseline", "split+gcm"])
def test_scenario_replay_equals_live(preset, engine, recorded_scenario):
    live, replayed = recorded_scenario
    assert run_engine(preset, replayed, engine) == \
        run_engine(preset, live, engine)


@pytest.mark.parametrize("preset", TRACED_PRESETS)
def test_tracer_streams_identical(preset, recorded):
    """Per-miss PathTime records and every trace event match exactly."""
    live, replayed = recorded
    streams = {}
    for label, trace in (("live", live), ("replayed", replayed)):
        tracer = RecordingTracer()
        run_engine(preset, trace, "auto", tracer=tracer)
        streams[label] = (
            [repr(vars(m)) for m in tracer.misses],
            [repr(vars(e)) for e in tracer.events],
        )
    assert streams["live"] == streams["replayed"]


def test_experiment_trace_workload_equals_generator(tmp_path):
    """The full api path: trace:<path> == named generator, same numbers."""
    from repro.workloads import resolve_trace

    live = resolve_trace("gcc", 1200, seed=1234)
    path = tmp_path / "gcc.rtrc"
    write_trace(path, live)

    by_name = Experiment("split+gcm", "gcc", refs=1200).run()
    by_file = Experiment("split+gcm", f"trace:{path}", refs=1200).run()
    assert by_file.cycles == by_name.cycles
    assert by_file.instructions == by_name.instructions
    assert by_file.l2_misses == by_name.l2_misses
    assert by_file.app == f"trace-{trace_fingerprint(path)}"

    bare = Experiment("split+gcm", str(path), refs=1200).run()
    assert bare.cycles == by_name.cycles


def test_experiment_trace_slice_matches_prefix(tmp_path):
    """Replaying fewer refs than recorded uses the exact prefix."""
    from repro.workloads import resolve_trace

    live = resolve_trace("swim", 1000, seed=1234)
    path = tmp_path / "swim.rtrc"
    write_trace(path, live)
    sliced = Experiment("split", f"trace:{path}", refs=600).run()
    prefix = Experiment("split", "swim", refs=600).run()
    assert sliced.cycles == prefix.cycles
    assert sliced.l2_misses == prefix.l2_misses
