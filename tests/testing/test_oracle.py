"""Differential-oracle tests: outcome classification and kernel checks."""

import dataclasses
import random

import pytest

from repro.testing import (
    FaultKind,
    FaultOutcome,
    generate_scenario,
    run_differential_checks,
    run_scenario,
)
from repro.testing.oracle import build_system, campaign_config
from repro.testing.schedule import Op


def _scenario(preset, seed, kind, **kwargs):
    return generate_scenario(preset, seed, fault_kind=kind, **kwargs)


class TestOutcomes:
    def test_clean_scenario_is_clean(self):
        result = run_scenario(generate_scenario("split+gcm", 11))
        assert result.outcome is FaultOutcome.CLEAN
        assert result.violation is None and result.mismatch is None

    def test_bit_flip_detected_under_authentication(self):
        result = run_scenario(_scenario("split+gcm", 3, FaultKind.BIT_FLIP))
        assert result.outcome in (FaultOutcome.DETECTED,
                                  FaultOutcome.NEUTRALIZED)

    def test_bit_flip_unprotected_without_authentication(self):
        # Find a seed where the flip actually lands on consumed data.
        for seed in range(40):
            result = run_scenario(_scenario("split", seed,
                                            FaultKind.BIT_FLIP))
            assert result.outcome in (FaultOutcome.UNPROTECTED,
                                      FaultOutcome.NEUTRALIZED,
                                      FaultOutcome.NOT_TRIGGERED)
            if result.outcome is FaultOutcome.UNPROTECTED:
                return
        pytest.fail("no seed produced an unprotected corruption")

    def test_counter_rollback_not_triggered_without_counters(self):
        config = campaign_config("xom+sha")
        if config.uses_counters:
            pytest.skip("preset grew counters; pick another")
        result = run_scenario(_scenario("xom+sha", 5,
                                        FaultKind.COUNTER_ROLLBACK))
        assert result.outcome is FaultOutcome.NOT_TRIGGERED

    def test_detected_means_integrity_violation_string(self):
        for seed in range(40):
            result = run_scenario(_scenario("split+gcm", seed,
                                            FaultKind.BIT_FLIP))
            if result.outcome is FaultOutcome.DETECTED:
                assert result.violation
                return
        pytest.fail("no seed produced a detected fault")

    def test_same_seed_replays_identically(self):
        scenario = _scenario("split+gcm", 17, FaultKind.SPLICE)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.outcome is second.outcome
        assert first.violation == second.violation
        assert first.mismatch == second.mismatch
        if first.fired is not None:
            assert first.fired.to_dict() == second.fired.to_dict()

    def test_schedule_is_preset_independent(self):
        a = generate_scenario("split+gcm", 23, fault_kind=FaultKind.REPLAY)
        b = generate_scenario("mono+sha", 23, fault_kind=FaultKind.REPLAY)
        assert a.ops == b.ops
        assert a.fault_at == b.fault_at


class TestWeakenedSystem:
    """Sabotaging the tree must surface as missed faults — this is the
    self-check that proves the oracle can catch a broken implementation."""

    def test_no_tree_misses_replay(self):
        missed = 0
        for seed in range(25):
            scenario = dataclasses.replace(
                _scenario("split+gcm", seed, FaultKind.REPLAY),
                weaken="no-tree")
            result = run_scenario(scenario)
            assert result.outcome is not FaultOutcome.DETECTED
            if result.outcome is FaultOutcome.MISSED:
                missed += 1
        assert missed > 0

    def test_no_tree_system_really_has_no_tree(self):
        scenario = dataclasses.replace(generate_scenario("split+gcm", 1),
                                       weaken="no-tree")
        system, _ = build_system(scenario, random.Random(0))
        assert system.merkle is None

    def test_unknown_weaken_mode_rejected(self):
        scenario = dataclasses.replace(generate_scenario("split+gcm", 1),
                                       weaken="bogus")
        with pytest.raises(ValueError):
            build_system(scenario, random.Random(0))


class TestColdSweepCatchesPersistentCorruption:
    def test_fault_after_last_op_still_classified(self):
        """A fault at the very end is only observable by the cold sweep."""
        base = generate_scenario("split+gcm", 9, fault_kind=FaultKind.BIT_FLIP)
        ops = tuple(op for op in base.ops if op.kind == "write")[:4]
        ops += (Op("flush"),)       # the targets must exist in DRAM
        scenario = dataclasses.replace(base, ops=ops, fault_at=len(ops))
        result = run_scenario(scenario)
        assert result.outcome in (FaultOutcome.DETECTED,
                                  FaultOutcome.NEUTRALIZED)
        assert result.ops_executed == len(ops)

    def test_storm_and_flush_ops_execute(self):
        ops = (Op("write", 0, 1), Op("storm", 64, 2, count=3), Op("flush"),
               Op("read", 0), Op("read", 64))
        scenario = dataclasses.replace(generate_scenario("split+gcm", 2),
                                       ops=ops)
        result = run_scenario(scenario)
        assert result.outcome is FaultOutcome.CLEAN


class TestDifferentialChecks:
    def test_all_pairs_agree(self):
        results = run_differential_checks(0)
        assert len(results) == 5
        for check in results:
            assert check.passed, f"{check.name}: {check.detail}"

    def test_check_names_are_stable(self):
        names = {check.name for check in run_differential_checks(1)}
        assert names == {
            "aes-table-vs-scalar",
            "ghash-table-vs-bitwise",
            "batched-vs-scalar[split+gcm]",
            "split-vs-mono64-plaintext",
            "vector-vs-table-kernels",
        }

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_vector_kernel_check_passes_seeded(self, seed):
        # Regression pin for the vector backend's oracle registration:
        # the check must exist and agree with the table kernels on the
        # seeds the fuzz harness replays.
        checks = {c.name: c for c in run_differential_checks(seed)}
        vector = checks["vector-vs-table-kernels"]
        assert vector.passed, vector.detail
