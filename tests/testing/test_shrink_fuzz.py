"""Shrinking and campaign-runner tests: minimal reproducers, determinism."""

import dataclasses
import json

import pytest

from repro.testing import (
    FaultKind,
    FaultOutcome,
    FuzzReport,
    Scenario,
    generate_scenario,
    replay_reproducer,
    run_fuzz,
    run_scenario,
    shrink_scenario,
)


def _weakened(seed, kind=FaultKind.REPLAY, preset="split+gcm"):
    return dataclasses.replace(
        generate_scenario(preset, seed, fault_kind=kind),
        weaken="no-tree")


def _find_missed(max_seeds=30):
    for seed in range(max_seeds):
        scenario = _weakened(seed)
        result = run_scenario(scenario)
        if result.outcome is FaultOutcome.MISSED:
            return scenario, result
    pytest.fail("no weakened seed produced a missed fault")


class TestShrink:
    def test_shrinks_to_small_reproducer(self):
        scenario, result = _find_missed()
        reduced, reduced_result = shrink_scenario(scenario, result)
        assert reduced_result.outcome is FaultOutcome.MISSED
        assert len(reduced.ops) <= 10
        assert len(reduced.ops) < len(scenario.ops)

    def test_shrunk_scenario_replays_from_serialized_dict(self):
        scenario, result = _find_missed()
        reduced, reduced_result = shrink_scenario(scenario, result)
        wire = json.dumps(reduced.to_dict())        # survives JSON
        replayed = run_scenario(Scenario.from_dict(json.loads(wire)))
        assert replayed.outcome is reduced_result.outcome
        assert replayed.mismatch == reduced_result.mismatch

    def test_concretization_pins_fired_target(self):
        scenario, result = _find_missed()
        reduced, _ = shrink_scenario(scenario, result)
        assert reduced.fault.address == result.fired.address

    def test_shrink_preserves_outcome_not_just_failure(self):
        """The minimizer must never swap one failing outcome for another."""
        scenario, result = _find_missed()
        reduced, reduced_result = shrink_scenario(scenario, result)
        assert reduced_result.outcome is result.outcome


class TestFuzzRunner:
    def test_smoke_report_is_green(self):
        report = run_fuzz(campaigns=2, seed=0,
                          presets=["split+gcm", "split", "mono+sha"])
        assert report.ok
        assert report.missed == 0 and report.spurious == 0
        assert report.scenarios_run == 2 * 3
        assert all(check["passed"] for check in report.differential)

    def test_report_counts_are_consistent(self):
        report = run_fuzz(campaigns=3, seed=1, presets=["split+gcm"])
        accounted = (report.injected + report.not_triggered
                     + report.spurious)
        assert accounted == report.scenarios_run
        assert report.injected == (report.detected + report.neutralized
                                   + report.unprotected + report.missed)

    def test_same_seed_same_report(self):
        first = run_fuzz(campaigns=2, seed=4, presets=["split+gcm"])
        second = run_fuzz(campaigns=2, seed=4, presets=["split+gcm"])
        assert first.to_dict() == second.to_dict()

    def test_weakened_run_embeds_replayable_reproducers(self):
        report = run_fuzz(campaigns=4, seed=0, presets=["split+gcm"],
                          weaken="no-tree")
        assert not report.ok
        assert report.missed > 0
        assert report.reproducers
        for repro in report.reproducers:
            assert repro["ops"] <= 10
            replayed = replay_reproducer(repro["scenario"])
            assert replayed.outcome.value == repro["outcome"]

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            run_fuzz(campaigns=1, presets=["no-such-preset"])

    def test_report_json_round_trip(self):
        report = run_fuzz(campaigns=1, seed=2, presets=["split+gcm"])
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is True
        assert data["faults"]["missed"] == 0

    def test_mac_bits_override_reaches_systems(self):
        report = run_fuzz(campaigns=1, seed=0, presets=["split+gcm"],
                          mac_bits=32)
        assert report.ok

    def test_ok_is_false_on_diverged_differential(self):
        report = FuzzReport(seed=0, campaigns=0, presets=[], weaken=None)
        report.differential = [{"name": "x", "passed": False, "detail": ""}]
        assert not report.ok
