"""Device, oracle, and rotation coverage for the relocate/cold-boot kinds.

Three layers:

* the :class:`AdversarialDRAM` application semantics — relocation is a
  one-way copy (source untouched), cold-boot decay is seeded, global,
  asymmetric (set bits only), and never a silent no-op;
* the oracle verdicts — both kinds are detected by every
  integrity-promising preset and end silently on the rest;
* the rotation/serialization contract — new kinds are appended (CI
  campaign-index pins keep their meaning), ``FaultSpec.decay`` and the
  scenario ``workload``/``workload_id`` fields survive the JSON
  round-trip, and pre-existing reproducer dicts (without the new
  fields) still load.
"""

import random

import pytest

from repro.testing import AdversarialDRAM, FaultKind, FaultSpec
from repro.testing.fuzz import FAULT_ROTATION, FAULT_ROTATION_RECOVERY
from repro.testing.oracle import FaultOutcome, run_scenario
from repro.testing.schedule import Scenario, generate_scenario


def _device(rng_seed=0, size=1 << 20):
    device = AdversarialDRAM(size_bytes=size, block_size=64,
                             latency_cycles=1,
                             rng=random.Random(rng_seed))
    device.set_layout(data_end=size // 2, code_base=3 * size // 4,
                      total=size)
    return device


class TestRelocateDevice:
    def test_one_way_copy_keeps_source(self):
        device = _device()
        device.write_block(0, b"\x11" * 64)
        device.write_block(64, b"\x22" * 64)
        event = device.fire_now(FaultSpec(
            kind=FaultKind.RELOCATE, address=64, partner=0))
        assert event is not None
        assert device.peek(64) == b"\x11" * 64, "target takes source image"
        assert device.peek(0) == b"\x11" * 64, "source keeps its image"
        assert event.partner == 0

    def test_identical_images_skip(self):
        device = _device()
        device.write_block(0, b"\x33" * 64)
        device.write_block(64, b"\x33" * 64)
        assert device.fire_now(FaultSpec(
            kind=FaultKind.RELOCATE, address=64, partner=0)) is None
        assert device.skipped

    def test_degenerate_pair_skips(self):
        device = _device()
        device.write_block(0, b"\x11" * 64)
        assert device.fire_now(FaultSpec(
            kind=FaultKind.RELOCATE, address=0, partner=0)) is None


class TestColdBootDevice:
    def test_decay_is_global_asymmetric_and_seeded(self):
        images = {0: b"\xFF" * 64, 64: b"\x0F" * 64, 256: b"\xF0" * 64}

        def decayed(seed):
            device = _device(rng_seed=seed)
            for address, image in images.items():
                device.write_block(address, image)
            device.fire_now(FaultSpec(kind=FaultKind.COLD_BOOT, decay=0.1))
            return {a: device.peek(a) for a in images}

        a, b, c = decayed(1), decayed(1), decayed(2)
        assert a == b, "same seed must replay bit-for-bit"
        assert a != c, "different seed must decay differently"
        for address, image in images.items():
            # asymmetric: decay only ever clears bits, never sets them
            for before, after in zip(images[address], a[address]):
                assert after & ~before == 0

    def test_zero_effective_decay_still_flips_one_bit(self):
        device = _device()
        device.write_block(0, b"\x01" + b"\x00" * 63)
        event = device.fire_now(FaultSpec(
            kind=FaultKind.COLD_BOOT, decay=1e-12))
        assert event is not None
        assert device.peek(0) == b"\x00" * 64

    def test_all_zero_store_skips(self):
        device = _device()
        device.write_block(0, b"\x00" * 64)
        assert device.fire_now(FaultSpec(
            kind=FaultKind.COLD_BOOT, decay=0.5)) is None
        assert device.skipped


class TestOracleVerdicts:
    @pytest.mark.parametrize("kind", (FaultKind.RELOCATE,
                                      FaultKind.COLD_BOOT))
    @pytest.mark.parametrize("preset,promises", (
        ("split+gcm", True), ("secddr", True), ("scattered", True),
        ("split", False), ("baseline", False),
    ))
    def test_detected_iff_integrity_promised(self, kind, preset, promises):
        outcomes = set()
        for seed in range(6):
            scenario = generate_scenario(preset, 9000 + seed,
                                         fault_kind=kind)
            outcomes.add(run_scenario(scenario).outcome)
        assert FaultOutcome.MISSED not in outcomes
        assert FaultOutcome.SPURIOUS not in outcomes
        if promises:
            assert FaultOutcome.DETECTED in outcomes
            assert FaultOutcome.UNPROTECTED not in outcomes
        else:
            assert FaultOutcome.DETECTED not in outcomes

    def test_cold_boot_under_recovery_policy(self):
        scenario = generate_scenario("split+gcm", 77,
                                     fault_kind=FaultKind.COLD_BOOT,
                                     recovery="halt")
        result = run_scenario(scenario)
        assert result.outcome in (FaultOutcome.DETECTED,
                                  FaultOutcome.NOT_TRIGGERED)


class TestRotationAndSerialization:
    def test_new_kinds_appended_not_inserted(self):
        """CI campaign-index pins rely on the historical prefix order."""
        assert FAULT_ROTATION[:5] == (
            FaultKind.BIT_FLIP, FaultKind.REPLAY, FaultKind.SPLICE,
            FaultKind.COUNTER_ROLLBACK, FaultKind.NODE_CORRUPT)
        assert FAULT_ROTATION[5:] == (FaultKind.RELOCATE,
                                      FaultKind.COLD_BOOT)
        assert FAULT_ROTATION_RECOVERY[-2:] == (FaultKind.TRANSIENT_FLIP,
                                                FaultKind.COLD_BOOT)

    def test_fault_spec_decay_roundtrip(self):
        spec = FaultSpec(kind=FaultKind.COLD_BOOT, decay=0.05)
        back = FaultSpec.from_dict(spec.to_dict())
        assert back.decay == 0.05 and back.kind is FaultKind.COLD_BOOT

    def test_fault_spec_legacy_dict_defaults_decay(self):
        data = FaultSpec(kind=FaultKind.BIT_FLIP).to_dict()
        del data["decay"]
        assert FaultSpec.from_dict(data).decay == 0.02

    def test_scenario_workload_fields_roundtrip(self):
        scenario = generate_scenario(
            "split+gcm", 11, fault_kind=FaultKind.RELOCATE,
            workload="ml-weight-stream")
        back = Scenario.from_dict(scenario.to_dict())
        assert back == scenario
        assert back.workload == "ml-weight-stream"
        assert back.workload_id == "ml-weight-stream"

    def test_scenario_legacy_dict_loads(self):
        scenario = generate_scenario("split", 12,
                                     fault_kind=FaultKind.BIT_FLIP)
        data = scenario.to_dict()
        del data["workload"], data["workload_id"]
        back = Scenario.from_dict(data)
        assert back.workload is None and back.workload_id is None
        assert back.ops == scenario.ops

    def test_workload_does_not_change_op_stream_shape(self):
        """Burned draws keep the op mix aligned with the legacy schedule."""
        legacy = generate_scenario("split+gcm", 13,
                                   fault_kind=FaultKind.SPLICE)
        shaped = generate_scenario("split+gcm", 13,
                                   fault_kind=FaultKind.SPLICE,
                                   workload="db-page-cache")
        assert [op.kind for op in legacy.ops] == \
            [op.kind for op in shaped.ops]
        assert legacy.fault_at == shaped.fault_at
        assert legacy.fault == shaped.fault
