"""Unit tests for the adversarial DRAM / bus fault-injection devices."""

import random

import pytest

from repro.core import SecureMemorySystem, split_gcm_config
from repro.memory.bus import MemoryBus
from repro.testing import (
    AdversarialBus,
    AdversarialDRAM,
    FaultKind,
    FaultSpec,
    Trigger,
)


def _device(rng_seed=0, size=1 << 20):
    device = AdversarialDRAM(size_bytes=size, block_size=64,
                             latency_cycles=1,
                             rng=random.Random(rng_seed))
    device.set_layout(data_end=size // 2, code_base=3 * size // 4,
                      total=size)
    return device


class TestTriggers:
    def test_write_trigger_fires_post_eviction(self):
        """kind="write" is the post-write-back hook: the stored image is
        already in DRAM when the fault mutates it."""
        device = _device()
        device.arm(FaultSpec(
            kind=FaultKind.BIT_FLIP,
            trigger=Trigger(count=1, kind="write", region="data"),
        ))
        device.write_block(0, b"\xAA" * 64)
        assert len(device.events) == 1
        assert device.read_block(0) != b"\xAA" * 64

    def test_nth_access_trigger(self):
        device = _device()
        device.write_block(0, b"\x01" * 64)
        device.arm(FaultSpec(
            kind=FaultKind.BIT_FLIP, address=0,
            trigger=Trigger(count=3, kind="read", region="data"),
        ))
        device.read_block(0)
        device.read_block(0)
        assert not device.events
        device.read_block(0)
        assert len(device.events) == 1

    def test_address_and_region_filters(self):
        device = _device()
        device.write_block(0, b"\x01" * 64)
        device.write_block(64, b"\x02" * 64)
        device.arm(FaultSpec(
            kind=FaultKind.BIT_FLIP, address=64,
            trigger=Trigger(count=1, kind="read", address=64),
        ))
        device.read_block(0)          # filtered out
        assert not device.events
        device.read_block(64)
        assert device.events[0].address == 64

    def test_triggers_are_one_shot(self):
        device = _device()
        device.write_block(0, b"\x01" * 64)
        device.arm(FaultSpec(
            kind=FaultKind.BIT_FLIP, address=0,
            trigger=Trigger(count=1, kind="read"),
        ))
        for _ in range(4):
            device.read_block(0)
        assert len(device.events) == 1

    def test_arm_requires_trigger(self):
        device = _device()
        with pytest.raises(ValueError):
            device.arm(FaultSpec(kind=FaultKind.BIT_FLIP))


class TestFaultApplication:
    def test_bit_flip_deterministic_from_seed(self):
        images = []
        for _ in range(2):
            device = _device(rng_seed=7)
            device.write_block(0, bytes(64))
            device.fire_now(FaultSpec(kind=FaultKind.BIT_FLIP,
                                      address=0, bits=3))
            images.append(device.read_block(0))
        assert images[0] == images[1]
        assert sum(bin(b).count("1") for b in images[0]) == 3

    def test_splice_swaps_two_images(self):
        device = _device()
        device.write_block(0, b"\x0A" * 64)
        device.write_block(64, b"\x0B" * 64)
        event = device.fire_now(FaultSpec(kind=FaultKind.SPLICE,
                                          address=0, partner=64))
        assert event is not None
        assert device.read_block(0) == b"\x0B" * 64
        assert device.read_block(64) == b"\x0A" * 64

    def test_replay_restores_first_version(self):
        device = _device()
        device.write_block(0, b"\x01" * 64)
        device.write_block(0, b"\x02" * 64)
        event = device.fire_now(FaultSpec(kind=FaultKind.REPLAY, address=0))
        assert event is not None and event.replayed_version == 0
        assert device.read_block(0) == b"\x01" * 64

    def test_replay_without_stale_version_is_skipped(self):
        device = _device()
        device.write_block(0, b"\x01" * 64)
        event = device.fire_now(FaultSpec(kind=FaultKind.REPLAY))
        assert event is None
        assert device.skipped

    def test_counter_rollback_targets_counter_region(self):
        device = _device()
        counter_lo, _ = device._regions["counter"]
        device.write_block(0, b"\x0D" * 64)              # data region
        device.write_block(0, b"\x0E" * 64)
        device.write_block(counter_lo, b"\x01" * 64)
        device.write_block(counter_lo, b"\x02" * 64)
        event = device.fire_now(FaultSpec(kind=FaultKind.COUNTER_ROLLBACK))
        assert event is not None
        assert event.address == counter_lo
        assert device.read_block(counter_lo) == b"\x01" * 64
        assert device.read_block(0) == b"\x0E" * 64      # data untouched

    def test_node_corrupt_targets_code_region(self):
        device = _device()
        code_lo, _ = device._regions["code"]
        device.write_block(code_lo, b"\x33" * 64)
        event = device.fire_now(FaultSpec(kind=FaultKind.NODE_CORRUPT))
        assert event is not None
        assert event.address == code_lo
        assert device.read_block(code_lo) != b"\x33" * 64


class TestWrapAndSerialization:
    def test_wrap_adopts_live_system(self):
        system = SecureMemorySystem(split_gcm_config(),
                                    protected_bytes=16 * 1024,
                                    l2_size=1024, l2_assoc=2)
        system.write_block(0, b"\x42" * 64)
        device = AdversarialDRAM.wrap(system, rng=random.Random(0))
        assert system.dram is device
        assert system.merkle.dram is device
        assert system.read_block(0) == b"\x42" * 64

    def test_spec_round_trips_through_dict(self):
        spec = FaultSpec(kind=FaultKind.SPLICE, address=128, partner=256,
                         bits=2, trigger=Trigger(count=4, kind="write",
                                                 region="counter"))
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec


class TestAdversarialBus:
    def test_trace_records_every_transaction(self):
        bus = AdversarialBus()
        bus.schedule(0.0, 64)
        bus.schedule(10.0, 128)
        assert [t.num_bytes for t in bus.trace] == [64, 128]

    def test_jamming_delays_legitimate_traffic(self):
        clean = MemoryBus()
        jammed = AdversarialBus(jam_every=1, jam_bytes=64)
        _, clean_end = clean.schedule(0.0, 64)
        _, jammed_end = jammed.schedule(0.0, 64)
        assert jammed_end > clean_end
        assert jammed.jams == 1
        assert [t.jammed for t in jammed.trace] == [True, False]

    def test_same_seed_same_trace(self):
        def run():
            bus = AdversarialBus(jam_every=3)
            rng = random.Random(5)
            for _ in range(20):
                bus.schedule(rng.random() * 100, rng.choice((64, 128)))
            return [(t.start, t.end, t.jammed) for t in bus.trace]

        assert run() == run()
