"""Differential fuzz oracle over the new registry backends.

No oracle or harness code special-cases these presets: they are exercised
here exactly as any registered scheme would be, which is the registry's
drop-in guarantee.
"""

from repro.testing.fuzz import FAULT_ROTATION, run_fuzz


class TestNewBackendFuzz:
    def test_full_fault_taxonomy_smoke(self):
        """One campaign per fault kind against both new presets: nothing
        missed, nothing spurious, every kernel differential clean."""
        report = run_fuzz(campaigns=len(FAULT_ROTATION), seed=0,
                          presets=["secddr", "scattered"], shrink=False)
        assert report.ok, report.to_dict()
        assert report.injected > 0
        assert report.missed == 0 and report.spurious == 0
        assert set(report.per_preset) == {"secddr", "scattered"}

    def test_secddr_detects_persistent_faults(self):
        report = run_fuzz(campaigns=3, seed=7, presets=["secddr"],
                          shrink=False)
        assert report.ok
        assert report.detected + report.neutralized == report.injected

    def test_scattered_detects_persistent_faults(self):
        report = run_fuzz(campaigns=3, seed=7, presets=["scattered"],
                          shrink=False)
        assert report.ok
        assert report.detected + report.neutralized == report.injected
