"""Scheme registry contract: frozen specs, final names, capability checks."""

import dataclasses

import pytest

from repro import api
from repro.core.config import PRESETS
from repro.schemes import (
    BUILTIN_SCHEMES,
    KINDS,
    REGISTRY,
    ComponentSpec,
    SchemeComposition,
    SchemeRegistry,
    build_registry,
    preset_configs,
)


def fresh_registry():
    return build_registry()


class TestFrozenContract:
    def test_component_spec_is_frozen(self):
        spec = REGISTRY.component("codec", "aes-ctr")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.name = "evil"

    def test_composition_is_frozen(self):
        comp = REGISTRY.scheme("split+gcm")
        with pytest.raises(dataclasses.FrozenInstanceError):
            comp.mac = "none"

    def test_specs_and_compositions_hashable(self):
        assert len({REGISTRY.component(k, n)
                    for comp in BUILTIN_SCHEMES
                    for k, n in comp.component_names()}) > 0
        assert len(set(BUILTIN_SCHEMES)) == len(BUILTIN_SCHEMES)

    def test_resolved_config_is_frozen(self):
        config = REGISTRY.resolve("secddr")
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.mac_bits = 8

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            ComponentSpec(kind="flux-capacitor", name="x", summary="")


class TestNameFinality:
    def test_reregistering_component_raises(self):
        registry = fresh_registry()
        with pytest.raises(ValueError):
            registry.register_component(
                ComponentSpec(kind="codec", name="aes-ctr", summary="dupe"))

    def test_reregistering_scheme_raises(self):
        registry = fresh_registry()
        with pytest.raises(ValueError):
            registry.register_scheme(REGISTRY.scheme("split+gcm"))


class TestCapabilityContract:
    def test_unmet_requirement_rejected(self):
        registry = SchemeRegistry()
        registry.register_component(ComponentSpec(
            kind="codec", name="ctr", summary="", requires=("counters",)))
        registry.register_component(ComponentSpec(
            kind="counter", name="none", summary=""))
        registry.register_component(ComponentSpec(
            kind="mac", name="none", summary=""))
        registry.register_component(ComponentSpec(
            kind="integrity", name="none", summary=""))
        with pytest.raises(ValueError, match="requires"):
            registry.register_scheme(SchemeComposition(
                name="broken", summary="", codec="ctr", counter="none",
                mac="none", integrity="none"))

    def test_unknown_component_rejected(self):
        registry = fresh_registry()
        with pytest.raises(KeyError):
            registry.register_scheme(SchemeComposition(
                name="ghost", summary="", codec="no-such-codec",
                counter="split", mac="gcm", integrity="tree"))

    def test_every_builtin_passes_the_contract(self):
        registry = SchemeRegistry()
        for spec in REGISTRY.components():
            registry.register_component(spec)
        for comp in BUILTIN_SCHEMES:
            registry.register_scheme(comp)


class TestResolution:
    def test_presets_are_registry_views(self):
        assert set(PRESETS) == set(REGISTRY.scheme_names())
        for name, config in preset_configs().items():
            assert PRESETS[name] == config

    def test_resolve_matches_presets_fieldwise(self):
        for name in REGISTRY.scheme_names():
            assert REGISTRY.resolve(name) == PRESETS[name]

    def test_unknown_scheme_suggests(self):
        with pytest.raises(KeyError, match="split\\+gcm"):
            REGISTRY.scheme("split+gmc")

    def test_every_kind_resolved_in_order(self):
        comp = REGISTRY.scheme("scattered")
        assert tuple(kind for kind, _ in comp.component_names()) == KINDS


class TestApiSurface:
    def test_list_schemes_covers_presets(self):
        infos = api.list_schemes()
        assert [info.name for info in infos] == list(PRESETS)
        for info in infos:
            assert isinstance(info, api.SchemeInfo)
            assert len(info.components) == len(KINDS)

    def test_describe_scheme_capabilities(self):
        info = api.describe_scheme("secddr")
        assert "replay-protection" in info.capabilities
        assert "constant-time-verify" in info.capabilities
        assert info.integrity == "secddr"
        scattered = api.describe_scheme("scattered")
        assert "scattering" in scattered.capabilities
        assert scattered.encryption == "shares"

    def test_scheme_info_to_dict_json_native(self):
        import json
        payload = api.describe_scheme("split+gcm").to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_get_config_preset_kwarg(self):
        assert api.get_config(preset="secddr") == api.get_config("secddr")

    def test_get_config_exactly_one_label(self):
        with pytest.raises(TypeError):
            api.get_config()
        with pytest.raises(TypeError):
            api.get_config("split+gcm", preset="secddr")
