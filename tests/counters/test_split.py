"""Split counters: geometry, overflow, serialization, RSR interplay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.counters.base import OverflowAction
from repro.counters.split import SplitCounterScheme


class TestGeometry:
    def test_default_packing_is_one_byte_per_block(self):
        """64-bit major + 64 x 7-bit minors = exactly one 64-byte block."""
        scheme = SplitCounterScheme()
        assert scheme.blocks_per_page == 64
        assert scheme.page_size == 4096
        assert scheme.bits_per_block == 8
        assert scheme.storage_overhead() == pytest.approx(1 / 64)

    def test_32_byte_block_variant(self):
        """The paper's other example: 32B blocks, 6-bit minors, 1KB pages."""
        scheme = SplitCounterScheme(block_size=32, minor_bits=6)
        assert scheme.page_size == 1024
        assert scheme.blocks_per_page == 32

    def test_page_of(self):
        scheme = SplitCounterScheme()
        assert scheme.page_of(0) == 0
        assert scheme.page_of(4095) == 0
        assert scheme.page_of(4096) == 1

    def test_blocks_of_page(self):
        scheme = SplitCounterScheme()
        blocks = scheme.blocks_of_page(2)
        assert len(blocks) == 64
        assert blocks[0] == 8192
        assert blocks[-1] == 8192 + 63 * 64

    def test_counter_block_is_page(self):
        scheme = SplitCounterScheme()
        assert scheme.counter_block_address(4096 + 640) == 1
        assert scheme.data_blocks_per_counter_block == 64

    def test_rejects_bad_minor_bits(self):
        with pytest.raises(ValueError):
            SplitCounterScheme(minor_bits=0)


class TestCounterValues:
    def test_initial_counter_is_zero(self):
        assert SplitCounterScheme().counter_for_block(0) == 0

    def test_increment_concatenates(self):
        scheme = SplitCounterScheme()
        result = scheme.increment(0)
        assert result.counter == 1  # major 0 << 7 | minor 1
        assert result.action is OverflowAction.NONE

    def test_counter_includes_major(self):
        scheme = SplitCounterScheme(minor_bits=7)
        scheme.begin_page_reencryption(0)  # major 0 -> 1
        scheme.reset_minor(0)
        result = scheme.increment(0)
        assert result.counter == (1 << 7) | 1

    def test_counter_with_major(self):
        scheme = SplitCounterScheme(minor_bits=7)
        scheme.increment(64)
        assert scheme.counter_with_major(64, 5) == (5 << 7) | 1

    def test_blocks_have_independent_minors(self):
        scheme = SplitCounterScheme()
        scheme.increment(0)
        scheme.increment(0)
        scheme.increment(64)
        assert scheme.minor_counter(0) == 2
        assert scheme.minor_counter(64) == 1


class TestOverflow:
    def test_minor_overflow_triggers_page_reencryption(self):
        scheme = SplitCounterScheme(minor_bits=2)  # overflows after 3
        for _ in range(3):
            assert scheme.increment(0).action is OverflowAction.NONE
        result = scheme.increment(0)
        assert result.action is OverflowAction.PAGE_REENCRYPTION
        assert result.page_address == 0
        assert scheme.stats.minor_overflows == 1

    def test_overflow_bumps_major_and_sets_minor_one(self):
        scheme = SplitCounterScheme(minor_bits=2)
        for _ in range(4):
            result = scheme.increment(0)
        assert scheme.major_counter(0) == 1
        assert scheme.minor_counter(0) == 1
        assert result.counter == (1 << 2) | 1

    def test_overflow_preserves_other_minors(self):
        """Other blocks keep their old minors until the RSR resets them —
        they are still needed to decrypt under the old major."""
        scheme = SplitCounterScheme(minor_bits=2)
        scheme.increment(64)
        scheme.increment(64)
        for _ in range(4):
            scheme.increment(0)
        assert scheme.minor_counter(64) == 2

    def test_begin_page_reencryption_returns_old_major(self):
        scheme = SplitCounterScheme()
        assert scheme.begin_page_reencryption(3) == 0
        assert scheme.begin_page_reencryption(3) == 1
        assert scheme.major_counter(3) == 2

    def test_reset_minor(self):
        scheme = SplitCounterScheme()
        scheme.increment(0)
        scheme.reset_minor(0)
        assert scheme.minor_counter(0) == 0

    def test_seed_uniqueness_across_overflow(self):
        """No counter value may ever repeat for one block — the core
        counter-mode security requirement across a page re-encryption."""
        scheme = SplitCounterScheme(minor_bits=2)
        seen = set()
        for _ in range(20):
            result = scheme.increment(0)
            assert result.counter not in seen
            seen.add(result.counter)


class TestSerialization:
    @settings(max_examples=20)
    @given(increments=st.lists(st.integers(min_value=0, max_value=63),
                               max_size=150))
    def test_encode_decode_roundtrip(self, increments):
        scheme = SplitCounterScheme(minor_bits=7)
        for block_index in increments:
            scheme.increment(block_index * 64)
        image = scheme.encode_counter_block(0)
        assert len(image) == 64

        fresh = SplitCounterScheme(minor_bits=7)
        fresh.decode_counter_block(0, image)
        assert fresh.major_counter(0) == scheme.major_counter(0)
        for block_index in range(64):
            address = block_index * 64
            assert (fresh.minor_counter(address)
                    == scheme.minor_counter(address))

    def test_decode_clears_stale_entries(self):
        scheme = SplitCounterScheme()
        scheme.increment(0)
        scheme.decode_counter_block(0, bytes(64))
        assert scheme.minor_counter(0) == 0

    def test_rollback_image_restores_old_values(self):
        """The counter-replay attack surface: decoding an old image must
        faithfully restore the old (smaller) counter."""
        scheme = SplitCounterScheme()
        scheme.increment(0)
        old_image = scheme.encode_counter_block(0)
        scheme.increment(0)
        scheme.decode_counter_block(0, old_image)
        assert scheme.minor_counter(0) == 1
