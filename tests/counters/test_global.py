"""Global counter scheme: system-wide advance and snapshot storage."""

import pytest

from repro.counters.base import OverflowAction
from repro.counters.global_ctr import GlobalCounterScheme


class TestAdvance:
    def test_advances_on_any_block(self):
        scheme = GlobalCounterScheme(32)
        scheme.increment(0)
        scheme.increment(64)
        scheme.increment(128)
        assert scheme.global_counter == 3

    def test_snapshots_stored_per_block(self):
        scheme = GlobalCounterScheme(32)
        scheme.increment(0)     # global=1
        scheme.increment(64)    # global=2
        scheme.increment(0)     # global=3
        assert scheme.counter_for_block(0) == 3
        assert scheme.counter_for_block(64) == 2

    def test_values_never_repeat_across_blocks(self):
        """The global counter's security advantage (section 6.1): every
        write-back gets a fresh value, so counter replay cannot force
        pad reuse even without counter authentication."""
        scheme = GlobalCounterScheme(32)
        seen = set()
        for i in range(50):
            result = scheme.increment((i % 5) * 64)
            assert result.counter not in seen
            seen.add(result.counter)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            GlobalCounterScheme(16)


class TestOverflow:
    def test_wrap_requests_full_reencryption(self):
        scheme = GlobalCounterScheme(32)
        scheme.global_counter = (1 << 32) - 1
        result = scheme.increment(0)
        assert result.action is OverflowAction.FULL_REENCRYPTION
        assert scheme.stats.overflows == 1

    def test_reset(self):
        scheme = GlobalCounterScheme(32)
        scheme.increment(0)
        scheme.reset_all_counters()
        assert scheme.global_counter == 0
        assert scheme.counter_for_block(0) == 0


class TestSerialization:
    def test_roundtrip(self):
        scheme = GlobalCounterScheme(32)  # 16 snapshots per counter block
        for i in range(16):
            scheme.increment(i * 64)
        image = scheme.encode_counter_block(0)
        fresh = GlobalCounterScheme(32)
        fresh.decode_counter_block(0, image)
        for i in range(16):
            assert fresh.counter_for_block(i * 64) == i + 1
