"""Monolithic per-block counters and their full-re-encryption overflow."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.counters.base import OverflowAction
from repro.counters.monolithic import MonolithicCounterScheme


class TestBasics:
    @pytest.mark.parametrize("bits,per_block", [(8, 64), (16, 32),
                                                (32, 16), (64, 8)])
    def test_layout(self, bits, per_block):
        scheme = MonolithicCounterScheme(bits)
        assert scheme.data_blocks_per_counter_block == per_block
        assert scheme.bits_per_block == bits
        assert scheme.name == f"mono{bits}b"

    def test_rejects_odd_widths(self):
        with pytest.raises(ValueError):
            MonolithicCounterScheme(12)

    def test_increment_sequence(self):
        scheme = MonolithicCounterScheme(8)
        for expected in range(1, 5):
            assert scheme.increment(0).counter == expected
        assert scheme.counter_for_block(0) == 4

    def test_counter_block_mapping(self):
        scheme = MonolithicCounterScheme(64)  # 8 counters per block
        assert scheme.counter_block_address(0) == 0
        assert scheme.counter_block_address(7 * 64) == 0
        assert scheme.counter_block_address(8 * 64) == 1


class TestOverflow:
    def test_wrap_requests_full_reencryption(self):
        scheme = MonolithicCounterScheme(8)
        for _ in range(255):
            assert scheme.increment(0).action is OverflowAction.NONE
        result = scheme.increment(0)
        assert result.action is OverflowAction.FULL_REENCRYPTION
        assert result.counter == 1
        assert scheme.stats.overflows == 1

    def test_counters_survive_until_caller_resets(self):
        """The caller must decrypt everything under the old counters first,
        so the wrap itself must not clear state."""
        scheme = MonolithicCounterScheme(8)
        scheme.increment(64)
        for _ in range(256):
            scheme.increment(0)
        assert scheme.counter_for_block(64) == 1  # still intact

    def test_reset_and_set(self):
        scheme = MonolithicCounterScheme(8)
        scheme.increment(0)
        scheme.reset_all_counters()
        assert scheme.counter_for_block(0) == 0
        scheme.set_counter(0, 7)
        assert scheme.counter_for_block(0) == 7
        scheme.set_counter(0, 0)
        assert scheme.counter_for_block(0) == 0

    def test_fastest_counter(self):
        scheme = MonolithicCounterScheme(16)
        scheme.increment(0)
        for _ in range(5):
            scheme.increment(64)
        assert scheme.fastest_counter() == 5


class TestSerialization:
    @pytest.mark.parametrize("bits", [8, 16, 32, 64])
    def test_roundtrip(self, bits):
        scheme = MonolithicCounterScheme(bits)
        per = scheme.data_blocks_per_counter_block
        for i in range(per):
            for _ in range(i % 5):
                scheme.increment(i * 64)
        image = scheme.encode_counter_block(0)
        assert len(image) == 64
        fresh = MonolithicCounterScheme(bits)
        fresh.decode_counter_block(0, image)
        for i in range(per):
            assert fresh.counter_for_block(i * 64) == i % 5

    @settings(max_examples=15)
    @given(counts=st.lists(st.integers(min_value=0, max_value=200),
                           min_size=8, max_size=8))
    def test_roundtrip_property_64bit(self, counts):
        scheme = MonolithicCounterScheme(64)
        for i, n in enumerate(counts):
            for _ in range(n):
                scheme.increment(i * 64)
        fresh = MonolithicCounterScheme(64)
        fresh.decode_counter_block(0, scheme.encode_counter_block(0))
        for i, n in enumerate(counts):
            assert fresh.counter_for_block(i * 64) == n
