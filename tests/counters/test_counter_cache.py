"""The on-chip counter cache (index-addressed wrapper over Cache)."""

from repro.counters.counter_cache import CounterCache


class TestAddressing:
    def test_memory_address_in_region(self):
        cc = CounterCache(region_base=0x100000, block_size=64)
        assert cc.memory_address(0) == 0x100000
        assert cc.memory_address(5) == 0x100000 + 5 * 64

    def test_evicted_index_inverts_fill(self):
        cc = CounterCache(size_bytes=64, assoc=1, block_size=64)
        cc.fill(7, dirty=True)
        eviction = cc.fill(13)
        assert eviction is not None
        assert cc.evicted_index(eviction) == 7


class TestBehaviour:
    def test_miss_then_hit(self):
        cc = CounterCache(size_bytes=1024, assoc=2, block_size=64)
        assert not cc.access(3).hit
        cc.fill(3)
        assert cc.access(3).hit

    def test_contains_and_invalidate(self):
        cc = CounterCache(size_bytes=1024, assoc=2, block_size=64)
        cc.fill(9)
        assert cc.contains(9)
        cc.invalidate(9)
        assert not cc.contains(9)

    def test_mark_dirty_causes_dirty_eviction(self):
        cc = CounterCache(size_bytes=64, assoc=1, block_size=64)
        cc.fill(0)
        assert cc.mark_dirty(0)
        eviction = cc.fill(1)
        assert eviction.dirty

    def test_distinct_indices_map_to_distinct_sets(self):
        """Consecutive counter blocks spread over the sets (no hot-set
        aliasing from the region base)."""
        cc = CounterCache(size_bytes=32 * 1024, assoc=8, block_size=64)
        sets = {cc.cache._index_tag(cc._cache_address(i))[0]
                for i in range(64)}
        assert len(sets) == 64

    def test_default_geometry_matches_paper(self):
        cc = CounterCache()
        assert cc.cache.size_bytes == 32 * 1024
        assert cc.cache.assoc == 8
        assert cc.cache.block_size == 64
