"""Counter prediction scheme (Shi et al. baseline): accuracy dynamics."""

import pytest

from repro.counters.prediction import CounterPredictionScheme


class TestPrediction:
    def test_fresh_counters_predict_perfectly(self):
        scheme = CounterPredictionScheme(depth=5)
        correct, candidates = scheme.predict(0)
        assert correct
        assert candidates == [0, 1, 2, 3, 4]

    def test_prediction_within_window(self):
        scheme = CounterPredictionScheme(depth=5)
        for _ in range(4):
            scheme.increment(0)
        correct, _ = scheme.predict(0)   # actual 4, window [0,5)
        assert correct

    def test_prediction_fails_beyond_window(self):
        scheme = CounterPredictionScheme(depth=5)
        for _ in range(5):
            scheme.increment(0)
        correct, _ = scheme.predict(0)   # actual 5, window [0,5)
        assert not correct

    def test_failed_prediction_resyncs_base(self):
        scheme = CounterPredictionScheme(depth=5)
        for _ in range(10):
            scheme.increment(0)
        scheme.predict(0)  # miss: base resyncs to 10
        correct, candidates = scheme.predict(0)
        assert correct
        assert candidates[0] == 10

    def test_page_sharing_causes_drift_misses(self):
        """Blocks within one page share a base: uneven write rates make
        the slower blocks unpredictable after a resync — the Figure 6b
        decay mechanism."""
        scheme = CounterPredictionScheme(depth=5, page_size=4096)
        for _ in range(20):
            scheme.increment(0)       # hot block races ahead
        scheme.increment(64)          # cold block in the same page
        scheme.predict(0)             # miss -> base = 20
        correct, _ = scheme.predict(64)  # actual 1, window [20, 25)
        assert not correct

    def test_stats(self):
        scheme = CounterPredictionScheme(depth=5)
        scheme.predict(0)
        for _ in range(9):
            scheme.increment(0)
        scheme.predict(0)
        assert scheme.stats.predictions == 2
        assert scheme.stats.correct == 1
        assert scheme.stats.prediction_rate == pytest.approx(0.5)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            CounterPredictionScheme(depth=0)


class TestLayout:
    def test_64bit_counters(self):
        scheme = CounterPredictionScheme()
        assert scheme.bits_per_block == 64
        assert scheme.data_blocks_per_counter_block == 8
        # 64 bits per 64-byte block = 1/8 of memory (the paper's overhead)
        assert scheme.storage_overhead() == pytest.approx(1 / 8)

    def test_serialization_roundtrip(self):
        scheme = CounterPredictionScheme()
        for i in range(8):
            for _ in range(i):
                scheme.increment(i * 64)
        fresh = CounterPredictionScheme()
        fresh.decode_counter_block(0, scheme.encode_counter_block(0))
        for i in range(8):
            assert fresh.counter_for_block(i * 64) == i
