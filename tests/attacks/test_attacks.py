"""The hardware-attack suite against every relevant configuration.

This is the security-claims matrix of the paper:

* no protection        -> snooping and tampering succeed;
* encryption only      -> snooping fails, tampering/replay undetected;
* encryption + GCM/Merkle -> tampering, splicing, and replay detected;
* counter replay (section 4.3) succeeds against data-only authentication
  and is detected once counters are authenticated on every fetch.
"""

import pytest

from repro.attacks import (
    counter_replay_attack,
    pad_reuse_probe,
    replay_attack,
    snoop_secrecy_attack,
    splice_attack,
    spoof_attack,
)
from repro.core import (
    SecureMemorySystem,
    baseline_config,
    split_config,
    split_gcm_config,
    split_sha_config,
)
from repro.core.config import CounterOrg, make_counter_config

SECRET = b"S3CRET-PAYLOAD!!".ljust(64, b"x")


def protected_system(**cfg_kwargs):
    return SecureMemorySystem(split_gcm_config(**cfg_kwargs),
                              protected_bytes=64 * 1024, l2_size=4 * 1024)


class TestSnooping:
    def test_unprotected_leaks(self):
        system = SecureMemorySystem(baseline_config(),
                                    protected_bytes=64 * 1024,
                                    l2_size=4 * 1024)
        report = snoop_secrecy_attack(system, 0x400, SECRET)
        assert report.succeeded

    def test_encryption_hides(self):
        system = SecureMemorySystem(split_config(),
                                    protected_bytes=64 * 1024,
                                    l2_size=4 * 1024)
        report = snoop_secrecy_attack(system, 0x400, SECRET)
        assert not report.succeeded


class TestTampering:
    def test_spoof_detected_with_auth(self):
        report = spoof_attack(protected_system(), 0x100)
        assert report.detected and not report.succeeded

    def test_spoof_succeeds_without_auth(self):
        system = SecureMemorySystem(split_config(),
                                    protected_bytes=64 * 1024,
                                    l2_size=4 * 1024)
        report = spoof_attack(system, 0x100)
        assert report.succeeded and not report.detected

    def test_spoof_detected_with_sha_auth_too(self):
        system = SecureMemorySystem(split_sha_config(),
                                    protected_bytes=64 * 1024,
                                    l2_size=4 * 1024)
        report = spoof_attack(system, 0x100)
        assert report.detected

    def test_splice_detected(self):
        report = splice_attack(protected_system(), 0x400, 0x440)
        assert report.detected


class TestReplay:
    def test_data_replay_detected(self):
        report = replay_attack(protected_system(), 0x200,
                               b"old".ljust(64, b"\0"),
                               b"new".ljust(64, b"\0"))
        assert report.detected

    def test_data_plus_code_replay_detected_by_tree(self):
        """Replaying the MAC code block along with the data defeats a flat
        MAC but not the Merkle tree."""
        report = replay_attack(protected_system(), 0x300,
                               b"old".ljust(64, b"\0"),
                               b"new".ljust(64, b"\0"),
                               replay_code_block=True)
        assert report.detected

    def test_replay_succeeds_without_auth(self):
        system = SecureMemorySystem(split_config(),
                                    protected_bytes=64 * 1024,
                                    l2_size=4 * 1024)
        report = replay_attack(system, 0x200,
                               b"old".ljust(64, b"\0"),
                               b"new".ljust(64, b"\0"))
        assert report.succeeded and not report.detected


class TestCounterReplay:
    """Section 4.3's pitfall, end to end."""

    V2 = b"\xaa" * 64
    V3 = b"\x55" * 64

    def _system(self, config):
        return SecureMemorySystem(config, protected_bytes=512 * 1024,
                                  l2_size=4 * 1024, l2_assoc=2)

    def test_succeeds_against_encryption_only(self):
        config = split_config(counter_cache_size=64, counter_cache_assoc=1)
        report = counter_replay_attack(self._system(config), 0,
                                       self.V2, self.V3,
                                       scratch_base=128 * 1024)
        assert report.succeeded and not report.detected
        # the leaked relation is exactly ct2 ^ ct3 == pt2 ^ pt3
        assert pad_reuse_probe(report.evidence["ciphertext_v2"], self.V2,
                               report.evidence["ciphertext_v3"], self.V3)

    def test_succeeds_against_data_only_authentication(self):
        """The previously unnoticed flaw: GCM data authentication alone
        does NOT stop the rollback, because the poisoned counter is
        consumed by a write-back, not a verified read."""
        config = split_gcm_config(counter_cache_size=64,
                                  counter_cache_assoc=1,
                                  authenticate_counters=False)
        report = counter_replay_attack(self._system(config), 0,
                                       self.V2, self.V3,
                                       scratch_base=128 * 1024)
        assert report.succeeded and not report.detected

    def test_detected_with_counter_authentication(self):
        """The paper's fix: counters are Merkle leaves, re-authenticated on
        every fetch — the rollback is caught before the counter is used."""
        config = split_gcm_config(counter_cache_size=64,
                                  counter_cache_assoc=1)
        report = counter_replay_attack(self._system(config), 0,
                                       self.V2, self.V3,
                                       scratch_base=128 * 1024)
        assert report.detected and not report.succeeded

    def test_global_counter_immune_by_construction(self):
        """Section 6.1: a global counter never repeats values, so rolling
        back the stored snapshot cannot force pad reuse on write-back
        (write-backs use the on-chip global counter, not the snapshot)."""
        config = make_counter_config(
            CounterOrg.GLOBAL32, counter_cache_size=64,
            counter_cache_assoc=1,
        )
        report = counter_replay_attack(self._system(config), 0,
                                       self.V2, self.V3,
                                       scratch_base=128 * 1024)
        assert not report.succeeded
