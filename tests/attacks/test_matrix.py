"""Attack regression matrix: every preset × MAC width vs. the attack suite.

The paper's security table, executed: for each named preset (and each MAC
truncation width where authentication is on) the staged attacks must land
exactly where the scheme's claims say —

* snooping succeeds iff the scheme does not encrypt;
* spoofing / splicing / replay are detected iff the scheme authenticates,
  and succeed silently iff it does not;
* the section-4.3 counter rollback applies to counter-mode encryption
  only, and is defended iff the scheme authenticates its counters.

A regression anywhere in the crypto kernels, the counter schemes, or the
tree shows up here as a flipped cell.
"""

import pytest

from repro.attacks import (
    counter_replay_attack,
    replay_attack,
    snoop_secrecy_attack,
    splice_attack,
    spoof_attack,
)
from repro.core import SecureMemorySystem
from repro.core.config import AuthMode, EncryptionMode, PRESETS

SECRET = b"S3CRET-PAYLOAD!!".ljust(64, b"x")
MAC_WIDTHS = (32, 64, 128)

#: (preset, mac_bits) cells: every preset once with its default MAC width,
#: plus the full MAC sweep where authentication is actually on (the width
#: is dead configuration otherwise).
MATRIX = [(name, None) for name in PRESETS] + [
    (name, bits)
    for name, config in PRESETS.items()
    if config.auth is not AuthMode.NONE
    for bits in MAC_WIDTHS
]


def _config(preset, mac_bits):
    config = PRESETS[preset]
    return config.with_updates(mac_bits=mac_bits) if mac_bits else config


def _system(preset, mac_bits, **overrides):
    return SecureMemorySystem(
        _config(preset, mac_bits).with_updates(**overrides),
        protected_bytes=64 * 1024, l2_size=4 * 1024, l2_assoc=2)


def _ids(cells):
    return [f"{name}-mac{bits}" if bits else name for name, bits in cells]


@pytest.mark.parametrize(("preset", "mac_bits"), MATRIX, ids=_ids(MATRIX))
class TestMatrix:
    def test_snoop(self, preset, mac_bits):
        config = _config(preset, mac_bits)
        report = snoop_secrecy_attack(_system(preset, mac_bits), 0x400,
                                      SECRET)
        if config.encryption is EncryptionMode.NONE:
            assert report.succeeded, "plaintext DRAM must leak"
        else:
            assert not report.succeeded, "encrypted DRAM must not leak"

    def test_spoof(self, preset, mac_bits):
        config = _config(preset, mac_bits)
        report = spoof_attack(_system(preset, mac_bits), 0x100)
        if config.auth is AuthMode.NONE:
            assert not report.detected
            assert report.succeeded, "unauthenticated forgery must land"
        else:
            assert report.detected and not report.succeeded

    def test_splice(self, preset, mac_bits):
        config = _config(preset, mac_bits)
        system = _system(preset, mac_bits)
        system.write_block(0x200, b"\xA5" * 64)
        system.write_block(0x600, b"\x5A" * 64)
        report = splice_attack(system, 0x200, 0x600)
        if config.auth is AuthMode.NONE:
            assert report.succeeded and not report.detected
        else:
            assert report.detected and not report.succeeded

    def test_replay(self, preset, mac_bits):
        config = _config(preset, mac_bits)
        report = replay_attack(_system(preset, mac_bits), 0x300,
                               b"\x01" * 64, b"\x02" * 64)
        if config.auth is AuthMode.NONE:
            assert report.succeeded and not report.detected
        else:
            assert report.detected and not report.succeeded

    def test_counter_replay(self, preset, mac_bits):
        config = _config(preset, mac_bits)
        if config.encryption is not EncryptionMode.COUNTER:
            pytest.skip("rollback needs counter-mode encryption")
        system = SecureMemorySystem(
            _config(preset, mac_bits).with_updates(
                counter_cache_size=64, counter_cache_assoc=1),
            protected_bytes=512 * 1024, l2_size=4 * 1024, l2_assoc=2)
        report = counter_replay_attack(system, 0, b"\xAA" * 64,
                                       b"\x55" * 64,
                                       scratch_base=128 * 1024)
        if config.auth is AuthMode.NONE:
            assert report.succeeded, "pad reuse must be exploitable"
            assert not report.detected
        else:
            assert report.defended
            assert report.detected, "counter fetch must fail verification"
