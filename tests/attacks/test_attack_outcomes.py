"""Golden attack-outcome matrix for relocation and cold-boot remanence.

The table below is the *committed* security claim of every registered
scheme against the two attack classes added with the recorded-trace
scenario library — executed, not asserted from config flags alone, so a
regression anywhere in the crypto kernels, counter schemes, shares
reconstruction, or tree shows up as a flipped cell.

Columns:

* ``reloc`` — relocation verdict: ``detected`` (address-bound MAC
  rejects the moved ciphertext), ``leak`` (victim consumes the source's
  plaintext verbatim at the wrong address — position-independent
  storage), or ``garbled`` (silent corruption; the address-seeded pad
  scrambles the moved bytes but nothing notices).
* ``cb_leak`` — does the decayed DRAM image still reveal the secret?
  True exactly for plaintext-at-rest schemes.
* ``cb_detect`` — does the post-reboot read raise a violation?  True
  exactly for authenticating schemes.

A scheme registered without a row here fails loudly — new backends must
declare their claim.
"""

import pytest

from repro.attacks import cold_boot_attack, relocate_attack
from repro.core import SecureMemorySystem
from repro.core.config import AuthMode, EncryptionMode, PRESETS

SECRET = b"S3CRET-PAYLOAD!!".ljust(64, b"x")

#: preset -> (reloc, cb_leak, cb_detect).  Committed expectations; see
#: the module docstring for column semantics.
EXPECTED = {
    "baseline":     ("leak",     True,  False),
    "split":        ("garbled",  False, False),
    "mono8b":       ("garbled",  False, False),
    "mono16b":      ("garbled",  False, False),
    "mono32b":      ("garbled",  False, False),
    "mono64b":      ("garbled",  False, False),
    "direct":       ("leak",     False, False),
    "pred":         ("garbled",  False, False),
    "pred2eng":     ("garbled",  False, False),
    "gcm-auth":     ("detected", True,  True),
    "sha-auth-320": ("detected", True,  True),
    "split+gcm":    ("detected", False, True),
    "mono+gcm":     ("detected", False, True),
    "split+sha":    ("detected", False, True),
    "mono+sha":     ("detected", False, True),
    "xom+sha":      ("detected", False, True),
    "secddr":       ("detected", False, True),
    "scattered":    ("detected", False, True),
}


def test_every_registered_scheme_has_a_row():
    assert set(EXPECTED) == set(PRESETS), (
        "new scheme registered without a committed attack-outcome row")


def test_table_consistent_with_config_claims():
    """The committed table must itself match each scheme's stated claim."""
    for name, (reloc, cb_leak, cb_detect) in EXPECTED.items():
        config = PRESETS[name]
        authed = config.auth is not AuthMode.NONE
        assert (reloc == "detected") == authed, name
        assert cb_detect == authed, name
        assert cb_leak == (config.encryption is EncryptionMode.NONE), name


def _system(preset):
    return SecureMemorySystem(PRESETS[preset], protected_bytes=64 * 1024,
                              l2_size=4 * 1024, l2_assoc=2)


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_relocate_matrix(preset):
    system = _system(preset)
    system.write_block(0x200, b"\xA5" * 64)
    system.write_block(0x600, b"\x5A" * 64)
    report = relocate_attack(system, 0x200, 0x600)
    expected = EXPECTED[preset][0]
    if expected == "detected":
        assert report.detected and not report.succeeded
    elif expected == "leak":
        assert report.succeeded and not report.detected
        assert report.evidence["plaintext_intact"], (
            f"{preset}: relocation should inject the source plaintext")
    else:  # garbled
        assert report.succeeded and not report.detected
        assert not report.evidence["plaintext_intact"], (
            f"{preset}: address-seeded encryption should garble the move")


@pytest.mark.parametrize("preset", sorted(PRESETS))
@pytest.mark.parametrize("seed", (0, 7))
def test_cold_boot_matrix(preset, seed):
    report = cold_boot_attack(_system(preset), 0x400, SECRET, seed=seed)
    _, cb_leak, cb_detect = EXPECTED[preset]
    assert report.succeeded == cb_leak, (
        f"{preset}: cold-boot leak verdict flipped "
        f"(bit match {report.evidence['bit_match']:.2f})")
    assert report.detected == cb_detect, (
        f"{preset}: cold-boot detection verdict flipped")
    assert report.evidence["flipped_bits"] > 0


def test_cold_boot_replays_bit_for_bit():
    a = cold_boot_attack(_system("split+gcm"), 0x400, SECRET, seed=3)
    b = cold_boot_attack(_system("split+gcm"), 0x400, SECRET, seed=3)
    assert a.evidence == b.evidence and a.details == b.details


def test_relocate_rejects_degenerate_call():
    with pytest.raises(ValueError):
        relocate_attack(_system("baseline"), 0x200, 0x200)
    with pytest.raises(ValueError):
        cold_boot_attack(_system("baseline"), 0x200, SECRET, decay=0.0)
