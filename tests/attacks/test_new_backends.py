"""Attack rows specific to the SecDDR and scattered-memory backends.

The generic matrix (test_matrix.py) already runs every staged attack
against both presets purely because they are registered schemes; these
tests pin the *mechanism-specific* claims: SecDDR's MAC-of-MACs catches
ciphertext relocation without a tree walk, and the scattered scheme
detects per-share tampering while shrugging off damage to redundant
shares.
"""

import pytest

from repro.attacks import snoop_secrecy_attack, splice_attack
from repro.auth.merkle import IntegrityViolation
from repro.core import SecureMemorySystem
from repro.core.config import PRESETS

SECRET = b"S3CRET-PAYLOAD!!".ljust(64, b"x")
PROTECTED = 64 * 1024


def make_system(preset):
    return SecureMemorySystem(PRESETS[preset], protected_bytes=PROTECTED,
                              l2_size=4 * 1024, l2_assoc=2)


def drop_from_l2(system, address):
    line = system.l2.lookup(address)
    if line is not None:
        system.l2.invalidate(address)


class TestSecDDRAttacks:
    def test_relocation_detected_without_tree_walk(self):
        """SecDDR replaces the Merkle walk, so splicing must be caught by
        the address-bound leaf MAC + on-chip group table alone."""
        system = make_system("secddr")
        system.write_block(0x200, b"\xA5" * 64)
        system.write_block(0x600, b"\x5A" * 64)
        report = splice_attack(system, 0x200, 0x600)
        assert report.detected and not report.succeeded
        assert max(system.merkle.stats.chain_lengths, default=0) <= 1

    def test_counter_region_tamper_detected(self):
        """Counter blocks live under the same flat MAC groups."""
        system = make_system("secddr")
        system.write_block(0x000, b"\x11" * 64)
        system.flush()
        counter_address = system._data_region_bytes
        image = bytearray(system.dram.peek(counter_address))
        image[0] ^= 0x01
        system.dram.poke(counter_address, bytes(image))
        system.counter_cache.invalidate(0)
        drop_from_l2(system, 0x000)
        with pytest.raises(IntegrityViolation):
            system.read_block(0x000)


class TestScatteredAttacks:
    def test_share_tamper_detected(self):
        """Each fetched share carries its own leaf MAC: corrupting any of
        the k shares read back must raise, not silently reconstruct."""
        for share in range(PRESETS["scattered"].shares_k):
            system = make_system("scattered")
            system.write_block(0x400, SECRET)
            system.flush()
            drop_from_l2(system, 0x400)
            share_address = share * PROTECTED + 0x400
            image = bytearray(system.dram.peek(share_address))
            image[7] ^= 0x80
            system.dram.poke(share_address, bytes(image))
            with pytest.raises(IntegrityViolation):
                system.read_block(0x400)

    def test_redundant_share_tamper_neutralized(self):
        """Shares beyond k are write-only redundancy: damaging one must
        neither corrupt reconstruction nor trip a spurious violation."""
        config = PRESETS["scattered"]
        system = make_system("scattered")
        system.write_block(0x400, SECRET)
        system.flush()
        drop_from_l2(system, 0x400)
        for share in range(config.shares_k, config.shares_n):
            system.dram.poke(share * PROTECTED + 0x400, b"\xFF" * 64)
        assert system.read_block(0x400) == SECRET

    def test_no_share_leaks_plaintext(self):
        """k >= 2: every individual share image is keystream-masked, so
        snooping any one share (not just share 0) reveals nothing."""
        config = PRESETS["scattered"]
        system = make_system("scattered")
        report = snoop_secrecy_attack(system, 0x400, SECRET)
        assert not report.succeeded
        for share in range(config.shares_n):
            image = system.dram.peek(share * PROTECTED + 0x400)
            assert SECRET not in image

    def test_single_share_insufficient_without_the_others(self):
        """Relocating one share's ciphertext over another share of the
        same block is still a MAC failure (shares are address-bound)."""
        system = make_system("scattered")
        system.write_block(0x400, SECRET)
        system.flush()
        drop_from_l2(system, 0x400)
        donor = system.dram.peek(1 * PROTECTED + 0x400)
        system.dram.poke(0x400, donor)
        with pytest.raises(IntegrityViolation):
            system.read_block(0x400)
