"""AttackReport presentation: every (detected, succeeded) cell is distinct."""

from repro.attacks import AttackReport


def _report(detected, succeeded):
    return AttackReport(attack="probe", detected=detected,
                        succeeded=succeeded, details="d")


class TestAttackReportStr:
    def test_detected_and_succeeded_shows_both(self):
        """Late detection must not masquerade as a clean defence."""
        text = str(_report(detected=True, succeeded=True))
        assert "DETECTED-BUT-SUCCEEDED" in text

    def test_detected_only(self):
        assert "DETECTED" in str(_report(True, False))
        assert "SUCCEEDED" not in str(_report(True, False))

    def test_succeeded_only(self):
        assert "SUCCEEDED" in str(_report(False, True))
        assert "DETECTED" not in str(_report(False, True))

    def test_neutralized(self):
        assert "NEUTRALIZED" in str(_report(False, False))

    def test_defended_property_matches_str(self):
        # Late detection counts as defended (alarm raised) even though the
        # string calls out the success — both faces must stay visible.
        report = _report(True, True)
        assert report.defended
        assert "SUCCEEDED" in str(report)

    def test_all_four_cells_distinct(self):
        cells = {str(_report(d, s)) for d in (False, True)
                 for s in (False, True)}
        assert len(cells) == 4
