"""The tracer types: no-op default, recording, strict miss checking."""

import pytest

from repro.obs import (
    NULL_TRACER,
    AttributionError,
    MissRecord,
    NullTracer,
    RecordingTracer,
    Tracer,
)


class TestNullTracer:
    def test_disabled_by_default(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is False
        assert NullTracer().enabled is False

    def test_all_hooks_are_noops(self):
        NULL_TRACER.span("bus", "xfer", 0.0, 10.0)
        NULL_TRACER.instant("counter", "hit", 5.0)
        NULL_TRACER.miss(MissRecord(address=0, issue=0.0,
                                    data_ready=1.0, auth_done=1.0))
        NULL_TRACER.clear()


class TestRecordingTracer:
    def test_enabled(self):
        assert RecordingTracer().enabled is True

    def test_records_spans_and_instants(self):
        tracer = RecordingTracer()
        tracer.span("bus", "xfer", 10.0, 20.0, bytes=64)
        tracer.instant("counter", "lookup-hit", 12.0, index=3)
        assert len(tracer) == 2
        (span,) = tracer.spans("bus")
        assert span.name == "xfer"
        assert span.duration == 10.0
        assert span.args == {"bytes": 64}
        assert span.is_span
        (inst,) = tracer.instants("counter")
        assert inst.begin == 12.0
        assert inst.end is None
        assert inst.duration == 0.0

    def test_query_filters_by_category(self):
        tracer = RecordingTracer()
        tracer.span("bus", "a", 0.0, 1.0)
        tracer.span("engine", "b", 0.0, 1.0)
        tracer.instant("bus", "c", 0.0)
        assert [e.name for e in tracer.spans()] == ["a", "b"]
        assert [e.name for e in tracer.spans("engine")] == ["b"]
        assert [e.name for e in tracer.instants("bus")] == ["c"]

    def test_clear_drops_everything(self):
        tracer = RecordingTracer(strict=False)
        tracer.span("bus", "a", 0.0, 1.0)
        tracer.miss(MissRecord(address=0, issue=0.0,
                               data_ready=1.0, auth_done=1.0))
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.misses == []

    def test_strict_miss_rejects_broken_attribution(self):
        tracer = RecordingTracer(strict=True)
        bad = MissRecord(address=0x40, issue=0.0, data_ready=90.0,
                         auth_done=100.0, parts={"bus": 10.0})  # 90 missing
        with pytest.raises(AttributionError):
            tracer.miss(bad)
        assert tracer.misses == []

    def test_strict_miss_accepts_exact_attribution(self):
        tracer = RecordingTracer(strict=True)
        good = MissRecord(address=0x40, issue=0.0, data_ready=90.0,
                          auth_done=100.0,
                          parts={"bus": 10.0, "dram": 80.0, "ghash": 10.0})
        tracer.miss(good)
        assert tracer.misses == [good]

    def test_non_strict_keeps_broken_records(self):
        tracer = RecordingTracer(strict=False)
        bad = MissRecord(address=0, issue=0.0, data_ready=1.0,
                         auth_done=100.0, parts={})
        tracer.miss(bad)
        assert tracer.misses == [bad]
