"""MetricsRegistry.snapshot() (and miss records) are frozen copies.

Regression suite for the bugfix: a snapshot used to alias dict/list
fields of live stats dataclasses, so a concurrent scrape (the serve
metrics endpoint) could observe — or be retroactively changed by —
in-flight mutation.  Snapshots must be isolated at the moment of capture.
"""

from dataclasses import dataclass, field

from repro.obs.attribution import MissRecord, PathTime
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer


@dataclass
class _StatsWithContainers:
    hits: int = 0
    per_page: dict = field(default_factory=dict)
    history: list = field(default_factory=list)

    @property
    def pages_touched(self) -> int:
        return len(self.per_page)


@dataclass
class _Inner:
    flips: int = 0


@dataclass
class _Outer:
    inner: _Inner = field(default_factory=_Inner)
    tags: list = field(default_factory=list)


class TestSnapshotIsolation:
    def test_dict_field_is_deep_copied(self):
        registry = MetricsRegistry()
        stats = _StatsWithContainers()
        registry.register("mem", stats)
        stats.per_page[7] = {"faults": 1}
        snap = registry.snapshot()
        stats.per_page[7]["faults"] = 999
        stats.per_page[8] = {"faults": 5}
        assert snap["mem.per_page"] == {7: {"faults": 1}}

    def test_list_field_is_deep_copied(self):
        registry = MetricsRegistry()
        stats = _StatsWithContainers()
        registry.register("mem", stats)
        stats.history.append([1, 2])
        snap = registry.snapshot()
        stats.history[0].append(3)
        stats.history.append([4])
        assert snap["mem.history"] == [[1, 2]]

    def test_scalars_and_properties_frozen_at_capture(self):
        registry = MetricsRegistry()
        stats = _StatsWithContainers()
        registry.register("mem", stats)
        stats.hits = 3
        stats.per_page["a"] = 1
        snap = registry.snapshot()
        stats.hits = 100
        stats.per_page["b"] = 2
        assert snap["mem.hits"] == 3
        assert snap["mem.pages_touched"] == 1

    def test_nested_dataclass_containers(self):
        registry = MetricsRegistry()
        stats = _Outer()
        registry.register("outer", stats)
        stats.tags.append("warm")
        snap = registry.snapshot()
        stats.tags.append("hot")
        stats.inner.flips = 9
        assert snap["outer.tags"] == ["warm"]
        assert snap["outer.inner.flips"] == 0

    def test_snapshot_does_not_alias_snapshot(self):
        # mutating one snapshot must not leak into another
        registry = MetricsRegistry()
        stats = _StatsWithContainers()
        registry.register("mem", stats)
        stats.per_page["x"] = 1
        first = registry.snapshot()
        second = registry.snapshot()
        first["mem.per_page"]["x"] = 42
        assert second["mem.per_page"] == {"x": 1}

    def test_registry_instruments_unaffected(self):
        registry = MetricsRegistry()
        counter = registry.counter("serve.requests")
        counter.inc(5)
        histogram = registry.histogram("serve.latency")
        histogram.observe(10.0)
        snap = registry.snapshot()
        counter.inc(5)
        histogram.observe(1000.0)
        assert snap["serve.requests"] == 5
        assert snap["serve.latency.count"] == 1


class TestMissRecordIsolation:
    def test_recorded_parts_detached_from_live_pathtime(self):
        path = PathTime(0.0)
        path.advance("bus", 10.0)
        record = MissRecord(address=0, issue=0.0, data_ready=10.0,
                            auth_done=10.0, parts=path.parts)
        tracer = RecordingTracer(strict=True)
        tracer.miss(record)
        # the producer keeps advancing its PathTime after the record is
        # taken; the recorded breakdown must not move with it
        path.advance("tree", 25.0)
        [kept] = tracer.misses
        assert kept.parts == {"bus": 10.0}
        assert kept.residual == 0.0
