"""Cycle attribution: PathTime algebra and the end-to-end identity.

The acceptance bar of this layer: for every L2 miss of a traced run, the
per-component breakdown sums to the observed ``auth_done - issue`` within
1% — across GCM (parallel and sequential tree walks), SHA, and the
counter-prediction scheme.
"""

import json

import pytest

from repro.api import get_config
from repro.obs import (
    ATTRIBUTION_COMPONENTS,
    AttributionError,
    MissRecord,
    PathTime,
    RecordingTracer,
    build_report,
    to_chrome_trace,
    to_csv,
)
from repro.sim import simulate
from repro.workloads import spec_trace


class TestPathTime:
    def test_advance_charges_the_gap(self):
        p = PathTime(10.0)
        p.advance("bus", 25.0)
        p.advance("dram", 105.0)
        assert p.t == 105.0
        assert p.parts == {"bus": 15.0, "dram": 80.0}
        assert p.total() == pytest.approx(95.0)

    def test_advance_to_the_past_is_a_noop(self):
        p = PathTime(50.0)
        p.advance("aes", 40.0)
        assert p.t == 50.0
        assert p.parts == {}

    def test_fork_is_independent(self):
        p = PathTime(0.0)
        p.advance("bus", 10.0)
        q = p.fork()
        q.advance("aes", 30.0)
        assert p.t == 10.0
        assert p.parts == {"bus": 10.0}
        assert q.parts == {"bus": 10.0, "aes": 20.0}

    def test_merge_takes_the_later_branch(self):
        a = PathTime(0.0)
        a.advance("bus", 10.0)
        b = PathTime(0.0)
        b.advance("aes", 30.0)
        m = PathTime.merge(a, b)
        assert m is b
        assert m.parts == {"aes": 30.0}

    def test_adopt_rebinds_in_place(self):
        p = PathTime(0.0)
        alias = p
        q = PathTime(9.0, {"tree": 9.0})
        p.adopt(q)
        assert alias.t == 9.0
        assert alias.parts == {"tree": 9.0}

    def test_identity_holds_across_fork_merge(self):
        """sum(parts) always equals t - issue, whatever the DAG shape."""
        issue = 100.0
        p = PathTime(issue)
        p.advance("bus_queue", 110.0)
        left = p.fork()
        left.advance("dram", 200.0)
        right = p.fork()
        right.advance("aes", 180.0)
        joined = PathTime.merge(left, right)
        joined.advance("ghash", 230.0)
        assert joined.total() == pytest.approx(joined.t - issue)


class TestMissRecord:
    def test_check_passes_within_tolerance(self):
        r = MissRecord(address=0, issue=0.0, data_ready=99.0, auth_done=100.0,
                       parts={"dram": 99.5})
        r.check(tolerance=0.01)  # 0.5/100 residual

    def test_check_rejects_large_residual(self):
        r = MissRecord(address=0, issue=0.0, data_ready=99.0, auth_done=100.0,
                       parts={"dram": 90.0})
        with pytest.raises(AttributionError):
            r.check(tolerance=0.01)

    def test_check_rejects_unknown_component(self):
        r = MissRecord(address=0, issue=0.0, data_ready=1.0, auth_done=1.0,
                       parts={"warp_drive": 1.0})
        with pytest.raises(AttributionError):
            r.check()

    def test_build_report_aggregates(self):
        records = [
            MissRecord(address=0, issue=0.0, data_ready=10.0, auth_done=10.0,
                       parts={"bus": 4.0, "dram": 6.0}),
            MissRecord(address=64, issue=5.0, data_ready=25.0, auth_done=25.0,
                       parts={"bus": 8.0, "dram": 12.0}),
        ]
        report = build_report(records)
        assert report.misses == 2
        assert report.total_latency == 30.0
        assert report.components["bus"] == 12.0
        assert report.components["dram"] == 18.0
        assert report.mean_latency == 15.0
        assert report.max_latency == 20.0
        assert report.fractions()["bus"] == pytest.approx(0.4)
        payload = json.dumps(report.to_dict())
        assert "components_cycles" in payload


def traced_run(scheme, refs=12_000, app="mcf", **overrides):
    tracer = RecordingTracer(strict=True, tolerance=0.01)
    config = get_config(scheme, **overrides) if overrides \
        else get_config(scheme)
    result = simulate(config, spec_trace(app, refs), tracer=tracer)
    return tracer, result


class TestEndToEndIdentity:
    """Per-miss attribution sums to auth_done - issue, within 1%."""

    def assert_identity(self, tracer, result):
        assert tracer.misses, "run produced no misses to attribute"
        # Every demand miss produces a record; l2_misses additionally
        # counts L1 write-back probes that miss without fetching.
        assert 0 < len(tracer.misses) <= result.l2_misses
        for record in tracer.misses:
            # strict recording already checked; re-assert the invariants
            assert record.residual_fraction <= 0.01
            assert set(record.parts) <= set(ATTRIBUTION_COMPONENTS)
            assert record.issue <= record.data_ready <= record.auth_done

    def test_split_gcm_parallel_tree(self):
        tracer, result = traced_run("split+gcm")
        self.assert_identity(tracer, result)
        report = build_report(tracer.misses)
        assert report.max_residual_fraction <= 0.01
        # A real memory-bound run attributes real cycles to DRAM + bus.
        assert report.components["dram"] > 0
        assert report.components["bus"] > 0

    def test_split_gcm_sequential_tree(self):
        tracer, result = traced_run("split+gcm", parallel_auth=False)
        self.assert_identity(tracer, result)

    def test_split_sha(self):
        tracer, result = traced_run("split+sha")
        self.assert_identity(tracer, result)
        report = build_report(tracer.misses)
        assert report.components["sha"] + report.components["tree"] > 0

    def test_mono_gcm(self):
        tracer, result = traced_run("mono+gcm")
        self.assert_identity(tracer, result)

    def test_prediction_scheme(self):
        tracer, result = traced_run("pred")
        self.assert_identity(tracer, result)
        assert any(r.kind == "prediction" for r in tracer.misses)

    def test_baseline_has_plain_memory_path(self):
        tracer, result = traced_run("baseline")
        self.assert_identity(tracer, result)
        report = build_report(tracer.misses)
        assert report.components["tree"] == 0.0
        assert report.components["ghash"] == 0.0

    def test_event_stream_populated(self):
        tracer, _ = traced_run("split+gcm")
        assert tracer.spans("bus")
        assert tracer.spans("engine")
        assert tracer.spans("miss")
        assert tracer.instants("counter")


class TestExporters:
    def test_chrome_trace_loads_and_has_wellformed_events(self):
        tracer, _ = traced_run("split+gcm", refs=6_000)
        doc = json.loads(json.dumps(to_chrome_trace(tracer)))
        events = doc["traceEvents"]
        assert events, "empty trace"
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        for e in events:
            assert "name" in e and "pid" in e and "tid" in e
            if e["ph"] == "X":
                assert e["dur"] >= 0
            if e["ph"] == "i":
                assert e["s"] == "t"
        # Per-miss attribution spans ride on the trace too.
        assert any(e.get("cat") == "attribution" for e in events)

    def test_csv_round_trips(self):
        import csv
        import io

        tracer, result = traced_run("split+gcm", refs=6_000)
        rows = list(csv.DictReader(io.StringIO(to_csv(tracer))))
        assert rows
        kinds = {row["type"] for row in rows}
        assert {"span", "instant", "miss"} <= kinds
        miss_rows = [r for r in rows if r["type"] == "miss"]
        assert len(miss_rows) == len(tracer.misses)
        parts = json.loads(miss_rows[0]["args"])
        assert set(parts) <= set(ATTRIBUTION_COMPONENTS)
