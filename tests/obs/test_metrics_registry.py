"""Field-driven reset and the unified metrics registry."""

from dataclasses import dataclass, field

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    reset_fields,
)


@dataclass
class Inner:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class Outer:
    reads: int = 0
    latency: float = 0.0
    tags: list = field(default_factory=list)
    inner: Inner = field(default_factory=Inner)


class TestResetFields:
    def test_restores_defaults(self):
        obj = Outer(reads=7, latency=1.5, tags=["x"])
        obj.inner.hits = 3
        reset_fields(obj)
        assert obj == Outer()

    def test_nested_dataclass_resets_in_place(self):
        """Callers hold references to nested stats; reset must not rebind."""
        obj = Outer()
        inner = obj.inner
        inner.hits = 9
        reset_fields(obj)
        assert obj.inner is inner
        assert inner.hits == 0

    def test_default_factory_rebuilt(self):
        obj = Outer(tags=[1, 2, 3])
        reset_fields(obj)
        assert obj.tags == []

    def test_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            reset_fields(object())
        with pytest.raises(TypeError):
            reset_fields(Outer)  # the class, not an instance


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_gauge_set_and_reset(self):
        g = Gauge()
        g.set(3.5)
        assert g.read() == 3.5
        g.reset()
        assert g.read() == 0.0

    def test_derived_gauge(self):
        g = Gauge(fn=lambda: 42.0)
        assert g.read() == 42.0
        with pytest.raises(ValueError):
            g.set(1.0)
        g.reset()  # no-op for derived gauges
        assert g.read() == 42.0

    def test_histogram(self):
        h = Histogram()
        for v in (1.0, 2.0, 300.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["sum"] == 303.0
        assert summary["min"] == 1.0
        assert summary["max"] == 300.0
        assert h.mean == pytest.approx(101.0)
        h.reset()
        assert h.count == 0
        assert h.summary()["min"] == 0.0


class TestMetricsRegistry:
    def test_snapshot_dotted_names_and_properties(self):
        reg = MetricsRegistry()
        obj = Outer(reads=2)
        obj.inner.hits = 3
        obj.inner.misses = 1
        reg.register("mem", obj)
        snap = reg.snapshot()
        assert snap["mem.reads"] == 2
        assert snap["mem.inner.hits"] == 3
        # Properties surface as derived gauges.
        assert snap["mem.inner.hit_rate"] == pytest.approx(0.75)

    def test_registration_idempotent_by_identity(self):
        reg = MetricsRegistry()
        obj = Outer()
        reg.register("a", obj)
        reg.register("a", obj)
        assert len(reg.registered_objects()) == 1

    def test_register_rejects_non_dataclass(self):
        reg = MetricsRegistry()
        with pytest.raises(TypeError):
            reg.register("x", object())

    def test_reset_covers_objects_and_instruments(self):
        reg = MetricsRegistry()
        obj = Outer(reads=5)
        reg.register("mem", obj)
        c = reg.counter("events.total")
        c.inc(10)
        h = reg.histogram("lat")
        h.observe(12.0)
        reg.reset()
        assert obj.reads == 0
        assert c.value == 0
        assert h.count == 0

    def test_reset_honours_custom_reset_hook(self):
        calls = []

        @dataclass
        class WithHook:
            n: int = 0

            def reset(self):
                calls.append("hook")
                self.n = 0

        reg = MetricsRegistry()
        reg.register("x", WithHook(n=3))
        reg.reset()
        assert calls == ["hook"]

    def test_instruments_idempotent_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.histogram("h") is reg.histogram("h")
        with pytest.raises(ValueError):
            reg.gauge("c")  # name taken by a different instrument type

    def test_instrument_values_in_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("total").inc(3)
        reg.gauge("depth").set(2.0)
        reg.histogram("lat").observe(7.0)
        snap = reg.snapshot()
        assert snap["total"] == 3
        assert snap["depth"] == 2.0
        assert snap["lat.count"] == 1
        assert snap["lat.mean"] == 7.0
