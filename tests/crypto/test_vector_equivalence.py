"""Property campaign: the vector kernels are byte-identical to table/scalar.

Every fast path introduced by the NumPy vector backend — batched AES
blocks, batched CTR pad generation, batched GHASH, batched GCM block
MACs — must agree with both the table kernel and the bitwise scalar
reference on arbitrary keys, addresses, counters, and message lengths.
Hypothesis drives the input space; any divergence shrinks to a minimal
counterexample.

The counter strategy deliberately exceeds 64 bits: split counters are
concatenated ``major << minor_bits | minor`` values and the seed layout
truncates them to 64 bits, so the vector path's Python-side masking must
match :func:`repro.crypto.ctr.make_seed` exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES128
from repro.crypto.ctr import (
    AUTHENTICATION_IV,
    ENCRYPTION_IV,
    bulk_ctr_transform,
    ctr_transform,
    make_seed,
    make_seeds,
)
from repro.crypto.ghash import ghash_chunks
from repro.crypto.mac import VALID_MAC_BITS, gcm_block_mac, gcm_block_macs
from repro.crypto.vector import (
    HAVE_NUMPY,
    _ghash_chunks_scalar,
    bulk_ctr_transform_vector,
    decrypt_blocks_kernel,
    encrypt_blocks_kernel,
    gcm_block_macs_vector,
    ghash_chunks_kernel,
    ghash_chunks_many,
    make_seeds_array,
)
from repro.counters.split import SplitCounterScheme

pytestmark = pytest.mark.skipif(not HAVE_NUMPY,
                                reason="vector kernel needs numpy")

keys = st.binary(min_size=16, max_size=16)
# 16-byte-aligned byte addresses whose chunk index stays within the
# 48-bit seed field.
addresses = st.integers(min_value=0, max_value=(1 << 44)).map(
    lambda v: v * 16
)
# Split counters can exceed 64 bits once major||minor is concatenated;
# the seed layout keeps only the low 64.
counters = st.integers(min_value=0, max_value=(1 << 80) - 1)
block_data = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.binary(min_size=16 * n, max_size=16 * n)
)
ctr_items = st.lists(st.tuples(addresses, counters, block_data),
                     min_size=1, max_size=12)


def _split_chunks(data):
    return [data[i:i + 16] for i in range(0, len(data), 16)]


class TestAESBlockKernels:
    @settings(max_examples=25, deadline=None)
    @given(key=keys, blocks=st.lists(st.binary(min_size=16, max_size=16),
                                     min_size=1, max_size=16))
    def test_encrypt_decrypt_all_kernels_agree(self, key, blocks):
        aes = AES128(key)
        expected_enc = [aes.encrypt_block_scalar(b) for b in blocks]
        expected_dec = [aes.decrypt_block_scalar(b) for b in blocks]
        for kernel in ("scalar", "table", "vector"):
            assert encrypt_blocks_kernel(aes, blocks, kernel) == expected_enc
            assert decrypt_blocks_kernel(aes, blocks, kernel) == expected_dec

    @settings(max_examples=25, deadline=None)
    @given(key=keys, blocks=st.lists(st.binary(min_size=16, max_size=16),
                                     min_size=1, max_size=16))
    def test_vector_round_trip(self, key, blocks):
        aes = AES128(key)
        encrypted = encrypt_blocks_kernel(aes, blocks, "vector")
        assert decrypt_blocks_kernel(aes, encrypted, "vector") == blocks


class TestCTRPadEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(key=keys, items=ctr_items,
           iv_tag=st.sampled_from((ENCRYPTION_IV, AUTHENTICATION_IV)))
    def test_bulk_transform_all_kernels_agree(self, key, items, iv_tag):
        aes = AES128(key)
        scalar = bulk_ctr_transform(aes, items, iv_tag, kernel="scalar")
        table = bulk_ctr_transform(aes, items, iv_tag, kernel="table")
        vector = bulk_ctr_transform_vector(key, items, iv_tag)
        assert scalar == table == vector

    @settings(max_examples=25, deadline=None)
    @given(key=keys, address=addresses, counter=counters, data=block_data)
    def test_vector_matches_single_block_reference(self, key, address,
                                                   counter, data):
        aes = AES128(key)
        expected = ctr_transform(aes, address, counter, data)
        got = bulk_ctr_transform_vector(key, [(address, counter, data)])
        assert got == [expected]

    @settings(max_examples=25, deadline=None)
    @given(key=keys, items=ctr_items)
    def test_vector_transform_is_self_inverse(self, key, items):
        once = bulk_ctr_transform_vector(key, items)
        back = bulk_ctr_transform_vector(
            key, [(a, c, ct) for (a, c, _), ct in zip(items, once)]
        )
        assert back == [data for _, _, data in items]

    @settings(max_examples=50, deadline=None)
    @given(address=addresses, counter=counters,
           num_chunks=st.integers(min_value=1, max_value=4),
           iv_tag=st.sampled_from((ENCRYPTION_IV, AUTHENTICATION_IV)))
    def test_seed_array_matches_make_seeds(self, address, counter,
                                           num_chunks, iv_tag):
        arr = make_seeds_array([address], [counter], num_chunks, iv_tag)
        flat = arr.tobytes()
        got = [flat[i * 16:(i + 1) * 16] for i in range(num_chunks)]
        assert got == make_seeds(address, counter, num_chunks, iv_tag)


class TestGHASHEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(h=keys, messages=st.lists(
        st.integers(min_value=0, max_value=4).flatmap(
            lambda n: st.binary(min_size=16 * n, max_size=16 * n)),
        min_size=1, max_size=12))
    def test_batched_matches_table_and_bitwise(self, h, messages):
        batched = ghash_chunks_many(h, messages)
        for message, digest in zip(messages, batched):
            chunks = _split_chunks(message)
            assert digest == ghash_chunks(h, chunks)
            assert digest == _ghash_chunks_scalar(h, chunks)

    @settings(max_examples=25, deadline=None)
    @given(h=keys, message=block_data)
    def test_kernel_dispatch_agrees(self, h, message):
        chunks = _split_chunks(message)
        digests = {ghash_chunks_kernel(h, chunks, kernel)
                   for kernel in ("scalar", "table", "vector")}
        assert len(digests) == 1


class TestGCMTagEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(key=keys, hkey=keys, items=ctr_items,
           mac_bits=st.sampled_from(VALID_MAC_BITS))
    def test_batched_macs_all_kernels_agree(self, key, hkey, items,
                                            mac_bits):
        aes = AES128(key)
        expected = [gcm_block_mac(aes, hkey, a, c, ct, mac_bits)
                    for a, c, ct in items]
        for kernel in ("scalar", "table"):
            assert gcm_block_macs(aes, hkey, items, mac_bits,
                                  kernel=kernel) == expected
        assert gcm_block_macs_vector(key, hkey, items, mac_bits) == expected

    @settings(max_examples=10, deadline=None)
    @given(key=keys, hkey=keys, address=addresses, counter=counters,
           mac_bits=st.sampled_from(VALID_MAC_BITS))
    def test_zero_length_ciphertext(self, key, hkey, address, counter,
                                    mac_bits):
        aes = AES128(key)
        items = [(address, counter, b"")]
        expected = [gcm_block_mac(aes, hkey, address, counter, b"",
                                  mac_bits)]
        assert gcm_block_macs_vector(key, hkey, items, mac_bits) == expected


class TestSplitVsMonolithicCounters:
    """A split counter encrypts exactly like its concatenated value.

    The paper's split scheme feeds ``major << minor_bits | minor`` into
    the same seed slot a monolithic counter occupies, so pads — and thus
    ciphertexts — must agree between the two schemes whenever the
    concatenated value equals the monolithic value, on every kernel.
    """

    @settings(max_examples=25, deadline=None)
    @given(key=keys, address=addresses, data=block_data,
           major=st.integers(min_value=0, max_value=(1 << 60) - 1),
           minor=st.integers(min_value=0, max_value=(1 << 7) - 1),
           minor_bits=st.integers(min_value=1, max_value=16))
    def test_concat_counter_matches_monolithic(self, key, address, data,
                                               major, minor, minor_bits):
        minor &= (1 << minor_bits) - 1
        scheme = SplitCounterScheme(minor_bits=minor_bits)
        concatenated = scheme._concat(major, minor)
        aes = AES128(key)
        mono = ctr_transform(aes, address, concatenated, data)
        for kernel in ("scalar", "table"):
            assert bulk_ctr_transform(aes, [(address, concatenated, data)],
                                      kernel=kernel) == [mono]
        assert bulk_ctr_transform_vector(
            key, [(address, concatenated, data)]) == [mono]

    @settings(max_examples=50, deadline=None)
    @given(major=st.integers(min_value=0, max_value=(1 << 60) - 1),
           minor=st.integers(min_value=0, max_value=(1 << 7) - 1),
           address=addresses)
    def test_concat_seed_truncation_matches_scalar(self, major, minor,
                                                   address):
        # Concatenated values can exceed 64 bits; both paths must keep
        # the same low-order 64 bits in the seed.
        scheme = SplitCounterScheme(minor_bits=7)
        value = scheme._concat(major, minor)
        arr = make_seeds_array([address], [value], 1, ENCRYPTION_IV)
        assert arr.tobytes() == make_seed(address, value, ENCRYPTION_IV)
