"""AES-128-GCM against NIST CAVP known-answer vectors.

Vectors are taken from the CAVP GCM response files
(``gcmEncryptExtIV128.rsp`` / ``gcmDecrypt128.rsp``), complementing the
McGrew-Viega vectors in ``test_gcm.py``.  They exercise the table-driven
GHASH and AES kernels end to end through the public AEAD interface.
"""

import pytest

from repro.crypto.gcm import AESGCM, AuthenticationError
from repro.crypto.ghash import GHASH, ghash, ghash_chunks

# (key, iv, plaintext, aad, ciphertext, tag) — all hex
CAVP_ENCRYPT_VECTORS = [
    # [Keylen=128][IVlen=96][PTlen=0][AADlen=0][Taglen=128] Count = 0
    ("11754cd72aec309bf52f7687212e8957",
     "3c819d9a9bed087615030b65",
     "", "",
     "",
     "250327c674aaf477aef2675748cf6971"),
    # same section, Count = 1
    ("ca47248ac0b6f8372a97ac43508308ed",
     "ffd2b598feabc9019262d2be",
     "", "",
     "",
     "60d20404af527d248d893ae495707d1a"),
    # [PTlen=128][AADlen=0] Count = 0
    ("7fddb57453c241d03efbed3ac44e371c",
     "ee283a3fc75575e33efd4887",
     "d5de42b461646c255c87bd2962d3b9a2", "",
     "2ccda4a5415cb91e135c2a0f78c9b2fd",
     "b36d1df9b9d5e596f83e8b7f52971cb3"),
    # [PTlen=128][AADlen=128] Count = 0
    ("c939cc13397c1d37de6ae0e1cb7c423c",
     "b3d8cc017cbb89b39e0f67e2",
     "c3b3c41f113a31b73d9a5cd432103069",
     "24825602bd12a984e0092d3e448eda5f",
     "93fe7d9e9bfd10348a5606e5cafa7354",
     "0032a1dc85f1c9786925a2e71d8272dd"),
]


class TestCAVPEncrypt:
    @pytest.mark.parametrize("key,iv,pt,aad,ct,tag", CAVP_ENCRYPT_VECTORS,
                             ids=[f"vec{i}" for i in
                                  range(len(CAVP_ENCRYPT_VECTORS))])
    def test_seal(self, key, iv, pt, aad, ct, tag):
        gcm = AESGCM(bytes.fromhex(key))
        result = gcm.seal(bytes.fromhex(iv), bytes.fromhex(pt),
                          bytes.fromhex(aad))
        assert result.ciphertext.hex() == ct
        assert result.tag.hex() == tag

    @pytest.mark.parametrize("key,iv,pt,aad,ct,tag", CAVP_ENCRYPT_VECTORS,
                             ids=[f"vec{i}" for i in
                                  range(len(CAVP_ENCRYPT_VECTORS))])
    def test_open_round_trip(self, key, iv, pt, aad, ct, tag):
        gcm = AESGCM(bytes.fromhex(key))
        opened = gcm.open(bytes.fromhex(iv), bytes.fromhex(ct),
                          bytes.fromhex(tag), bytes.fromhex(aad))
        assert opened.hex() == pt


class TestCAVPDecryptFail:
    """CAVP decrypt files include FAIL cases: a corrupted tag must reject."""

    @pytest.mark.parametrize("key,iv,pt,aad,ct,tag", CAVP_ENCRYPT_VECTORS,
                             ids=[f"vec{i}" for i in
                                  range(len(CAVP_ENCRYPT_VECTORS))])
    def test_flipped_tag_bit_rejected(self, key, iv, pt, aad, ct, tag):
        gcm = AESGCM(bytes.fromhex(key))
        bad = bytearray(bytes.fromhex(tag))
        bad[0] ^= 0x01
        with pytest.raises(AuthenticationError):
            gcm.open(bytes.fromhex(iv), bytes.fromhex(ct), bytes(bad),
                     bytes.fromhex(aad))

    def test_tampered_aad_rejected(self):
        key, iv, pt, aad, ct, tag = CAVP_ENCRYPT_VECTORS[3]
        gcm = AESGCM(bytes.fromhex(key))
        with pytest.raises(AuthenticationError):
            gcm.open(bytes.fromhex(iv), bytes.fromhex(ct),
                     bytes.fromhex(tag), bytes.fromhex(aad)[:-1] + b"\x00")


class TestGHASHObject:
    """The cached-table GHASH object must agree with the functional API."""

    def test_call_matches_module_function(self):
        h = bytes.fromhex("66e94bd4ef8a2c3b884cfa59ca342b2e")
        aad = b"header bytes"
        ct = bytes(range(48))
        assert GHASH(h)(aad, ct) == ghash(h, aad, ct)

    def test_hash_chunks_matches_module_function(self):
        h = bytes.fromhex("dc95c078a2408989ad48a21492842087")
        chunks = [bytes([i]) * 16 for i in range(6)]
        assert GHASH(h).hash_chunks(chunks) == ghash_chunks(h, chunks)

    def test_repeated_keys_share_cached_tables(self):
        h = bytes(range(16))
        first = GHASH(h)
        second = GHASH(h)
        assert first._table is second._table
