"""AES-128-GCM against NIST CAVP known-answer vectors.

Vectors are taken from the CAVP GCM response files
(``gcmEncryptExtIV128.rsp`` / ``gcmDecrypt128.rsp``), complementing the
McGrew-Viega vectors in ``test_gcm.py``.  They exercise the table-driven
GHASH and AES kernels end to end through the public AEAD interface.
"""

import pytest

from repro.crypto.aes import AES128
from repro.crypto.gcm import AESGCM, AuthenticationError
from repro.crypto.ghash import GHASH, ghash, ghash_chunks
from repro.crypto.vector import (
    HAVE_NUMPY,
    _ghash_chunks_scalar,
    ghash_chunks_many,
    vector_aes,
)

# (key, iv, plaintext, aad, ciphertext, tag) — all hex
CAVP_ENCRYPT_VECTORS = [
    # [Keylen=128][IVlen=96][PTlen=0][AADlen=0][Taglen=128] Count = 0
    ("11754cd72aec309bf52f7687212e8957",
     "3c819d9a9bed087615030b65",
     "", "",
     "",
     "250327c674aaf477aef2675748cf6971"),
    # same section, Count = 1
    ("ca47248ac0b6f8372a97ac43508308ed",
     "ffd2b598feabc9019262d2be",
     "", "",
     "",
     "60d20404af527d248d893ae495707d1a"),
    # [PTlen=128][AADlen=0] Count = 0
    ("7fddb57453c241d03efbed3ac44e371c",
     "ee283a3fc75575e33efd4887",
     "d5de42b461646c255c87bd2962d3b9a2", "",
     "2ccda4a5415cb91e135c2a0f78c9b2fd",
     "b36d1df9b9d5e596f83e8b7f52971cb3"),
    # [PTlen=128][AADlen=128] Count = 0
    ("c939cc13397c1d37de6ae0e1cb7c423c",
     "b3d8cc017cbb89b39e0f67e2",
     "c3b3c41f113a31b73d9a5cd432103069",
     "24825602bd12a984e0092d3e448eda5f",
     "93fe7d9e9bfd10348a5606e5cafa7354",
     "0032a1dc85f1c9786925a2e71d8272dd"),
]


class TestCAVPEncrypt:
    @pytest.mark.parametrize("key,iv,pt,aad,ct,tag", CAVP_ENCRYPT_VECTORS,
                             ids=[f"vec{i}" for i in
                                  range(len(CAVP_ENCRYPT_VECTORS))])
    def test_seal(self, key, iv, pt, aad, ct, tag):
        gcm = AESGCM(bytes.fromhex(key))
        result = gcm.seal(bytes.fromhex(iv), bytes.fromhex(pt),
                          bytes.fromhex(aad))
        assert result.ciphertext.hex() == ct
        assert result.tag.hex() == tag

    @pytest.mark.parametrize("key,iv,pt,aad,ct,tag", CAVP_ENCRYPT_VECTORS,
                             ids=[f"vec{i}" for i in
                                  range(len(CAVP_ENCRYPT_VECTORS))])
    def test_open_round_trip(self, key, iv, pt, aad, ct, tag):
        gcm = AESGCM(bytes.fromhex(key))
        opened = gcm.open(bytes.fromhex(iv), bytes.fromhex(ct),
                          bytes.fromhex(tag), bytes.fromhex(aad))
        assert opened.hex() == pt


class TestCAVPDecryptFail:
    """CAVP decrypt files include FAIL cases: a corrupted tag must reject."""

    @pytest.mark.parametrize("key,iv,pt,aad,ct,tag", CAVP_ENCRYPT_VECTORS,
                             ids=[f"vec{i}" for i in
                                  range(len(CAVP_ENCRYPT_VECTORS))])
    def test_flipped_tag_bit_rejected(self, key, iv, pt, aad, ct, tag):
        gcm = AESGCM(bytes.fromhex(key))
        bad = bytearray(bytes.fromhex(tag))
        bad[0] ^= 0x01
        with pytest.raises(AuthenticationError):
            gcm.open(bytes.fromhex(iv), bytes.fromhex(ct), bytes(bad),
                     bytes.fromhex(aad))

    def test_tampered_aad_rejected(self):
        key, iv, pt, aad, ct, tag = CAVP_ENCRYPT_VECTORS[3]
        gcm = AESGCM(bytes.fromhex(key))
        with pytest.raises(AuthenticationError):
            gcm.open(bytes.fromhex(iv), bytes.fromhex(ct),
                     bytes.fromhex(tag), bytes.fromhex(aad)[:-1] + b"\x00")


class TestCAVPTruncatedTags:
    """CAVP answers at the paper's truncated ``mac_bits`` presets.

    SP 800-38D section 5.2.1.2 defines a t-bit tag as ``MSB_t`` of the
    full GCM block, so the CAVP 128-bit answers fix the 64- and 32-bit
    answers exactly — the same truncation rule ``gcm_block_mac`` applies
    for the paper's 64- and 32-bit authentication codes.
    """

    @pytest.mark.parametrize("tag_bits", [32, 64])
    @pytest.mark.parametrize("key,iv,pt,aad,ct,tag", CAVP_ENCRYPT_VECTORS,
                             ids=[f"vec{i}" for i in
                                  range(len(CAVP_ENCRYPT_VECTORS))])
    def test_seal_truncated(self, key, iv, pt, aad, ct, tag, tag_bits):
        gcm = AESGCM(bytes.fromhex(key), tag_length=tag_bits // 8)
        result = gcm.seal(bytes.fromhex(iv), bytes.fromhex(pt),
                          bytes.fromhex(aad))
        assert result.ciphertext.hex() == ct
        assert result.tag == bytes.fromhex(tag)[: tag_bits // 8]

    @pytest.mark.parametrize("tag_bits", [32, 64])
    @pytest.mark.parametrize("key,iv,pt,aad,ct,tag", CAVP_ENCRYPT_VECTORS,
                             ids=[f"vec{i}" for i in
                                  range(len(CAVP_ENCRYPT_VECTORS))])
    def test_open_truncated(self, key, iv, pt, aad, ct, tag, tag_bits):
        gcm = AESGCM(bytes.fromhex(key), tag_length=tag_bits // 8)
        opened = gcm.open(bytes.fromhex(iv), bytes.fromhex(ct),
                          bytes.fromhex(tag)[: tag_bits // 8],
                          bytes.fromhex(aad))
        assert opened.hex() == pt

    @pytest.mark.parametrize("tag_bits", [32, 64])
    def test_flipped_truncated_tag_rejected(self, tag_bits):
        key, iv, pt, aad, ct, tag = CAVP_ENCRYPT_VECTORS[2]
        gcm = AESGCM(bytes.fromhex(key), tag_length=tag_bits // 8)
        bad = bytearray(bytes.fromhex(tag)[: tag_bits // 8])
        bad[-1] ^= 0x80
        with pytest.raises(AuthenticationError):
            gcm.open(bytes.fromhex(iv), bytes.fromhex(ct), bytes(bad),
                     bytes.fromhex(aad))


def _pad16(data: bytes) -> bytes:
    remainder = len(data) % 16
    return data + b"\x00" * (16 - remainder) if remainder else data


def _encrypt_one(key: bytes, block: bytes, kernel: str) -> bytes:
    aes = AES128(key)
    if kernel == "scalar":
        return aes.encrypt_block_scalar(block)
    if kernel == "vector":
        return vector_aes(key).encrypt_blocks([block])[0]
    return aes.encrypt_block(block)


def _ghash_kernel(h: bytes, chunks: list[bytes], kernel: str) -> bytes:
    if kernel == "scalar":
        return _ghash_chunks_scalar(h, chunks)
    if kernel == "vector":
        return ghash_chunks_many(h, [b"".join(chunks)])[0]
    return ghash_chunks(h, chunks)


KERNEL_IDS = ["scalar", "table",
              pytest.param("vector",
                           marks=pytest.mark.skipif(
                               not HAVE_NUMPY,
                               reason="vector kernel needs numpy"))]


class TestCAVPAllKernels:
    """Recompute every CAVP tag from each kernel's own primitives.

    The subkey derivation, GHASH chain, and final pad encryption are all
    rebuilt from the named kernel's AES and GHASH entry points — so a
    kernel that diverged anywhere in the GCM pipeline would miss the
    known answer, at full and truncated tag lengths alike.
    """

    @pytest.mark.parametrize("kernel", KERNEL_IDS)
    @pytest.mark.parametrize("tag_bits", [32, 64, 128])
    @pytest.mark.parametrize("key,iv,pt,aad,ct,tag", CAVP_ENCRYPT_VECTORS,
                             ids=[f"vec{i}" for i in
                                  range(len(CAVP_ENCRYPT_VECTORS))])
    def test_tag_from_kernel_primitives(self, key, iv, pt, aad, ct, tag,
                                        tag_bits, kernel):
        key_b, iv_b = bytes.fromhex(key), bytes.fromhex(iv)
        aad_b, ct_b = bytes.fromhex(aad), bytes.fromhex(ct)
        h = _encrypt_one(key_b, bytes(16), kernel)
        padded = _pad16(aad_b) + _pad16(ct_b)
        chunks = [padded[i:i + 16] for i in range(0, len(padded), 16)]
        length_block = ((len(aad_b) * 8).to_bytes(8, "big")
                        + (len(ct_b) * 8).to_bytes(8, "big"))
        digest = _ghash_kernel(h, chunks + [length_block], kernel)
        j0 = iv_b + b"\x00\x00\x00\x01"
        pad = _encrypt_one(key_b, j0, kernel)
        computed = bytes(d ^ p for d, p in zip(digest, pad))
        assert computed[: tag_bits // 8] == bytes.fromhex(tag)[: tag_bits // 8]


class TestGHASHObject:
    """The cached-table GHASH object must agree with the functional API."""

    def test_call_matches_module_function(self):
        h = bytes.fromhex("66e94bd4ef8a2c3b884cfa59ca342b2e")
        aad = b"header bytes"
        ct = bytes(range(48))
        assert GHASH(h)(aad, ct) == ghash(h, aad, ct)

    def test_hash_chunks_matches_module_function(self):
        h = bytes.fromhex("dc95c078a2408989ad48a21492842087")
        chunks = [bytes([i]) * 16 for i in range(6)]
        assert GHASH(h).hash_chunks(chunks) == ghash_chunks(h, chunks)

    def test_repeated_keys_share_cached_tables(self):
        h = bytes(range(16))
        first = GHASH(h)
        second = GHASH(h)
        assert first._table is second._table
