"""Counter-mode seeds and pads: layout, uniqueness, and involution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES128
from repro.crypto.ctr import (
    AUTHENTICATION_IV,
    CHUNK_SIZE,
    ENCRYPTION_IV,
    ctr_transform,
    generate_pads,
    make_seed,
    xor_bytes,
)

addresses = st.integers(min_value=0, max_value=2**40).map(lambda a: a * 16)
counters = st.integers(min_value=0, max_value=2**64 - 1)


class TestSeedLayout:
    def test_seed_is_one_aes_block(self):
        assert len(make_seed(0, 0, ENCRYPTION_IV)) == 16

    def test_seed_fields(self):
        seed = make_seed(0x12340, 0xABCD, ENCRYPTION_IV)
        assert int.from_bytes(seed[0:6], "big") == 0x12340 // 16
        assert int.from_bytes(seed[6:14], "big") == 0xABCD
        assert int.from_bytes(seed[14:16], "big") == ENCRYPTION_IV

    def test_rejects_misaligned_address(self):
        with pytest.raises(ValueError):
            make_seed(7, 0, ENCRYPTION_IV)

    @given(addr=addresses, ctr=counters)
    def test_iv_domain_separation(self, addr, ctr):
        """The same (address, counter) never yields the same seed for
        encryption and authentication pads — the pad-reuse requirement."""
        assert (make_seed(addr, ctr, ENCRYPTION_IV)
                != make_seed(addr, ctr, AUTHENTICATION_IV))

    @given(addr=addresses, c1=counters, c2=counters)
    def test_counter_separation(self, addr, c1, c2):
        if c1 != c2:
            assert (make_seed(addr, c1, ENCRYPTION_IV)
                    != make_seed(addr, c2, ENCRYPTION_IV))

    @given(a1=addresses, a2=addresses, ctr=counters)
    def test_address_separation(self, a1, a2, ctr):
        if a1 != a2:
            assert (make_seed(a1, ctr, ENCRYPTION_IV)
                    != make_seed(a2, ctr, ENCRYPTION_IV))


class TestTransform:
    @settings(max_examples=20)
    @given(data=st.binary(min_size=64, max_size=64), ctr=counters)
    def test_involution(self, data, ctr):
        aes = AES128(bytes(16))
        ct = ctr_transform(aes, 0x1000, ctr, data)
        assert ctr_transform(aes, 0x1000, ctr, ct) == data

    def test_same_counter_same_pad(self):
        """Pad reuse is exactly what the attacker exploits: verify the
        XOR relation holds so the attack tests rest on solid ground."""
        aes = AES128(bytes(16))
        p1, p2 = b"\xaa" * 64, b"\x55" * 64
        c1 = ctr_transform(aes, 0, 5, p1)
        c2 = ctr_transform(aes, 0, 5, p2)
        assert xor_bytes(c1, c2) == xor_bytes(p1, p2)

    def test_different_counters_break_relation(self):
        aes = AES128(bytes(16))
        p1, p2 = b"\xaa" * 64, b"\x55" * 64
        c1 = ctr_transform(aes, 0, 5, p1)
        c2 = ctr_transform(aes, 0, 6, p2)
        assert xor_bytes(c1, c2) != xor_bytes(p1, p2)

    def test_rejects_partial_chunks(self):
        with pytest.raises(ValueError):
            ctr_transform(AES128(bytes(16)), 0, 0, b"x" * 60)

    def test_pads_match_manual_aes(self):
        aes = AES128(bytes(16))
        pads = generate_pads(aes, 0x2000, 9, 4)
        assert len(pads) == 4
        for i, pad in enumerate(pads):
            seed = make_seed(0x2000 + i * CHUNK_SIZE, 9, ENCRYPTION_IV)
            assert pad == aes.encrypt_block(seed)


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\xff\x00", b"\x0f\xf0") == b"\xf0\xf0"

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    @given(a=st.binary(min_size=16, max_size=16),
           b=st.binary(min_size=16, max_size=16))
    def test_self_inverse(self, a, b):
        assert xor_bytes(xor_bytes(a, b), b) == a
