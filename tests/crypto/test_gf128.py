"""GF(2^128) field arithmetic properties (GHASH's multiplication)."""

from hypothesis import given, strategies as st

from repro.crypto.gf128 import (
    GF128Element,
    block_to_int,
    gf128_mul,
    int_to_block,
)

elements = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestConversions:
    def test_roundtrip(self):
        data = bytes(range(16))
        assert int_to_block(block_to_int(data)) == data

    def test_rejects_wrong_length(self):
        import pytest
        with pytest.raises(ValueError):
            block_to_int(b"short")


class TestFieldAxioms:
    @given(a=elements, b=elements)
    def test_commutative(self, a, b):
        assert gf128_mul(a, b) == gf128_mul(b, a)

    @given(a=elements, b=elements, c=elements)
    def test_associative(self, a, b, c):
        assert gf128_mul(gf128_mul(a, b), c) == gf128_mul(a, gf128_mul(b, c))

    @given(a=elements, b=elements, c=elements)
    def test_distributes_over_xor(self, a, b, c):
        assert gf128_mul(a, b ^ c) == gf128_mul(a, b) ^ gf128_mul(a, c)

    @given(a=elements)
    def test_zero_annihilates(self, a):
        assert gf128_mul(a, 0) == 0

    def test_identity_element(self):
        # In GCM bit ordering the multiplicative identity is the block with
        # only its first bit set (x^0 -> MSB of byte 0).
        one = 1 << 127
        for value in (1, 0xDEADBEEF, (1 << 128) - 1):
            assert gf128_mul(value, one) == value

    @given(a=elements.filter(lambda x: x != 0),
           b=elements.filter(lambda x: x != 0))
    def test_no_zero_divisors(self, a, b):
        assert gf128_mul(a, b) != 0


class TestWrapper:
    @given(a=elements, b=elements)
    def test_element_ops_match_functions(self, a, b):
        ea, eb = GF128Element(a), GF128Element(b)
        assert (ea * eb).value == gf128_mul(a, b)
        assert (ea + eb).value == a ^ b
        assert (ea - eb).value == a ^ b  # characteristic 2

    def test_bytes_roundtrip(self):
        e = GF128Element(bytes(range(16)))
        assert GF128Element(e.to_bytes()) == e

    def test_rejects_out_of_range(self):
        import pytest
        with pytest.raises(ValueError):
            GF128Element(1 << 128)
