"""AES-128 against FIPS-197 / SP 800-38A vectors plus properties."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import (
    AES128,
    SBOX,
    INV_SBOX,
    decrypt_blocks,
    encrypt_blocks,
    expand_key,
    gf_mul,
)


class TestKnownVectors:
    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        cipher = AES128(key)
        assert cipher.encrypt_block(plaintext) == expected
        assert cipher.decrypt_block(expected) == plaintext

    @pytest.mark.parametrize("plaintext,ciphertext", [
        ("6bc1bee22e409f96e93d7e117393172a",
         "3ad77bb40d7a3660a89ecaf32466ef97"),
        ("ae2d8a571e03ac9c9eb76fac45af8e51",
         "f5d3d58503b9699de785895a96fdbaaf"),
        ("30c81c46a35ce411e5fbc1191a0a52ef",
         "43b1cd7f598ece23881b00e3ed030688"),
        ("f69f2445df4f9b17ad2b417be66c3710",
         "7b0c785e27e8ad3f8223207104725dd4"),
    ])
    def test_sp800_38a_ecb_vectors(self, plaintext, ciphertext):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        cipher = AES128(key)
        assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() == ciphertext


class TestStructure:
    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inv_sbox_inverts(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_sbox_known_entries(self):
        # FIPS-197 figure 7 spot checks
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_has_no_fixed_points(self):
        assert all(SBOX[x] != x for x in range(256))

    def test_key_expansion_shape(self):
        round_keys = expand_key(bytes(16))
        assert len(round_keys) == 11
        assert all(len(rk) == 16 for rk in round_keys)

    def test_key_expansion_first_round_key_is_key(self):
        key = bytes(range(16))
        assert bytes(expand_key(key)[0]) == key

    def test_gf_mul_known_values(self):
        # FIPS-197 section 4.2 example: {57} x {83} = {c1}
        assert gf_mul(0x57, 0x83) == 0xC1
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_gf_mul_identity_and_zero(self):
        for x in range(256):
            assert gf_mul(x, 1) == x
            assert gf_mul(x, 0) == 0


class TestErrors:
    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_rejects_wrong_block_size(self):
        cipher = AES128(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"tiny")
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(17))


class TestTableKernelMatchesScalar:
    """The table-driven fast path must agree with the reference rounds."""

    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    def test_encrypt_matches_scalar(self, key, block):
        cipher = AES128(key)
        assert cipher.encrypt_block(block) == cipher.encrypt_block_scalar(block)

    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    def test_decrypt_matches_scalar(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(block) == cipher.decrypt_block_scalar(block)


class TestBulk:
    def test_encrypt_blocks_matches_per_block(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        cipher = AES128(key)
        blocks = [bytes([i]) * 16 for i in range(23)]
        assert cipher.encrypt_blocks(blocks) == [
            cipher.encrypt_block(b) for b in blocks
        ]

    def test_decrypt_blocks_inverts_encrypt_blocks(self):
        cipher = AES128(bytes(range(16)))
        blocks = [i.to_bytes(16, "big") for i in range(17)]
        assert cipher.decrypt_blocks(cipher.encrypt_blocks(blocks)) == blocks

    def test_module_level_helpers(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        blocks = [bytes.fromhex("00112233445566778899aabbccddeeff")]
        out = encrypt_blocks(key, blocks)
        assert out == [bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")]
        assert decrypt_blocks(key, out) == blocks

    def test_empty_batch(self):
        assert encrypt_blocks(bytes(16), []) == []
        assert decrypt_blocks(bytes(16), []) == []

    def test_bulk_rejects_bad_block(self):
        with pytest.raises(ValueError):
            AES128(bytes(16)).encrypt_blocks([bytes(16), b"short"])


class TestProperties:
    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    def test_encryption_changes_data(self, key, block):
        # AES is a permutation without fixed points being astronomically
        # unlikely for random inputs; equality would signal a broken cipher.
        assert AES128(key).encrypt_block(block) != block or True
        # the meaningful invariant: same input -> same output (determinism)
        assert (AES128(key).encrypt_block(block)
                == AES128(key).encrypt_block(block))

    @given(block=st.binary(min_size=16, max_size=16))
    def test_different_keys_differ(self, block):
        a = AES128(bytes(16)).encrypt_block(block)
        b = AES128(bytes([1] + [0] * 15)).encrypt_block(block)
        assert a != b
