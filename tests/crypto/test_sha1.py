"""SHA-1 against FIPS-180 vectors; HMAC-SHA1 against RFC 2202."""

from hypothesis import given, settings, strategies as st

from repro.crypto.sha1 import hmac_sha1, sha1


class TestSHA1Vectors:
    def test_empty(self):
        assert sha1(b"").hex() == "da39a3ee5e6b4b0d3255bfef95601890afd80709"

    def test_abc(self):
        assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha1(msg).hex() == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

    def test_exactly_64_bytes(self):
        # forces the length encoding into a second block
        digest = sha1(b"a" * 64)
        assert digest.hex() == "0098ba824b5c16427bd7a1122a5a442a25ec644d"

    def test_million_a_prefix(self):
        # 1000 'a's (the full million is too slow in pure Python)
        assert sha1(b"a" * 1000).hex() == (
            "291e9a6c66994949b57ba5e650361e98fc36b1ba"
        )


class TestHMACVectors:
    def test_rfc2202_case_1(self):
        key = b"\x0b" * 20
        assert hmac_sha1(key, b"Hi There").hex() == (
            "b617318655057264e28bc0b6fb378c8ef146be00"
        )

    def test_rfc2202_case_2(self):
        assert hmac_sha1(b"Jefe", b"what do ya want for nothing?").hex() == (
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        )

    def test_rfc2202_case_3(self):
        assert hmac_sha1(b"\xaa" * 20, b"\xdd" * 50).hex() == (
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        )

    def test_rfc2202_long_key(self):
        key = b"\xaa" * 80  # longer than the block size: key gets hashed
        msg = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert hmac_sha1(key, msg).hex() == (
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        )


class TestProperties:
    @settings(max_examples=50)
    @given(message=st.binary(max_size=300))
    def test_digest_length(self, message):
        assert len(sha1(message)) == 20

    @given(message=st.binary(max_size=128))
    def test_deterministic(self, message):
        assert sha1(message) == sha1(message)

    @given(a=st.binary(max_size=64), b=st.binary(max_size=64))
    def test_distinct_messages_distinct_digests(self, a, b):
        if a != b:
            assert sha1(a) != sha1(b)

    @given(key=st.binary(min_size=1, max_size=100),
           message=st.binary(max_size=100))
    def test_hmac_key_sensitivity(self, key, message):
        other = bytes([key[0] ^ 1]) + key[1:]
        assert hmac_sha1(key, message) != hmac_sha1(other, message)
