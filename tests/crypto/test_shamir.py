"""Byte-wise Shamir sharing over GF(256): algebra, round-trip, secrecy."""

import itertools

import pytest

from repro.crypto.aes import AES128
from repro.crypto.shamir import (
    coefficient_blocks,
    gf_inv,
    gf_mul,
    reconstruct_block,
    split_block,
)

BLOCK = 64
AES = AES128(bytes(range(16)))


def make_shares(data, k, n, address=0x1000, counter=7):
    coeffs = coefficient_blocks(AES, address, counter, len(data), k)
    return split_block(data, coeffs, n)


class TestGF256:
    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    def test_mul_commutative_sample(self):
        for a, b in [(3, 7), (0x53, 0xCA), (255, 255), (2, 128)]:
            assert gf_mul(a, b) == gf_mul(b, a)

    def test_inv_is_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_known_product(self):
        # 0x53 * 0xCA = 0x01 in GF(2^8)/0x11B (classic AES test vector)
        assert gf_mul(0x53, 0xCA) == 0x01


class TestSplitReconstruct:
    @pytest.mark.parametrize(("k", "n"), [(2, 2), (2, 3), (3, 4), (5, 8)])
    def test_any_k_shares_reconstruct(self, k, n):
        data = bytes((i * 37 + 11) % 256 for i in range(BLOCK))
        shares = make_shares(data, k, n)
        assert len(shares) == n
        for subset in itertools.combinations(range(n), k):
            picked = [(s, shares[s]) for s in subset]
            assert reconstruct_block(picked) == data

    def test_fewer_than_k_shares_do_not_reconstruct(self):
        data = b"\xAB" * BLOCK
        shares = make_shares(data, 3, 4)
        assert reconstruct_block([(0, shares[0]), (1, shares[1])]) != data

    def test_deterministic(self):
        data = bytes(range(BLOCK))
        assert make_shares(data, 2, 3) == make_shares(data, 2, 3)

    def test_counter_separates_sharings(self):
        data = bytes(range(BLOCK))
        a = coefficient_blocks(AES, 0x1000, 1, BLOCK, 2)
        b = coefficient_blocks(AES, 0x1000, 2, BLOCK, 2)
        assert a != b
        assert split_block(data, a, 3) != split_block(data, b, 3)

    def test_address_separates_sharings(self):
        data = bytes(range(BLOCK))
        a = coefficient_blocks(AES, 0x1000, 1, BLOCK, 2)
        b = coefficient_blocks(AES, 0x2000, 1, BLOCK, 2)
        assert split_block(data, a, 3) != split_block(data, b, 3)

    def test_no_share_equals_plaintext(self):
        data = b"S3CRET-PAYLOAD!!".ljust(BLOCK, b"x")
        for share in make_shares(data, 2, 3):
            assert share != data

    def test_validation(self):
        data = bytes(BLOCK)
        with pytest.raises(ValueError):
            make_shares(data, 1, 3)          # k < 2: share 0 = plaintext
        with pytest.raises(ValueError):
            make_shares(data, 4, 3)          # k > n
        with pytest.raises(ValueError):
            make_shares(data, 2, 17)         # n > MAX_SHARES
