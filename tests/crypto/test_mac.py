"""Per-block authentication codes (GCM and SHA constructions)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES128
from repro.crypto.mac import (
    VALID_MAC_BITS,
    gcm_block_mac,
    macs_per_block,
    sha_block_mac,
)

BLOCK = bytes(range(64))


def _gcm_env():
    aes = AES128(bytes(16))
    return aes, aes.encrypt_block(bytes(16))


class TestGCMBlockMAC:
    @pytest.mark.parametrize("bits", VALID_MAC_BITS)
    def test_truncation(self, bits):
        aes, h = _gcm_env()
        assert len(gcm_block_mac(aes, h, 0, 0, BLOCK, bits)) == bits // 8

    def test_rejects_invalid_width(self):
        aes, h = _gcm_env()
        with pytest.raises(ValueError):
            gcm_block_mac(aes, h, 0, 0, BLOCK, 48)

    def test_counter_sensitivity(self):
        aes, h = _gcm_env()
        assert (gcm_block_mac(aes, h, 0, 1, BLOCK)
                != gcm_block_mac(aes, h, 0, 2, BLOCK))

    def test_address_sensitivity(self):
        aes, h = _gcm_env()
        assert (gcm_block_mac(aes, h, 0, 1, BLOCK)
                != gcm_block_mac(aes, h, 64, 1, BLOCK))

    @settings(max_examples=20)
    @given(data=st.binary(min_size=64, max_size=64))
    def test_content_sensitivity(self, data):
        aes, h = _gcm_env()
        if data != BLOCK:
            assert (gcm_block_mac(aes, h, 0, 1, data)
                    != gcm_block_mac(aes, h, 0, 1, BLOCK))

    def test_rejects_partial_chunks(self):
        aes, h = _gcm_env()
        with pytest.raises(ValueError):
            gcm_block_mac(aes, h, 0, 0, b"x" * 60)


class TestSHABlockMAC:
    @pytest.mark.parametrize("bits", VALID_MAC_BITS)
    def test_truncation(self, bits):
        assert len(sha_block_mac(b"key", 0, 0, BLOCK, bits)) == bits // 8

    def test_key_sensitivity(self):
        assert (sha_block_mac(b"key-a", 0, 0, BLOCK)
                != sha_block_mac(b"key-b", 0, 0, BLOCK))

    def test_counter_and_address_sensitivity(self):
        base = sha_block_mac(b"k", 0, 0, BLOCK)
        assert sha_block_mac(b"k", 64, 0, BLOCK) != base
        assert sha_block_mac(b"k", 0, 1, BLOCK) != base


class TestArity:
    def test_macs_per_block(self):
        assert macs_per_block(64, 64) == 8
        assert macs_per_block(64, 128) == 4
        assert macs_per_block(64, 32) == 16
        assert macs_per_block(32, 64) == 4
