"""AES-GCM against the McGrew-Viega / NIST test vectors, plus properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES128
from repro.crypto.gcm import AESGCM, AuthenticationError, constant_time_equal
from repro.crypto.ghash import ghash, ghash_chunks


class TestNISTVectors:
    def test_case_1_empty(self):
        gcm = AESGCM(bytes(16))
        result = gcm.seal(bytes(12), b"")
        assert result.ciphertext == b""
        assert result.tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_case_2_zero_block(self):
        gcm = AESGCM(bytes(16))
        result = gcm.seal(bytes(12), bytes(16))
        assert result.ciphertext.hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert result.tag.hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_case_3_full_blocks(self):
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        pt = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
        )
        result = AESGCM(key).seal(iv, pt)
        assert result.ciphertext.hex() == (
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
        )
        assert result.tag.hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"

    def test_case_4_with_aad(self):
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        pt = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
        )
        aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
        result = AESGCM(key).seal(iv, pt, aad)
        assert result.tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"

    def test_non_96bit_iv(self):
        # test case 6-style: IV handled via GHASH when not 12 bytes
        gcm = AESGCM(bytes(16))
        result = gcm.seal(bytes(8), bytes(16))
        assert gcm.open(bytes(8), result.ciphertext, result.tag) == bytes(16)


class TestAuthentication:
    def test_open_rejects_bad_tag(self):
        gcm = AESGCM(bytes(16))
        result = gcm.seal(bytes(12), b"hello world!")
        bad_tag = bytes(x ^ 1 for x in result.tag)
        with pytest.raises(AuthenticationError):
            gcm.open(bytes(12), result.ciphertext, bad_tag)

    def test_open_rejects_tampered_ciphertext(self):
        gcm = AESGCM(bytes(16))
        result = gcm.seal(bytes(12), b"hello world!")
        tampered = bytes([result.ciphertext[0] ^ 0x80]) + result.ciphertext[1:]
        with pytest.raises(AuthenticationError):
            gcm.open(bytes(12), tampered, result.tag)

    def test_open_rejects_wrong_aad(self):
        gcm = AESGCM(bytes(16))
        result = gcm.seal(bytes(12), b"payload", aad=b"header-A")
        with pytest.raises(AuthenticationError):
            gcm.open(bytes(12), result.ciphertext, result.tag, aad=b"header-B")

    def test_truncated_tag_lengths(self):
        for tag_length in (4, 8, 12, 16):
            gcm = AESGCM(bytes(16), tag_length=tag_length)
            result = gcm.seal(bytes(12), b"data")
            assert len(result.tag) == tag_length
            assert gcm.open(bytes(12), result.ciphertext, result.tag) == b"data"

    def test_rejects_bad_tag_length(self):
        with pytest.raises(ValueError):
            AESGCM(bytes(16), tag_length=2)


class TestProperties:
    @settings(max_examples=25)
    @given(key=st.binary(min_size=16, max_size=16),
           iv=st.binary(min_size=12, max_size=12),
           plaintext=st.binary(max_size=200),
           aad=st.binary(max_size=64))
    def test_seal_open_roundtrip(self, key, iv, plaintext, aad):
        gcm = AESGCM(key)
        result = gcm.seal(iv, plaintext, aad)
        assert gcm.open(iv, result.ciphertext, result.tag, aad) == plaintext

    @settings(max_examples=25)
    @given(plaintext=st.binary(min_size=1, max_size=64))
    def test_ciphertext_length_matches(self, plaintext):
        result = AESGCM(bytes(16)).seal(bytes(12), plaintext)
        assert len(result.ciphertext) == len(plaintext)


class TestGHASH:
    def test_ghash_chunks_matches_manual_chain(self):
        h = AES128(bytes(16)).encrypt_block(bytes(16))
        chunks = [bytes([i] * 16) for i in range(4)]
        from repro.crypto.gf128 import block_to_int, gf128_mul, int_to_block
        y = 0
        h_int = block_to_int(h)
        for chunk in chunks:
            y = gf128_mul(y ^ block_to_int(chunk), h_int)
        assert ghash_chunks(h, chunks) == int_to_block(y)

    def test_ghash_chunks_rejects_misaligned(self):
        with pytest.raises(ValueError):
            ghash_chunks(bytes(16), [b"short"])

    def test_ghash_empty_inputs(self):
        h = AES128(bytes(16)).encrypt_block(bytes(16))
        assert len(ghash(h, b"", b"")) == 16


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal_content(self):
        assert not constant_time_equal(b"abc", b"abd")

    def test_unequal_length(self):
        assert not constant_time_equal(b"abc", b"abcd")
