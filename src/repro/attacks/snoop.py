"""Passive snooping attacks on data secrecy.

The snooper records every block that crosses the memory bus.  Against an
unencrypted system it reads secrets directly.  Against encryption it probes
for the two classic counter-mode failure modes:

* **plaintext visibility** — ciphertext equals (or contains) plaintext;
* **pad reuse** — two ciphertexts of the same address encrypted under the
  same (key, counter) pair XOR to the XOR of their plaintexts, so knowing
  either plaintext reveals the other.  This is the break that counter
  rollback attacks try to induce.
"""

from __future__ import annotations

from repro.attacks.base import AttackReport
from repro.core.secure_memory import SecureMemorySystem
from repro.crypto.ctr import xor_bytes


class BusSnooper:
    """Records DRAM images of chosen addresses over time."""

    def __init__(self, system: SecureMemorySystem):
        self.system = system
        self._recordings: dict[int, list[bytes]] = {}

    def record(self, address: int) -> bytes:
        """Snapshot the current DRAM image of one block."""
        image = self.system.dram.peek(address)
        self._recordings.setdefault(address, []).append(image)
        return image

    def recordings(self, address: int) -> list[bytes]:
        return list(self._recordings.get(address, []))


def snoop_secrecy_attack(system: SecureMemorySystem, address: int,
                         secret: bytes) -> AttackReport:
    """Write a known secret, snoop the bus, and look for it in DRAM.

    ``secret`` must be one block long.  The attack succeeds if the DRAM
    image contains the plaintext (no or broken encryption).  Passive
    snooping is never *detected* — there is nothing to detect — so the
    report's ``detected`` is always False and defence means the secret
    stayed unreadable.
    """
    system.write_block(address, secret)
    system.flush()
    image = system.dram.peek(address)
    leaked = image == secret or secret in image
    return AttackReport(
        attack="snoop-secrecy",
        detected=False,
        succeeded=leaked,
        details=(
            "plaintext visible on the bus" if leaked
            else "ciphertext reveals nothing"
        ),
        evidence={"dram_image": image, "secret": secret},
    )


def pad_reuse_probe(ciphertext_a: bytes, plaintext_a: bytes,
                    ciphertext_b: bytes, plaintext_b: bytes) -> bool:
    """Check whether two (plaintext, ciphertext) pairs share a pad.

    Under counter mode, c = p XOR pad; a repeated pad makes
    ``c_a XOR c_b == p_a XOR p_b``.  The attacker knows one plaintext and
    uses this relation to recover the other — the exact exploit the
    paper's counter-replay discussion (section 4.3) warns about.
    """
    return xor_bytes(ciphertext_a, ciphertext_b) == xor_bytes(
        plaintext_a, plaintext_b
    )
