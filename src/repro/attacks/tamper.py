"""Active data-tampering attacks (spoofing and splicing).

* **Spoofing** — overwrite a block's DRAM image with attacker-chosen bytes.
* **Splicing** — copy the ciphertext of one address over another, hoping
  the system accepts valid-looking ciphertext at the wrong location.  The
  address component of both the encryption seed and the MAC defeats this.
"""

from __future__ import annotations

from repro.attacks.base import AttackReport
from repro.auth.merkle import IntegrityViolation
from repro.core.secure_memory import SecureMemorySystem


def _drop_from_l2(system: SecureMemorySystem, address: int) -> None:
    """Ensure the victim will re-fetch from (tampered) DRAM.

    The on-chip copy is out of the attacker's reach, so the staging step
    evicts it; a real attacker simply waits for natural eviction.  Dirty
    contents are written back first so the attack targets fresh ciphertext.
    """
    line = system.l2.lookup(address)
    if line is None:
        return
    if line.dirty:
        system.l2.invalidate(address)
        system._write_back(address, bytes(line.payload))
    else:
        system.l2.invalidate(address)


def spoof_attack(system: SecureMemorySystem, address: int,
                 forged: bytes | None = None) -> AttackReport:
    """Overwrite a block in DRAM and see if the victim notices on re-read."""
    original_plaintext = system.read_block(address)
    # Ensure the block has really been through the write path: a block the
    # victim never wrote has no DRAM presence to forge (reads of virgin
    # memory never leave the chip).
    system.write_block(address, original_plaintext)
    system.flush()
    _drop_from_l2(system, address)
    image = bytearray(system.dram.peek(address))
    if forged is None:
        image[0] ^= 0xFF  # single-byte corruption
        forged = bytes(image)
    system.dram.poke(address, forged)
    try:
        observed = system.read_block(address)
    except IntegrityViolation as exc:
        return AttackReport(
            attack="spoof", detected=True, succeeded=False,
            details=str(exc),
        )
    changed = observed != original_plaintext
    return AttackReport(
        attack="spoof",
        detected=False,
        succeeded=changed,
        details=(
            "victim consumed forged data" if changed
            else "forgery had no effect"
        ),
        evidence={"observed": observed, "original": original_plaintext},
    )


def splice_attack(system: SecureMemorySystem, source: int,
                  target: int) -> AttackReport:
    """Relocate valid ciphertext from ``source`` over ``target``."""
    system.write_block(source, system.read_block(source))
    original_target = system.read_block(target)
    system.write_block(target, original_target)
    system.flush()
    _drop_from_l2(system, target)
    system.dram.poke(target, system.dram.peek(source))
    try:
        observed = system.read_block(target)
    except IntegrityViolation as exc:
        return AttackReport(
            attack="splice", detected=True, succeeded=False,
            details=str(exc),
        )
    changed = observed != original_target
    return AttackReport(
        attack="splice",
        detected=False,
        succeeded=changed,
        details=(
            "victim consumed relocated ciphertext" if changed
            else "splice had no effect"
        ),
    )
