"""Replay attacks: roll memory back to a previously observed valid state.

The attacker records a (ciphertext, MAC-code-block) pair at time t0, lets
the victim overwrite the block, and then restores the recording.  Both the
data and its authentication code are *individually* valid — only a Merkle
tree anchored in an on-chip root can notice that the pair is stale, which
is why the paper (like prior work) builds one.  The attack is staged at two
strengths: data-only replay (caught at the leaf MAC) and data + code-block
replay (caught one level further up the tree).
"""

from __future__ import annotations

from repro.attacks.base import AttackReport
from repro.auth.merkle import IntegrityViolation
from repro.attacks.tamper import _drop_from_l2
from repro.core.secure_memory import SecureMemorySystem


def _leaf_code_block_address(system: SecureMemorySystem,
                             address: int) -> int | None:
    """DRAM address of the level-1 code block covering a data block."""
    if system.merkle is None:
        return None
    leaf = system._data_leaf_index(address)
    parent = system.merkle.geometry.parent_index(leaf)
    return system.merkle.node_address(1, parent)


def replay_attack(system: SecureMemorySystem, address: int,
                  old_value: bytes, new_value: bytes,
                  replay_code_block: bool = False) -> AttackReport:
    """Record state at ``old_value``, advance to ``new_value``, roll back.

    With ``replay_code_block`` the attacker also restores the level-1
    Merkle code block, making the leaf MAC check pass and testing that the
    *tree* (not just a flat MAC) provides freshness.
    """
    # Victim writes the old value; attacker records DRAM.
    system.write_block(address, old_value)
    system.flush()
    recorded_data = system.dram.peek(address)
    code_address = _leaf_code_block_address(system, address)
    recorded_code = (
        system.dram.peek(code_address) if code_address is not None else None
    )

    # Victim moves on to the new value.
    system.write_block(address, new_value)
    system.flush()
    _drop_from_l2(system, address)

    # Attacker rolls DRAM back.
    system.dram.poke(address, recorded_data)
    name = "replay-data"
    if replay_code_block and code_address is not None:
        # The code block must not be sitting on-chip or the poke is moot;
        # drop it from the node cache as a patient attacker would await.
        system.merkle.node_cache.invalidate(code_address)
        system.dram.poke(code_address, recorded_code)
        name = "replay-data+code"

    try:
        observed = system.read_block(address)
    except IntegrityViolation as exc:
        return AttackReport(attack=name, detected=True, succeeded=False,
                            details=str(exc))
    if observed == old_value:
        details = "victim consumed stale data"
        succeeded = True
    elif observed != new_value:
        # Counter-mode systems without authentication decrypt the replayed
        # ciphertext under the *current* counter: the victim silently
        # consumes garbage — a successful, undetected integrity violation
        # even though the exact old value was not restored.
        details = "victim consumed garbled data undetected"
        succeeded = True
    else:
        details = "replay had no effect"
        succeeded = False
    return AttackReport(
        attack=name,
        detected=False,
        succeeded=succeeded,
        details=details,
        evidence={"observed": observed},
    )
