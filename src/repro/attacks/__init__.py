"""Hardware-attack simulation: snooping, tampering, replay, relocation,
counter replay, and cold-boot remanence."""

from repro.attacks.base import AttackReport
from repro.attacks.coldboot import cold_boot_attack
from repro.attacks.counter_replay import (
    counter_replay_attack,
    evict_counter_block,
    evict_data_block,
)
from repro.attacks.relocate import relocate_attack
from repro.attacks.replay import replay_attack
from repro.attacks.snoop import (
    BusSnooper,
    pad_reuse_probe,
    snoop_secrecy_attack,
)
from repro.attacks.tamper import splice_attack, spoof_attack

__all__ = [
    "AttackReport",
    "BusSnooper",
    "cold_boot_attack",
    "counter_replay_attack",
    "evict_counter_block",
    "evict_data_block",
    "pad_reuse_probe",
    "relocate_attack",
    "replay_attack",
    "snoop_secrecy_attack",
    "splice_attack",
    "spoof_attack",
]
