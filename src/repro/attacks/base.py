"""Shared attack-harness types.

Each attack module stages a concrete hardware attack against a functional
:class:`repro.core.secure_memory.SecureMemorySystem` and reports whether
the system *detected* it (raised :class:`IntegrityViolation`) and whether
the attack would have *succeeded* absent detection (e.g. leaked plaintext
relationships through pad reuse).  The threat model is the paper's: the
adversary fully controls the memory bus and DRAM (read, record, and modify
anything below the processor chip) but cannot see or touch on-chip state.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AttackReport:
    """Outcome of one staged attack."""

    attack: str
    detected: bool
    succeeded: bool
    details: str = ""
    evidence: dict = field(default_factory=dict)

    @property
    def defended(self) -> bool:
        """True when the system either detected or neutralized the attack."""
        return self.detected or not self.succeeded

    def __str__(self) -> str:
        if self.detected and self.succeeded:
            # Late detection: the alarm went off but the damage (e.g. a
            # leaked pad relationship) had already happened.  Showing only
            # "DETECTED" here used to hide the success half.
            status = "DETECTED-BUT-SUCCEEDED"
        elif self.detected:
            status = "DETECTED"
        elif self.succeeded:
            status = "SUCCEEDED"
        else:
            status = "NEUTRALIZED"
        return f"[{self.attack}] {status}: {self.details}"
