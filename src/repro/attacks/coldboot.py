"""Cold-boot attack: DRAM remanence under power-off bit decay.

The attacker cuts power, and each DRAM cell decays toward its ground
state — modelled here as every *set* bit independently clearing with
probability ``decay`` (Halderman et al.'s asymmetric decay, ground state
zero).  Two independent questions follow, and the report answers both:

* **Leak** — does the decayed image of the victim's block still reveal
  its plaintext?  Schemes that store plaintext at rest (no encryption)
  leak: a few percent decay leaves the overwhelming majority of secret
  bits readable.  Encrypted-at-rest schemes expose only decayed
  ciphertext/shares, which reveal nothing without the on-chip key.
* **Detection** — if the machine is rebooted with the decayed DRAM and
  the victim re-reads, does the scheme notice?  Authenticated schemes
  raise :class:`IntegrityViolation`; unauthenticated ones silently
  consume decayed (for plaintext storage) or garbled (for encrypted
  storage) data.

``succeeded`` means the plaintext leaked; ``detected`` means the
post-reboot read raised a violation.  The two are independent: a
plaintext-at-rest authenticated scheme (e.g. GCM auth without
encryption) both leaks *and* detects.
"""

from __future__ import annotations

import random

from repro.attacks.base import AttackReport
from repro.attacks.tamper import _drop_from_l2
from repro.auth.merkle import IntegrityViolation
from repro.core.secure_memory import SecureMemorySystem

#: Fraction of matching bits above which the decayed image is considered
#: a readable copy of the secret.  A 2–5 % decay rate leaves ~95 %+ of
#: bits intact; random-looking ciphertext matches ~50 %.
LEAK_THRESHOLD = 0.90


def _decay_image(image: bytes, rng: random.Random, decay: float) -> bytes:
    """Clear each set bit independently with probability ``decay``."""
    out = bytearray(image)
    for index, byte in enumerate(out):
        if not byte:
            continue
        for bit in range(8):
            if byte >> bit & 1 and rng.random() < decay:
                byte &= ~(1 << bit) & 0xFF
        out[index] = byte
    return bytes(out)


def _bit_match_fraction(a: bytes, b: bytes) -> float:
    """Fraction of bit positions on which ``a`` and ``b`` agree."""
    total = len(a) * 8
    differing = sum((x ^ y).bit_count() for x, y in zip(a, b))
    return (total - differing) / total if total else 1.0


def _drop_all_caches(system: SecureMemorySystem) -> None:
    """Model the reboot: every on-chip cache is lost with power.

    Invalidate-only (no write-back) — dirty on-chip state never reached
    DRAM before the power cut, which is exactly what a reboot loses.
    """
    for address, _ in list(system.l2.resident_blocks()):
        system.l2.invalidate(address)
    if system.counter_cache is not None:
        cache = system.counter_cache.cache
        for cache_address, _ in list(cache.resident_blocks()):
            cache.invalidate(cache_address)
    if system.merkle is not None:
        node_cache = system.merkle.node_cache
        for address, _ in list(node_cache.resident_blocks()):
            node_cache.invalidate(address)


def cold_boot_attack(system: SecureMemorySystem, address: int,
                     secret: bytes, *, decay: float = 0.02,
                     seed: int = 0) -> AttackReport:
    """Write ``secret``, cut power, decay DRAM, probe for leak + detection.

    The decay is seeded and applied to every stored DRAM block in sorted
    address order, so a given ``(decay, seed)`` replays bit-for-bit.
    """
    if not 0.0 < decay < 1.0:
        raise ValueError(f"decay must be in (0, 1), got {decay!r}")
    secret = secret.ljust(system.block_size, b"\x00")[:system.block_size]
    system.write_block(address, secret)
    system.flush()
    _drop_from_l2(system, address)

    rng = random.Random(seed)
    decayed: dict[int, bytes] = {}
    flipped = 0
    for stored_address in sorted(system.dram.stored_blocks()):
        image = system.dram.peek(stored_address)
        after = _decay_image(image, rng, decay)
        flipped += sum((x ^ y).bit_count() for x, y in zip(image, after))
        decayed[stored_address] = after

    # Leak probe: the attacker reads the decayed module offline.
    match = _bit_match_fraction(decayed[address], secret)
    leaked = match >= LEAK_THRESHOLD

    # Reboot: decayed DRAM, empty caches, victim re-reads.
    for stored_address, image in decayed.items():
        system.dram.poke(stored_address, image)
    _drop_all_caches(system)
    try:
        observed = system.read_block(address)
    except IntegrityViolation as exc:
        return AttackReport(
            attack="cold-boot", detected=True, succeeded=leaked,
            details=(
                f"decay flipped {flipped} stored bit(s); post-reboot read "
                f"rejected ({exc})"
                + (f"; offline image still matched {match:.0%} of secret "
                   f"bits — plaintext leaked" if leaked else "")
            ),
            evidence={"bit_match": match, "flipped_bits": flipped,
                      "decay": decay},
        )
    return AttackReport(
        attack="cold-boot",
        detected=False,
        succeeded=leaked,
        details=(
            f"decay flipped {flipped} stored bit(s); victim silently "
            "consumed decayed data"
            + (f"; offline image matched {match:.0%} of secret bits — "
               f"plaintext leaked" if leaked
               else "; stored image revealed nothing "
               f"({match:.0%} bit match)")
        ),
        evidence={"bit_match": match, "flipped_bits": flipped,
                  "decay": decay, "observed": observed},
    )
