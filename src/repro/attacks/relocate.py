"""Ciphertext-relocation attack (one-way block copy).

Unlike splicing — which this suite stages as a copy too, but whose
classic framing is an exchange — relocation is the *minimal* spatial
attack: the adversary copies the stored image of one address over
another and leaves the source untouched.  Against a scheme whose stored
image is position-independent (no encryption, or direct encryption
without an address tweak) the victim then consumes the **source's exact
plaintext at the wrong address** — a controlled-value injection, not
mere corruption.  Address-tweaked encryption garbles the relocated
bytes; an address-bound MAC detects them outright.

The report distinguishes those three endings:

* ``detected``  — the cold re-read raised :class:`IntegrityViolation`;
* ``succeeded`` with ``evidence["plaintext_intact"] is True`` — the
  victim observed the source block's plaintext verbatim (the dangerous
  silent leak);
* ``succeeded`` with ``plaintext_intact is False`` — the victim consumed
  garbage (silent corruption, no value control).
"""

from __future__ import annotations

from repro.attacks.base import AttackReport
from repro.attacks.tamper import _drop_from_l2
from repro.auth.merkle import IntegrityViolation
from repro.core.secure_memory import SecureMemorySystem


def relocate_attack(system: SecureMemorySystem, source: int,
                    target: int) -> AttackReport:
    """Copy ``source``'s DRAM image over ``target`` and re-read ``target``.

    Both blocks are written first so each has a genuine DRAM presence
    (ciphertext produced by the victim's own write path), then flushed
    and evicted so the re-read must go through DRAM.
    """
    if source == target:
        raise ValueError("relocation needs two distinct addresses")
    source_plaintext = system.read_block(source)
    system.write_block(source, source_plaintext)
    original_target = system.read_block(target)
    system.write_block(target, original_target)
    system.flush()
    _drop_from_l2(system, source)
    _drop_from_l2(system, target)
    system.dram.poke(target, system.dram.peek(source))
    try:
        observed = system.read_block(target)
    except IntegrityViolation as exc:
        return AttackReport(
            attack="relocate", detected=True, succeeded=False,
            details=str(exc),
        )
    if observed == original_target:
        return AttackReport(
            attack="relocate", detected=False, succeeded=False,
            details="relocation had no effect",
        )
    intact = observed == source_plaintext
    return AttackReport(
        attack="relocate",
        detected=False,
        succeeded=True,
        details=(
            "victim consumed the source block's plaintext at the wrong "
            "address (controlled-value injection)" if intact
            else "victim consumed garbled relocated ciphertext"
        ),
        evidence={
            "plaintext_intact": intact,
            "observed": observed,
            "source_plaintext": source_plaintext,
            "original_target": original_target,
        },
    )
