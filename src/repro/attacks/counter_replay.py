"""The counter-replay attack of section 4.3 — the pitfall the paper fixes.

Counter-mode encryption is only secure while no (key, seed) pair repeats.
The seed contains the block's counter, and the counter lives in untrusted
DRAM whenever its block is not in the counter cache.  The pitfall: a data
block can sit dirty in the L2 *while its counter block gets evicted*.  The
attacker rolls the in-DRAM counter back to a recorded older value; when the
data block is finally written back, the system re-fetches the tampered
counter, increments it, and produces a pad it has already used once.  The
bus snooper now holds two ciphertexts under one pad, and

    ct_old XOR ct_new == pt_old XOR pt_new

hands over the plaintext relationship (full plaintext, if either version
is known or guessable).

The paper's fix is to authenticate counters *whenever they come on-chip*
(not only indirectly via data MACs): the counter blocks are leaves of the
Merkle tree, so the poisoned fetch fails verification before the counter is
ever used.  This module stages the full attack against both configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.base import AttackReport
from repro.attacks.snoop import pad_reuse_probe
from repro.auth.merkle import IntegrityViolation
from repro.core.secure_memory import SecureMemorySystem


def evict_data_block(system: SecureMemorySystem, address: int,
                     scratch_base: int) -> None:
    """Force ``address`` out of the L2 by reading set-conflicting blocks.

    ``scratch_base`` names a region the attack may clobber with reads.
    Conflicting addresses share the victim's set: same block offset modulo
    ``num_sets * block_size``.
    """
    l2 = system.l2
    stride = l2.num_sets * l2.block_size
    count = 0
    candidate = scratch_base + (address % stride)
    while l2.contains(address) and count < 4 * l2.assoc:
        if candidate != address and candidate < system.protected_bytes:
            system.read_block(candidate)
        candidate += stride
        count += 1
    if l2.contains(address):
        raise RuntimeError("could not evict victim block from L2")


def prepare_scratch_pages(system: SecureMemorySystem, address: int,
                          scratch_base: int, count: int = 16) -> list[int]:
    """Materialize one block in each of ``count`` scratch pages.

    Later reads of these blocks resolve their counters through the counter
    cache, providing eviction pressure on the victim's counter block.  The
    blocks are written back and dropped from the L2 immediately so the
    pressure reads miss.  This models the background activity of a real
    workload while the attacker waits.
    """
    scheme = system.counter_scheme
    per = scheme.data_blocks_per_counter_block
    block = system.block_size
    victim_index = scheme.counter_block_address(address)
    addresses = []
    index = victim_index + 1
    while len(addresses) < count:
        data_address = (index * per) * block
        if data_address >= system.protected_bytes:
            raise RuntimeError("protected region too small for scratch pages")
        system.write_block(data_address, bytes(block))
        _force_writeback(system, data_address)
        addresses.append(data_address)
        index += 1
    return addresses


def _force_writeback(system: SecureMemorySystem, address: int) -> None:
    """Push a block's current contents to DRAM and drop it from the L2."""
    line = system.l2.lookup(address)
    if line is None:
        return
    payload = bytes(line.payload)
    dirty = line.dirty
    system.l2.invalidate(address)
    if dirty:
        system._write_back(address, payload)


def evict_counter_block(system: SecureMemorySystem, address: int,
                        scratch_pages: list[int]) -> None:
    """Force the counter block covering ``address`` out of the counter
    cache by re-reading materialized blocks in other encryption pages
    (their counter blocks contend for the same cache sets)."""
    cache = system.counter_cache
    victim_index = system.counter_scheme.counter_block_address(address)
    for data_address in scratch_pages:
        if not cache.contains(victim_index):
            break
        _force_writeback(system, data_address)  # ensure the read will miss
        system.read_block(data_address)
        _force_writeback(system, data_address)
    if cache.contains(victim_index):
        raise RuntimeError("could not evict victim counter block")


@dataclass
class CounterReplayStage:
    """Artifacts the attacker accumulates while staging the attack."""

    recorded_counter_image: bytes | None = None
    ciphertext_v2: bytes | None = None
    ciphertext_v3: bytes | None = None


def counter_replay_attack(system: SecureMemorySystem, address: int,
                          plaintext_v2: bytes, plaintext_v3: bytes,
                          scratch_base: int) -> AttackReport:
    """Stage the full section-4.3 counter-rollback attack.

    ``address`` is the victim block; ``plaintext_v2``/``plaintext_v3`` are
    two successive values the victim writes (the attacker wants their XOR);
    ``scratch_base`` is a region the staging may clobber.  The system must
    use counter-mode encryption.
    """
    if system.counter_scheme is None:
        raise ValueError("counter replay needs a counter-mode system")
    block = system.block_size
    if len(plaintext_v2) != block or len(plaintext_v3) != block:
        raise ValueError("plaintexts must be one block long")
    stage = CounterReplayStage()
    scheme = system.counter_scheme
    counter_index = scheme.counter_block_address(address)
    counter_dram_addr = system.counter_cache.memory_address(counter_index)
    scratch_pages = prepare_scratch_pages(system, address, scratch_base)

    # Step 1: victim writes v1 and it reaches DRAM — counter becomes c1.
    system.write_block(address, bytes(block))
    evict_data_block(system, address, scratch_base)
    # The counter block now holds c1 on-chip; push it to DRAM and record it.
    evict_counter_block(system, address, scratch_pages)
    stage.recorded_counter_image = system.dram.peek(counter_dram_addr)

    # Step 2: victim writes v2; write-back encrypts under c2 = c1 + 1.
    system.write_block(address, plaintext_v2)
    try:
        evict_data_block(system, address, scratch_base)
    except IntegrityViolation as exc:  # pragma: no cover - defensive
        return AttackReport(attack="counter-replay", detected=True,
                            succeeded=False, details=str(exc))
    stage.ciphertext_v2 = system.dram.peek(address)

    # Step 3: victim writes v3 (still in L2, dirty).  The attacker evicts
    # the counter block and rolls its DRAM image back to the c1 recording.
    system.write_block(address, plaintext_v3)
    evict_counter_block(system, address, scratch_pages)
    system.dram.poke(counter_dram_addr, stage.recorded_counter_image)

    # Step 4: the victim block's write-back re-fetches the (tampered)
    # counter.  With counter authentication the fetch fails verification;
    # without it the write-back reuses pad(c2).
    try:
        evict_data_block(system, address, scratch_base)
    except IntegrityViolation as exc:
        return AttackReport(attack="counter-replay", detected=True,
                            succeeded=False, details=str(exc))
    stage.ciphertext_v3 = system.dram.peek(address)

    reused = pad_reuse_probe(stage.ciphertext_v2, plaintext_v2,
                             stage.ciphertext_v3, plaintext_v3)
    return AttackReport(
        attack="counter-replay",
        detected=False,
        succeeded=reused,
        details=(
            "pad reuse induced: ct2 XOR ct3 == pt2 XOR pt3" if reused
            else "no pad reuse observed"
        ),
        evidence={
            "ciphertext_v2": stage.ciphertext_v2,
            "ciphertext_v3": stage.ciphertext_v3,
        },
    )
