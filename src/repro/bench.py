"""Perf-regression bench harness: ``python -m repro bench`` / ``api.bench()``.

Produces one schema-versioned, machine-readable report (``BENCH_8.json``)
per run so every PR appends a comparable point to the repo's performance
trajectory, and CI can diff a fresh run against the committed baseline.

Design constraints the format encodes:

* **Machine portability.**  Absolute wall-clock throughput measured on a
  laptop is meaningless next to a number from a CI runner.  The *gate*
  metrics are therefore host-relative: each kernel's speedup over the
  scalar reference **measured in the same run**, plus the deterministic
  simulated-cycle figures (which do not depend on host speed at all).  Two
  runs on different machines gate against each other cleanly; the absolute
  throughputs are still recorded, but only as context.  The simulator
  engine sweep (``sim.refs_per_sec``) follows the same rule: the gated
  quantity is the batched engine's per-cell speedup over the scalar
  engine measured in the same run, and the raw refs/sec figures ride
  along as context only.  The serve saturation sweep gates its same-run
  shard-scaling ratios (``serve.scaling.rps_N_over_1``) and records
  absolute rps / p50 / p99 as context — see :mod:`repro.serve.bench`
  for why the ratio direction makes cross-host diffs safe.
* **Seeded, warmup-controlled timing.**  Inputs come from a seeded RNG;
  every kernel is warmed (table/array construction happens outside the
  timed region) and the best of ``repeats`` passes is kept — the standard
  defence against one-off scheduling noise biasing a minimum-latency
  measurement.
* **Versioned schema.**  ``schema`` names the layout
  (:data:`BENCH_SCHEMA`), ``bench_id`` names the trajectory point.  A
  reader that sees an unknown schema string must refuse, not guess —
  :func:`validate_report` is that reader.

Exit-code contract (enforced by ``python -m repro bench`` and its
subprocess tests): 0 clean, 2 when ``--baseline`` is given and the
geo-mean of current/baseline gate-metric ratios drops below
``1 - tolerance``.
"""

from __future__ import annotations

import json
import math
import random
import time
from typing import Any, Callable

from repro.crypto.aes import AES128
from repro.crypto.ctr import bulk_ctr_transform
from repro.crypto.mac import gcm_block_macs
from repro.crypto.vector import (
    HAVE_NUMPY,
    ghash_chunks_kernel,
    ghash_chunks_many,
)
from repro.sim.metrics import geometric_mean

__all__ = [
    "BENCH_ID",
    "BENCH_SCHEMA",
    "compare_reports",
    "run_bench",
    "validate_report",
]

#: schema identifier a consumer must check before reading anything else
BENCH_SCHEMA = "repro-bench/3"
#: trajectory point emitted by this revision of the repo
BENCH_ID = "BENCH_8"

#: kernels timed by every micro-benchmark, scalar first (the reference)
_MICRO_KERNELS = ("scalar", "table", "vector")

#: presets whose simulated cycles anchor the deterministic half of the
#: report (host-speed independent, so cross-machine ratios are exact)
_SIM_PRESETS = ("split+gcm", "mono+gcm", "split+sha", "gcm-auth")

#: newer backends whose simulated cycles are *recorded* alongside the gate
#: presets but excluded from the gate geomean — they accumulate trajectory
#: history without being able to trip (or mask) a regression in the
#: paper's schemes
_RECORD_PRESETS = ("secddr", "scattered")

#: the figure-4 and figure-9 sweep cells the engine benchmark times under
#: both ``sim_engine`` values — the full encryption sweep plus the full
#: authentication sweep, so the gate covers both the preclassified fast
#: path and the Merkle/MAC-heavy drains
_ENGINE_PRESETS = (
    # fig. 4: encryption schemes
    "split", "mono8b", "mono16b", "mono32b", "mono64b", "direct",
    # fig. 9: authentication schemes
    "split+gcm", "mono+gcm", "split+sha", "mono+sha", "xom+sha",
)


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall-clock seconds of ``repeats`` timed calls (after one
    untimed warmup call that absorbs lazy table/array construction)."""
    fn()
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _micro_entry(label: str, units: int, unit_name: str,
                 runners: dict[str, Callable[[], Any]],
                 repeats: int) -> dict[str, Any]:
    """Time one micro-benchmark under every kernel; returns its report
    section.  ``units`` is the per-call work item count (blocks, messages)
    used for the throughput figures."""
    checksums = {name: runner() for name, runner in runners.items()}
    reference = checksums["scalar"]
    for name, value in checksums.items():
        if value != reference:
            raise AssertionError(
                f"{label}: kernel {name!r} diverged from the scalar "
                f"reference — refusing to benchmark wrong code"
            )
    seconds = {name: _best_of(runner, repeats)
               for name, runner in runners.items()}
    scalar = seconds["scalar"]
    return {
        "units": units,
        "unit": unit_name,
        "seconds": seconds,
        "throughput": {name: units / secs if secs > 0 else math.inf
                       for name, secs in seconds.items()},
        "speedup_vs_scalar": {name: scalar / secs if secs > 0 else math.inf
                              for name, secs in seconds.items()
                              if name != "scalar"},
    }


def _micro_benchmarks(seed: int, blocks: int,
                      repeats: int) -> dict[str, Any]:
    """The three hot-path micros: CTR pad generation, GHASH, leaf MACs."""
    rng = random.Random(seed)
    key = bytes(rng.randrange(256) for _ in range(16))
    aes = AES128(key)
    ghash_key = aes.encrypt_block(b"\x00" * 16)

    ctr_items = [
        (index * 64, rng.randrange(1 << 40), rng.randbytes(64))
        for index in range(blocks)
    ]
    messages = [rng.randbytes(64) for _ in range(blocks)]
    chunk_lists = [[message[i:i + 16] for i in range(0, 64, 16)]
                   for message in messages]
    mac_items = [
        (index * 64, rng.randrange(1 << 40), message)
        for index, message in enumerate(messages)
    ]

    def ctr_runner(kernel: str) -> Callable[[], Any]:
        return lambda: bulk_ctr_transform(aes, ctr_items, kernel=kernel)

    def ghash_runner(kernel: str) -> Callable[[], Any]:
        if kernel == "vector" and HAVE_NUMPY:
            # The vector kernel's unit of work is the whole batch — one
            # chain per message length — which is exactly how the leaf-MAC
            # path drives it; timing it per-message would bench the array
            # setup overhead instead of the kernel.
            return lambda: ghash_chunks_many(ghash_key, messages)
        return lambda: [ghash_chunks_kernel(ghash_key, chunks, kernel)
                        for chunks in chunk_lists]

    def mac_runner(kernel: str) -> Callable[[], Any]:
        return lambda: gcm_block_macs(aes, ghash_key, mac_items,
                                      kernel=kernel)

    return {
        "pad_generation": _micro_entry(
            "pad_generation", blocks, "blocks",
            {k: ctr_runner(k) for k in _MICRO_KERNELS}, repeats),
        "ghash": _micro_entry(
            "ghash", blocks, "messages",
            {k: ghash_runner(k) for k in _MICRO_KERNELS}, repeats),
        "leaf_macs": _micro_entry(
            "leaf_macs", blocks, "macs",
            {k: mac_runner(k) for k in _MICRO_KERNELS}, repeats),
    }


def _sim_benchmarks(refs: int, app: str) -> dict[str, Any]:
    """Deterministic per-preset simulated cycles + normalized IPC.

    These numbers depend only on the timing model and the seeded trace,
    never on host speed, so a cross-machine baseline diff of exactly 1.0
    is the expected clean result.
    """
    from repro.api import Experiment, get_config
    from repro.sim import simulate
    from repro.workloads import spec_trace

    trace = spec_trace(app, refs)
    baseline = simulate(get_config("baseline"), trace,
                        warmup_refs=refs // 3)

    def measure(name: str) -> dict[str, Any]:
        result = Experiment(name, trace, refs=refs,
                            baseline=baseline).run()
        return {
            "cycles": result.cycles,
            "normalized_ipc": result.normalized_ipc,
        }

    presets = {name: measure(name) for name in _SIM_PRESETS}
    return {
        "app": app,
        "refs": refs,
        "presets": presets,
        # recorded for the trajectory, never gated (see _RECORD_PRESETS)
        "recorded_presets": {name: measure(name)
                             for name in _RECORD_PRESETS},
        # scenario-library workloads under the paper's flagship preset —
        # trajectory-only, like recorded_presets (each scenario carries
        # its own baseline; the numbers are not comparable to the SPEC
        # rows above and must never join the gate geomean)
        "scenarios": _scenario_benchmarks(refs),
        "geomean_normalized_ipc": geometric_mean(
            [entry["normalized_ipc"] for entry in presets.values()]
        ),
    }


#: preset the scenario-library trajectory rows simulate under
_SCENARIO_PRESET = "split+gcm"


def _scenario_benchmarks(refs: int) -> dict[str, Any]:
    """Recorded (ungated) normalized IPC of each scenario workload."""
    from repro.api import Experiment
    from repro.workloads import SCENARIO_APPS

    rows: dict[str, Any] = {}
    for name in SCENARIO_APPS:
        result = Experiment(_SCENARIO_PRESET, name, refs=refs).run()
        rows[name] = {
            "preset": _SCENARIO_PRESET,
            "cycles": result.cycles,
            "normalized_ipc": result.normalized_ipc,
        }
    return rows


def _engine_benchmarks(refs: int, app: str, repeats: int) -> dict[str, Any]:
    """Time the trace-driven simulator under both engines, per sweep cell.

    Each fig4/fig9 cell runs the same seeded trace under
    ``sim_engine="scalar"`` and ``sim_engine="batched"``; the recorded
    ``refs_per_sec`` figures are absolute (context only) while the gated
    quantity is the per-cell batched/scalar *speedup*, which is
    host-relative.  ``_best_of``'s untimed warmup call also absorbs the
    batched engine's one-time trace-preclassification cache build, so the
    timed passes measure steady-state throughput for both engines.  The
    trace is 4x the sim section's — per-run fixed costs (processor
    construction, cache mirroring) otherwise dominate the batched side
    and understate the steady-state ratio.
    """
    from repro.api import get_config
    from repro.sim.processor import Processor
    from repro.workloads import spec_trace

    refs = refs * 4
    trace = spec_trace(app, refs)
    warmup_refs = refs // 3

    def runner(preset: str, engine: str) -> Callable[[], Any]:
        config = get_config(preset, sim_engine=engine)
        return lambda: Processor(config).run(trace, warmup_refs=warmup_refs)

    cells: dict[str, Any] = {}
    total = {"scalar": 0.0, "batched": 0.0}
    for preset in _ENGINE_PRESETS:
        seconds = {engine: _best_of(runner(preset, engine), repeats)
                   for engine in ("scalar", "batched")}
        for engine, secs in seconds.items():
            total[engine] += secs
        cells[preset] = {
            "seconds": seconds,
            "refs_per_sec": {engine: refs / secs if secs > 0 else math.inf
                             for engine, secs in seconds.items()},
            "batched_speedup": (seconds["scalar"] / seconds["batched"]
                                if seconds["batched"] > 0 else math.inf),
        }
    return {
        "app": app,
        "refs": refs,
        "warmup_refs": warmup_refs,
        "cells": cells,
        "aggregate": {
            "seconds": total,
            "refs_per_sec": {
                engine: len(_ENGINE_PRESETS) * refs / secs
                if secs > 0 else math.inf
                for engine, secs in total.items()
            },
            "batched_speedup": (total["scalar"] / total["batched"]
                                if total["batched"] > 0 else math.inf),
        },
    }


def _gate_metrics(micro: dict[str, Any], sim: dict[str, Any],
                  engine: dict[str, Any],
                  serve: dict[str, Any]) -> dict[str, float]:
    """The flat higher-is-better metric vector the regression gate diffs.

    Only host-relative (speedups, same-run scaling ratios) and
    host-independent (normalized IPC) quantities qualify — never absolute
    throughput.
    """
    gate: dict[str, float] = {}
    for bench_name, entry in micro.items():
        for kernel, speedup in entry["speedup_vs_scalar"].items():
            gate[f"micro.{bench_name}.{kernel}_speedup"] = speedup
    gate["sim.geomean_normalized_ipc"] = sim["geomean_normalized_ipc"]
    for preset, cell in engine["cells"].items():
        gate[f"sim.refs_per_sec.{preset}.batched_speedup"] = \
            cell["batched_speedup"]
    gate["sim.refs_per_sec.aggregate.batched_speedup"] = \
        engine["aggregate"]["batched_speedup"]
    for name, ratio in serve["scaling"].items():
        gate[f"serve.scaling.{name}"] = ratio
    return gate


def run_bench(*, seed: int = 0, blocks: int = 1024, repeats: int = 3,
              refs: int = 20_000, app: str = "swim", quick: bool = False,
              progress: Callable[[str], None] | None = None
              ) -> dict[str, Any]:
    """Run the full bench suite; returns the BENCH report as a dict.

    ``quick`` shrinks every dimension (for smoke tests and subprocess
    tests); quick reports are marked as such and should only be gated
    against quick baselines.
    """
    if quick:
        blocks, repeats, refs = 64, 1, 2_000
    note = progress if progress is not None else (lambda _msg: None)
    note(f"bench: timing crypto micros ({blocks} blocks x {repeats} repeats)")
    micro = _micro_benchmarks(seed, blocks, repeats)
    note(f"bench: simulating {len(_SIM_PRESETS) + len(_RECORD_PRESETS)} "
         f"presets ({refs} refs)")
    sim = _sim_benchmarks(refs, app)
    note(f"bench: timing {len(_ENGINE_PRESETS)} sweep cells under both "
         f"sim engines ({refs} refs x {repeats} repeats)")
    engine = _engine_benchmarks(refs, app, repeats)
    from repro.serve.bench import run_serve_bench

    serve = run_serve_bench(quick=quick, seed=seed, progress=note)
    report = {
        "schema": BENCH_SCHEMA,
        "bench_id": BENCH_ID,
        "quick": quick,
        "seed": seed,
        "numpy_available": HAVE_NUMPY,
        "micro": micro,
        "sim": sim,
        "engine": engine,
        "serve": serve,
        "gate_metrics": _gate_metrics(micro, sim, engine, serve),
    }
    validate_report(report)
    return report


def validate_report(report: Any) -> None:
    """Schema-check one bench report; raises :class:`ValueError` on any
    violation.  This is the reader CI and the subprocess tests use — an
    unknown schema string is a refusal, not a warning."""
    if not isinstance(report, dict):
        raise ValueError(f"bench report must be an object, got "
                         f"{type(report).__name__}")
    schema = report.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(f"unknown bench schema {schema!r} "
                         f"(expected {BENCH_SCHEMA!r})")
    for field, kind in (("bench_id", str), ("quick", bool), ("seed", int),
                        ("numpy_available", bool), ("micro", dict),
                        ("sim", dict), ("engine", dict), ("serve", dict),
                        ("gate_metrics", dict)):
        if not isinstance(report.get(field), kind):
            raise ValueError(f"bench report field {field!r} must be "
                             f"{kind.__name__}")
    for name, entry in report["micro"].items():
        for field in ("units", "unit", "seconds", "throughput",
                      "speedup_vs_scalar"):
            if field not in entry:
                raise ValueError(f"micro entry {name!r} missing {field!r}")
        for kernel in _MICRO_KERNELS:
            if kernel not in entry["seconds"]:
                raise ValueError(f"micro entry {name!r} missing kernel "
                                 f"{kernel!r}")
    sim = report["sim"]
    for field in ("app", "refs", "presets", "geomean_normalized_ipc"):
        if field not in sim:
            raise ValueError(f"sim section missing {field!r}")
    for name, entry in sim["presets"].items():
        for field in ("cycles", "normalized_ipc"):
            if field not in entry:
                raise ValueError(f"sim preset {name!r} missing {field!r}")
    engine = report["engine"]
    for field in ("app", "refs", "warmup_refs", "cells", "aggregate"):
        if field not in engine:
            raise ValueError(f"engine section missing {field!r}")
    for name, cell in dict(engine["cells"],
                           aggregate=engine["aggregate"]).items():
        for field in ("seconds", "refs_per_sec", "batched_speedup"):
            if field not in cell:
                raise ValueError(f"engine cell {name!r} missing {field!r}")
    serve = report["serve"]
    for field in ("backend", "scheme", "host_cpus", "shard_counts",
                  "workload", "points", "scaling"):
        if field not in serve:
            raise ValueError(f"serve section missing {field!r}")
    for shards, point in serve["points"].items():
        for field in ("requests", "rps", "p50_ms", "p99_ms",
                      "busy_retries", "errors"):
            if field not in point:
                raise ValueError(
                    f"serve point {shards!r} missing {field!r}")
        if point["errors"]:
            raise ValueError(
                f"serve point {shards!r} recorded {point['errors']} "
                "errors — the saturation run must be error-free")
    if not serve["scaling"]:
        raise ValueError("serve section has no scaling ratios")
    for name, value in report["gate_metrics"].items():
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            raise ValueError(f"gate metric {name!r} must be finite, "
                             f"got {value!r}")


def compare_reports(current: dict[str, Any], baseline: dict[str, Any], *,
                    tolerance: float = 0.10) -> dict[str, Any]:
    """Diff two bench reports' gate metrics (both higher-is-better).

    Returns ``{"ok": bool, "geomean_ratio": g, "ratios": {...},
    "tolerance": t}``; ``ok`` is False when the geometric mean of
    current/baseline ratios over the shared metrics falls below
    ``1 - tolerance`` — a >tolerance aggregate regression.  Metrics present
    on only one side are listed but excluded from the geo-mean, so adding a
    benchmark never trips the gate by itself.

    Each per-metric ratio is capped at ``1 + tolerance`` before entering
    the geo-mean (``ratios`` still reports the raw values): a large
    improvement in one metric — a genuinely faster kernel, or a
    host-dependent jump like the serve shard-scaling ratio on a machine
    with more cores than the baseline's — must not be able to mask a
    real regression somewhere else.  Regressions are never capped.
    """
    validate_report(current)
    validate_report(baseline)
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    if bool(current["quick"]) != bool(baseline["quick"]):
        raise ValueError(
            "refusing to gate a quick report against a full baseline "
            "(or vice versa) — the workloads are not comparable"
        )
    cur, base = current["gate_metrics"], baseline["gate_metrics"]
    shared = sorted(set(cur) & set(base))
    if not shared:
        raise ValueError("bench reports share no gate metrics")
    ratios = {name: cur[name] / base[name] for name in shared}
    cap = 1.0 + tolerance
    geomean = geometric_mean([min(ratios[name], cap) for name in shared])
    return {
        "ok": geomean >= 1.0 - tolerance,
        "geomean_ratio": geomean,
        "tolerance": tolerance,
        "ratios": ratios,
        "only_in_current": sorted(set(cur) - set(base)),
        "only_in_baseline": sorted(set(base) - set(cur)),
    }


def load_report(path: str) -> dict[str, Any]:
    """Read and schema-check a bench report file."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    validate_report(report)
    return report
