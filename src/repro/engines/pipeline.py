"""Pipelined hardware-unit timing model shared by all crypto engines.

The paper specifies deeply pipelined engines: a 16-stage AES pipeline with
80 cycles of total latency, and a 32-stage SHA-1 pipeline with 320 cycles
(section 5).  A new operation can enter such a pipeline every
``latency / stages`` cycles, so both latency *and* issue bandwidth are
modelled — issue bandwidth is what limits the counter-prediction scheme,
which must precompute N pads per decryption and saturates a single AES
engine (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import reset_fields
from repro.obs.tracer import Tracer


@dataclass
class EngineStats:
    """Operation counts and contention accounting for one engine."""

    operations: int = 0
    stall_cycles: float = 0.0

    def reset(self) -> None:
        reset_fields(self)


class PipelinedEngine:
    """A pipelined unit with fixed latency and initiation interval.

    ``request(now)`` returns the completion time of an operation issued at
    ``now``; back-to-back requests queue at the pipeline's initiation
    interval.  Multiple physical engines (``copies``) issue round-robin,
    which is how the two-AES-engine prediction configuration is modelled.
    """

    #: optional observability hook: each issued operation becomes an
    #: occupancy-window span on the "engine" track when a tracer records
    tracer: Tracer | None = None

    def __init__(self, latency: float, stages: int, copies: int = 1,
                 name: str = "engine"):
        if latency <= 0 or stages <= 0 or copies <= 0:
            raise ValueError("latency, stages, and copies must be positive")
        self.latency = latency
        self.stages = stages
        self.copies = copies
        self.name = name
        self.initiation_interval = latency / stages
        self._next_issue = [0.0] * copies
        self.stats = EngineStats()

    def request(self, now: float) -> float:
        """Issue one operation at ``now``; returns its completion cycle."""
        # Pick the engine copy that frees up first.
        engine = min(range(self.copies), key=lambda i: self._next_issue[i])
        start = max(now, self._next_issue[engine])
        self._next_issue[engine] = start + self.initiation_interval
        self.stats.operations += 1
        self.stats.stall_cycles += start - now
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.span("engine", self.name, start, start + self.latency,
                        copy=engine, queued=start - now)
        return start + self.latency

    def request_many(self, now: float, count: int) -> float:
        """Issue ``count`` back-to-back operations; returns when the last
        one completes.  Used for the four pad generations of one 64-byte
        block, which the hardware streams into the pipeline."""
        done = now
        for _ in range(count):
            done = self.request(now)
        return done

    def batch_latency(self, count: int, start: float = 0.0) -> float:
        """Completion time of ``count`` operations streamed from ``start``.

        The pipeline-structure floor only: the first operation cannot
        finish before ``start + latency`` and each subsequent one trails by
        one initiation interval, regardless of engine occupancy (callers
        combine this with :meth:`request_many` to model contention).
        ``count`` of zero returns ``start`` unchanged.
        """
        if count <= 0:
            return start
        return (start + self.latency
                + (count - 1) * self.initiation_interval)

    def busy_until(self) -> float:
        """Earliest cycle at which any copy can accept a new operation."""
        return min(self._next_issue)

    def reset(self) -> None:
        self._next_issue = [0.0] * self.copies
        self.stats.reset()

    # -- checkpoint support ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "next_issue": list(self._next_issue),
            "stats": {
                "operations": self.stats.operations,
                "stall_cycles": self.stats.stall_cycles,
            },
        }

    def load_state(self, state: dict) -> None:
        self._next_issue = list(state["next_issue"])
        self.stats.operations = state["stats"]["operations"]
        self.stats.stall_cycles = state["stats"]["stall_cycles"]

    def __repr__(self) -> str:
        return (
            f"PipelinedEngine({self.name}: {self.latency}cyc latency, "
            f"{self.stages} stages, x{self.copies})"
        )
