"""Timing model of the on-chip AES engine.

Section 5: "The 128-bit AES encryption engine we simulate has a 16-stage
pipeline and a total latency of 80 processor cycles" (about twice as fast
as the ChipLock implementation, anticipating technology scaling).  The same
engine serves counter-mode pad generation, direct AES
encryption/decryption, and GCM authentication-pad generation — sharing that
the paper lists as a GCM advantage over separate SHA hardware.
"""

from __future__ import annotations

from repro.engines.pipeline import PipelinedEngine

AES_LATENCY_CYCLES = 80
AES_PIPELINE_STAGES = 16


class AESEngine(PipelinedEngine):
    """Pipelined AES unit; one 16-byte block per operation."""

    def __init__(self, latency: float = AES_LATENCY_CYCLES,
                 stages: int = AES_PIPELINE_STAGES, copies: int = 1):
        super().__init__(latency=latency, stages=stages, copies=copies,
                         name="aes")

    def generate_block_pads(self, now: float, num_chunks: int = 4) -> float:
        """Generate all keystream pads for one cache block.

        A 64-byte block needs four 16-byte pads; they stream through the
        pipeline so the last pad completes ``latency + 3 * interval`` cycles
        after an uncontended start.
        """
        return self.request_many(now, num_chunks)

    def direct_crypt_block(self, now: float, num_chunks: int = 4) -> float:
        """Directly encrypt/decrypt a cache block (the XOM-style baseline).

        Unlike pad generation this cannot start until the data is available,
        which is exactly why direct encryption adds the full AES latency to
        every L2 miss (Figure 1a).
        """
        return self.request_many(now, num_chunks)
