"""Crypto-engine timing models (latency/occupancy only; no real crypto)."""

from repro.engines.aes_engine import (
    AES_LATENCY_CYCLES,
    AES_PIPELINE_STAGES,
    AESEngine,
)
from repro.engines.ghash_unit import GHASHUnit
from repro.engines.pipeline import EngineStats, PipelinedEngine
from repro.engines.sha_engine import (
    SHA1_LATENCY_CYCLES,
    SHA1_PIPELINE_STAGES,
    SHA1Engine,
)

__all__ = [
    "AES_LATENCY_CYCLES",
    "AES_PIPELINE_STAGES",
    "AESEngine",
    "EngineStats",
    "GHASHUnit",
    "PipelinedEngine",
    "SHA1_LATENCY_CYCLES",
    "SHA1_PIPELINE_STAGES",
    "SHA1Engine",
]
