"""Timing model of the GHASH unit used by GCM authentication.

Per McGrew-Viega (cited as [13] in the paper), each GHASH step — one
GF(2^128) multiplication plus an XOR — takes a single cycle in hardware.
Hashing the four ciphertext chunks of a 64-byte block therefore takes four
cycles once the data is on-chip, plus one cycle for the final XOR with the
(already computed, overlapped) authentication pad.
"""

from __future__ import annotations

from dataclasses import dataclass

GHASH_CYCLES_PER_CHUNK = 1
FINAL_XOR_CYCLES = 1


@dataclass
class GHASHUnit:
    """Per-chunk GHASH timing; purely combinational throughput model."""

    cycles_per_chunk: int = GHASH_CYCLES_PER_CHUNK
    final_xor_cycles: int = FINAL_XOR_CYCLES

    def hash_block(self, data_ready: float, pad_ready: float,
                   num_chunks: int = 4) -> float:
        """Completion time of a GCM tag for one block.

        The GHASH chain starts when ciphertext is available
        (``data_ready``); the concluding XOR additionally waits for the AES
        authentication pad (``pad_ready``).  When the pad generation was
        fully overlapped with the memory fetch, the tag completes just
        ``num_chunks + 1`` cycles after the data arrives — the paper's
        central latency argument for GCM.
        """
        ghash_done = data_ready + num_chunks * self.cycles_per_chunk
        return max(ghash_done, pad_ready) + self.final_xor_cycles
