"""Timing model of the SHA-1 authentication engine (baseline schemes).

Section 5: "The SHA-1 authentication engine is pipelined into 32 stages and
has a latency of 320 processor cycles" — already 4x faster than reported
hardware, deliberately favouring the baseline.  Figure 7 sweeps this
latency over 80/160/320/640 cycles, which ``latency`` parameterizes.

Unlike GCM's authentication pad, a SHA-1 MAC computation cannot begin until
the ciphertext has arrived from memory, so its full latency lands on the
critical path of Commit/Safe authentication.
"""

from __future__ import annotations

from repro.engines.pipeline import PipelinedEngine

SHA1_LATENCY_CYCLES = 320
SHA1_PIPELINE_STAGES = 32


class SHA1Engine(PipelinedEngine):
    """Pipelined SHA-1 unit; one cache-block MAC per operation."""

    def __init__(self, latency: float = SHA1_LATENCY_CYCLES,
                 stages: int = SHA1_PIPELINE_STAGES, copies: int = 1):
        super().__init__(latency=latency, stages=stages, copies=copies,
                         name="sha1")

    def mac_block(self, now: float) -> float:
        """Compute one block MAC; returns the completion cycle."""
        return self.request(now)
