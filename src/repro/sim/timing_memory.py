"""Timing twin of the secure memory system.

Where :class:`repro.core.secure_memory.SecureMemorySystem` computes *values*
(real AES, real MACs), this class computes *timestamps*: when decrypted
data is ready for the core and when its authentication completes, given the
section-5 machine — a 128-bit 600MHz bus under a 5GHz core, 200-cycle
uncontended memory, an 80-cycle 16-stage AES pipeline, a 320-cycle 32-stage
SHA-1 pipeline, a 32KB counter cache, and a Merkle tree sized for a 512MB
memory.

The structural state (counter values, counter-cache contents, Merkle node
cache, RSRs) is identical to the functional layer so hit rates, overflow
events, and re-encryption work match; only the crypto math is replaced by
engine latencies.  Timing paths implemented:

* counter resolution with hit / half-miss / miss (Figure 6's SNC bars),
* pad generation overlapped with the data fetch (timely-pad statistics),
* direct AES decryption serialized after data arrival (Figure 1a),
* counter prediction with N-deep pad precomputation (Figure 6),
* parallel or sequential Merkle-level fetch + verification (Figure 8),
* GCM tags (GHASH after arrival + overlapped pad) vs SHA-1 MACs
  (full engine latency after arrival) — Figures 7-10,
* RSR-managed page re-encryption overlapped with execution, with the two
  stall conditions of section 4.2, and instantaneous full-memory
  re-encryption for monolithic/global counters (the paper's Mono8b
  methodology).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.auth.codes import TreeGeometry, build_flat_geometry, build_geometry
from repro.core.config import (
    AuthMode,
    CounterOrg,
    EncryptionMode,
    IntegrityMode,
    SecureMemoryConfig,
)
from repro.core.rsr import RSRFile
from repro.core.secure_memory import make_counter_scheme
from repro.core.stats import SecureMemoryStats
from repro.counters.base import OverflowAction
from repro.counters.counter_cache import CounterCache
from repro.counters.prediction import CounterPredictionScheme
from repro.counters.split import SplitCounterScheme
from repro.engines.aes_engine import AESEngine
from repro.engines.ghash_unit import GHASHUnit
from repro.engines.sha_engine import SHA1Engine
from repro.memory.bus import MemoryBus
from repro.memory.cache import Cache
from repro.obs.attribution import MissRecord, PathTime
from repro.obs.metrics import (
    MetricsRegistry,
    fields_state,
    load_fields_state,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience.recovery import RecoveryStats, backoff_delay

#: attribution labels for a Merkle-node transfer: queue, wire, and DRAM
#: time of a tree fetch all accrue to the tree-walk bucket
_TREE_LABELS = ("tree", "tree", "tree")


@dataclass
class MissTiming:
    """Timestamps of one L2 miss through the secure memory."""

    data_ready: float   # decrypted data available to the core
    auth_done: float    # authentication chain complete


class TimingSecureMemory:
    """Latency/occupancy model of the secure memory path below the L2."""

    def __init__(self, config: SecureMemoryConfig, l2: Cache | None = None,
                 bus: MemoryBus | None = None, tracer: Tracer | None = None,
                 rng: random.Random | None = None):
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.block_size = config.block_size
        self._chunks = self.block_size // 16
        # An injected bus (e.g. repro.testing's AdversarialBus) lets a
        # harness observe or perturb the transaction stream deterministically.
        self.bus = bus if bus is not None else MemoryBus()
        self.mem_latency = config.memory_latency
        self.l2 = l2  # used by the RSR to find page blocks already on-chip

        self.aes = AESEngine(config.aes_latency, config.aes_stages,
                             config.aes_engines)
        self.sha = SHA1Engine(config.sha_latency, config.sha_stages)
        self.ghash = GHASHUnit()

        self.scheme = None
        self.counter_cache = None
        num_counter_blocks = 0
        if config.uses_counters:
            self.scheme = make_counter_scheme(config)
            per = self.scheme.data_blocks_per_counter_block
            num_data_blocks = config.memory_size // self.block_size
            num_counter_blocks = -(-num_data_blocks // per)
            if not isinstance(self.scheme, CounterPredictionScheme):
                self.counter_cache = CounterCache(
                    size_bytes=config.counter_cache_size,
                    assoc=config.counter_cache_assoc,
                    block_size=self.block_size,
                    region_base=config.memory_size,
                )

        # Secret-shared blocks fan one logical miss out to k share
        # transfers (and one write-back to n), each share being its own
        # tree leaf; non-shares configs collapse to k = n = 1.
        shares = config.encryption is EncryptionMode.SHARES
        self._shares_k = config.shares_k if shares else 1
        self._shares_n = config.shares_n if shares else 1
        self._num_data_leaves = (
            config.memory_size // self.block_size * self._shares_n
        )

        self.geometry: TreeGeometry | None = None
        self.node_cache: Cache | None = None
        self._node_region_base = (config.memory_size
                                  + num_counter_blocks * self.block_size)
        if config.auth is not AuthMode.NONE:
            num_leaves = self._num_data_leaves + num_counter_blocks
            # SecDDR keeps each level-1 group's MAC on chip: the flat
            # geometry makes the chain walk terminate after one level with
            # no root fetch, giving the O(1) verification the scheme buys.
            build = (build_flat_geometry
                     if config.resolved_integrity is IntegrityMode.SECDDR
                     else build_geometry)
            self.geometry = build(num_leaves, self.block_size,
                                  config.mac_bits)
            # Merkle code blocks are cached in the unified L2 alongside data
            # (the Gassend-et-al. arrangement the paper builds on); their
            # region starts above all data and counter addresses so they
            # never collide.  A dedicated cache is used only when no L2 is
            # wired in (unit tests of this class in isolation).
            if l2 is not None:
                self.node_cache = l2
            else:
                self.node_cache = Cache(config.node_cache_size,
                                        config.node_cache_assoc,
                                        self.block_size, name="merkle-nodes")

        blocks_per_page = (
            self.scheme.data_blocks_per_counter_block
            if isinstance(self.scheme, SplitCounterScheme) else 64
        )
        self.rsr_file = RSRFile(config.num_rsrs, blocks_per_page)

        self.stats = SecureMemoryStats()
        self._written: set[int] = set()          # blocks with DRAM ciphertext
        self._counter_inflight: dict[int, float] = {}
        self._num_data_blocks = config.memory_size // self.block_size

        # Recovery timing: the functional layer decides *whether* retries
        # happen; this layer charges *when* they finish (backoff + bus).
        # The RNG is threaded explicitly: callers may inject a seeded
        # ``random.Random`` (the simulation never consults the module-level
        # global RNG, so ``random.seed(...)`` elsewhere cannot perturb
        # timing results — the pinning test in ``tests/sim`` enforces it).
        self.recovery_stats: RecoveryStats | None = None
        self._recovery_rng: random.Random | None = None
        if config.recovery.enabled:
            self.recovery_stats = RecoveryStats()
            self._recovery_rng = (rng if rng is not None
                                  else random.Random(config.recovery.seed))

        # Unified metrics: every stats dataclass below the L2 registers
        # here, so ``metrics.snapshot()`` sees them all under dotted names
        # and ``reset_stats()`` can never miss a newly added counter.
        self.metrics = MetricsRegistry()
        self.metrics.register("mem", self.stats)
        self.metrics.register("bus", self.bus.stats)
        self.metrics.register("aes", self.aes.stats)
        self.metrics.register("sha", self.sha.stats)
        if self.counter_cache is not None:
            self.metrics.register("counter_cache", self.counter_cache.stats)
        if self.node_cache is not None and l2 is None:
            # With an injected L2 the node cache *is* the L2; the processor
            # registers it under "l2" instead.
            self.metrics.register("node_cache", self.node_cache.stats)
        scheme_stats = getattr(self.scheme, "stats", None)
        if dataclasses.is_dataclass(scheme_stats):
            self.metrics.register("scheme", scheme_stats)
        if self.recovery_stats is not None:
            self.metrics.register("recovery", self.recovery_stats)
        self._lat_hist = self.metrics.histogram("miss.auth_latency")

        # Fan the tracer out to the shared resources so bus transfers and
        # engine occupancy windows land on their own trace tracks.
        if self.tracer.enabled:
            self.bus.tracer = self.tracer
            self.aes.tracer = self.tracer
            self.sha.tracer = self.tracer
            if self.counter_cache is not None:
                self.counter_cache.tracer = self.tracer
            self.rsr_file.tracer = self.tracer

    def reset_stats(self) -> None:
        """Zero every registered statistic (warmup/measurement boundary)."""
        self.metrics.reset()

    # -- low-level transfers -------------------------------------------------
    #
    # All bus and engine slots are reserved at the *initiation* time of the
    # miss or write-back that needs them, which is monotonically
    # non-decreasing across calls.  Data dependencies (a pad that cannot
    # start before its counter arrives; a MAC that cannot start before its
    # block arrives) are honoured as readiness *floors* on the completion
    # time instead of future-dated reservations — future-dating a shared
    # FCFS resource would block every later request behind work that has
    # not logically started yet.

    def _bus_read(self, now: float, num_bytes: int,
                  path: PathTime | None = None,
                  labels: tuple[str, str, str] = ("bus_queue", "bus", "dram"),
                  ) -> float:
        """Issue a read transaction; returns data-arrival time.

        When attributing, the queueing delay, wire occupancy, and DRAM
        access accrue to ``labels`` (tree fetches relabel all three to the
        tree-walk bucket).
        """
        start, end = self.bus.schedule(now, num_bytes)
        arrive = end + self.mem_latency
        if path is not None:
            path.advance(labels[0], start)
            path.advance(labels[1], end)
            path.advance(labels[2], arrive)
        return arrive

    def _bus_write(self, now: float, num_bytes: int) -> float:
        """Issue a posted write; returns bus-release time."""
        _, end = self.bus.schedule(now, num_bytes)
        return end

    def _aes_pads(self, now: float, earliest_start: float,
                  num_chunks: int) -> float:
        """Generate ``num_chunks`` pads; engine slots reserved at ``now``,
        completion no earlier than the dependency allows."""
        engine_done = self.aes.request_many(now, num_chunks)
        return max(engine_done,
                   self.aes.batch_latency(num_chunks, earliest_start))

    def _sha_mac(self, now: float, data_arrive: float) -> float:
        """One SHA-1 block MAC; cannot complete before arrival + latency."""
        engine_done = self.sha.request(now)
        return max(engine_done, data_arrive + self.sha.latency)

    # -- counter resolution --------------------------------------------------

    def _resolve_counter(self, now: float, address: int,
                         for_write: bool,
                         path: PathTime | None = None) -> float:
        """Bring the block's counter on-chip; returns its ready time.

        Charges bus traffic for counter-cache misses, write-backs for dirty
        displaced counter blocks, and (when counters are authenticated) the
        verification work for the fetched counter block.  Half-misses — the
        counter block is already in flight — wait for the outstanding fill
        without new traffic.
        """
        assert self.counter_cache is not None
        tracer = self.tracer
        index = self.scheme.counter_block_address(address)
        outcome = self.counter_cache.access(index, write=for_write, now=now)
        inflight = self._counter_inflight.get(index)
        if outcome.hit:
            if inflight is not None and inflight > now:
                # Half-miss: the line is allocated but its fill is still in
                # flight; wait for the outstanding transfer, no new traffic.
                self.stats.counter_half_misses += 1
                if tracer.enabled:
                    tracer.instant("counter", "resolve-half-miss", now,
                                   index=index)
                if path is not None:
                    path.advance("counter_wait", inflight)
                return inflight
            if tracer.enabled:
                tracer.instant("counter", "resolve-hit", now, index=index)
            return now
        if inflight is not None and inflight > now:
            self.stats.counter_half_misses += 1
            if tracer.enabled:
                tracer.instant("counter", "resolve-half-miss", now,
                               index=index)
            if path is not None:
                path.advance("counter_wait", inflight)
            return inflight
        self.stats.counter_fetches += 1
        if tracer.enabled:
            tracer.instant("counter", "resolve-miss", now, index=index)
        arrive = self._bus_read(now, self.block_size, path=path)
        self._counter_inflight[index] = arrive
        eviction = self.counter_cache.fill(index, dirty=False)
        if eviction is not None and eviction.dirty:
            self._write_back_counter_block(now)
        if (self.node_cache is not None
                and self.config.authenticate_counters):
            # Counter blocks are tree leaves (Figure 3): verify on fetch.
            leaf = self._num_data_leaves + index
            self._verify_chain(now, leaf, arrive, counter_ready=now)
        return arrive

    def _write_back_counter_block(self, now: float) -> None:
        """Displaced dirty counter block: bus write + leaf-MAC update."""
        self.stats.counter_writebacks += 1
        self._bus_write(now, self.block_size)
        if self.node_cache is not None and self.config.authenticate_counters:
            self._update_parent(now)

    # -- MAC timing helpers ----------------------------------------------------

    def _leaf_mac_done(self, fetch_issue: float, arrive: float,
                       counter_ready: float, path: PathTime | None = None,
                       tree: bool = False) -> float:
        """Completion time of one block's MAC check.

        GCM: the authentication pad is requested as soon as the counter is
        known (overlapping the fetch); GHASH runs as ciphertext arrives and
        the final XOR waits for the pad.  SHA-1: the whole MAC latency
        starts only once the block has arrived.

        ``path``, when given, must stand at ``arrive``; it is advanced to
        the MAC completion with the GHASH/AES (or SHA) segments charged to
        their buckets — or wholesale to the tree-walk bucket for node MACs.
        """
        if self.config.auth is AuthMode.GCM:
            engine_done = self.aes.request(fetch_issue)
            pad_ready = max(engine_done, counter_ready + self.aes.latency)
            done = self.ghash.hash_block(arrive, pad_ready, self._chunks)
            if path is not None:
                ghash_done = (arrive
                              + self._chunks * self.ghash.cycles_per_chunk)
                path.advance("tree" if tree else "ghash",
                             min(ghash_done, done))
                path.advance("tree" if tree else "aes",
                             done - self.ghash.final_xor_cycles)
                path.advance("tree" if tree else "ghash", done)
            return done
        done = self._sha_mac(fetch_issue, arrive)
        if path is not None:
            path.advance("tree" if tree else "sha", done)
        return done

    def _update_parent(self, now: float) -> None:
        """Charge the work of installing a new MAC into a parent node.

        The parent must be on-chip; a miss costs one node fetch.  Update
        propagation beyond the first cached node happens on later
        evictions, matching the lazy protocol.  This work is off the
        processor's critical path (posted, like write-backs).
        """
        # One MAC computation for the new code.
        if self.config.auth is AuthMode.GCM:
            pad_ready = self.aes.request(now)
            self.ghash.hash_block(now, pad_ready, self._chunks)
        else:
            self.sha.request(now)

    def _verify_chain(self, now: float, leaf_index: int, data_arrive: float,
                      counter_ready: float,
                      path: PathTime | None = None) -> float:
        """Fetch + verify all missing tree levels above a leaf.

        Returns the cycle at which the leaf's authentication chain is
        complete.  Parallel mode (section 3) issues every missing level's
        fetch immediately and authenticates codes as they arrive; sequential
        mode starts each level's fetch only after the level above verified.

        ``path``, when given, must stand at ``data_arrive``; it is advanced
        in place to the chain completion, node-fetch work charged to the
        tree-walk bucket.
        """
        assert self.geometry is not None and self.node_cache is not None
        geometry = self.geometry
        tracer = self.tracer
        missing: list[int] = []  # node-cache addresses, leaf-side first
        level, index = 1, geometry.parent_index(leaf_index)
        while level <= geometry.depth:
            node_block = geometry.node_region_block(level, index)
            node_address = (self._node_region_base
                            + node_block * self.block_size)
            if self.node_cache.access(node_address):
                break
            missing.append(node_address)
            level += 1
            index = geometry.parent_index(index)

        leaf_done = self._leaf_mac_done(now, data_arrive, counter_ready,
                                        path=path)
        if not missing:
            return leaf_done

        auth_done = leaf_done
        if self.config.parallel_auth:
            # All fetches issued now; pads (GCM) also requested now.
            node_paths: list[PathTime] = []
            for node_address in missing:
                node_path = PathTime(now) if path is not None else None
                arrive = self._bus_read(now, self.block_size,
                                        path=node_path, labels=_TREE_LABELS)
                done = self._leaf_mac_done(now, arrive, now, path=node_path,
                                           tree=True)
                if tracer.enabled:
                    tracer.span("tree", "level-fetch+verify", now, done,
                                node=node_address)
                auth_done = max(auth_done, done)
                if node_path is not None:
                    node_paths.append(node_path)
                self._fill_node(node_address, now)
            if path is not None:
                path.adopt(PathTime.merge(path, *node_paths))
        else:
            # Top-down: the chain's trust must reach each level before the
            # next fetch begins.
            t = now
            chain_path = PathTime(now) if path is not None else None
            for node_address in reversed(missing):
                level_start = t
                arrive = self._bus_read(t, self.block_size,
                                        path=chain_path, labels=_TREE_LABELS)
                t = self._leaf_mac_done(t, arrive, t, path=chain_path,
                                        tree=True)
                if tracer.enabled:
                    tracer.span("tree", "level-fetch+verify", level_start, t,
                                node=node_address)
                self._fill_node(node_address, t)
            auth_done = max(leaf_done, t)
            if path is not None:
                path.adopt(PathTime.merge(path, chain_path))
        return auth_done

    def _fill_node(self, node_address: int, now: float) -> None:
        eviction = self.node_cache.fill(node_address)
        if eviction is not None and eviction.dirty:
            if eviction.address >= self._node_region_base:
                # displaced dirty code block: write + parent-MAC update
                self._bus_write(now, self.block_size)
                self._update_parent(now)
            else:
                # codes share the L2 with data, so a node fill can displace
                # a dirty data block — service it through the full path
                self.write_back(now, eviction.address)

    def _update_leaf(self, now: float, leaf_index: int) -> None:
        """Write-back path: install the block's new MAC in its parent."""
        assert self.geometry is not None and self.node_cache is not None
        parent = self.geometry.parent_index(leaf_index)
        node_block = self.geometry.node_region_block(1, parent)
        node_address = (self._node_region_base
                        + node_block * self.block_size)
        if not self.node_cache.access(node_address, write=True):
            self._bus_read(now, self.block_size)
            self._fill_node(node_address, now)
            self.node_cache.access(node_address, write=True)
        self._update_parent(now)

    # -- read path -----------------------------------------------------------

    def read_miss(self, now: float, address: int) -> MissTiming:
        """Service one L2 read miss; returns data/auth completion times."""
        self.stats.reads += 1
        mode = self.config.encryption
        counter_ready = now
        transfer_bytes = self.block_size
        tracer = self.tracer
        recording = tracer.enabled

        if isinstance(self.scheme, CounterPredictionScheme):
            return self._read_miss_prediction(now, address)
        if mode is EncryptionMode.SHARES:
            return self._read_miss_shares(now, address)
        counter_path = PathTime(now) if recording else None
        if self.counter_cache is not None:
            counter_ready = self._resolve_counter(now, address,
                                                  for_write=False,
                                                  path=counter_path)

        pad_done = None
        pad_path = None
        if mode is EncryptionMode.COUNTER:
            pad_done = self._aes_pads(now, counter_ready, self._chunks)
            if recording:
                pad_path = counter_path.fork()
                pad_path.advance("aes", pad_done)

        arrive_path = PathTime(now) if recording else None
        arrive = self._bus_read(now, transfer_bytes, path=arrive_path)

        if mode is EncryptionMode.NONE:
            data_ready = arrive
            data_path = arrive_path
        elif mode is EncryptionMode.DIRECT:
            data_ready = self._aes_pads(now, arrive, self._chunks)
            if recording:
                data_path = arrive_path.fork()
                data_path.advance("aes", data_ready)
        else:
            self.stats.pads.pad_requests += 1
            timely = pad_done <= arrive
            if timely:
                self.stats.pads.timely_pads += 1
            data_ready = max(arrive, pad_done) + 1  # XOR
            if recording:
                tracer.instant("pad", "timely" if timely else "late", arrive,
                               address=address, pad_done=pad_done)
                data_path = PathTime.merge(arrive_path, pad_path).fork()
                data_path.advance("other", data_ready)

        auth_done = data_ready
        if self.node_cache is not None:
            leaf = address // self.block_size
            chain_path = arrive_path.fork() if recording else None
            chain_done = self._verify_chain(now, leaf, arrive, counter_ready,
                                            path=chain_path)
            auth_done = max(data_ready, chain_done)
        self._lat_hist.observe(auth_done - now)
        if recording:
            auth_path = data_path
            if self.node_cache is not None:
                auth_path = PathTime.merge(data_path, chain_path)
            tracer.miss(MissRecord(address=address, issue=now,
                                   data_ready=data_ready,
                                   auth_done=auth_done,
                                   parts=auth_path.parts))
            tracer.span("miss", f"read@{address:#x}", now, auth_done,
                        data_ready=data_ready)
        return MissTiming(data_ready=data_ready, auth_done=auth_done)

    def read_misses(self, now: float, addresses: list[int]) -> list[MissTiming]:
        """Service several L2 misses issued in the same cycle.

        Models the section-3.2 overlap: all misses contend for the bus and
        AES/SHA engines from ``now`` (the engines' slot schedules serialize
        them), and misses touching the same counter block are serviced back
        to back so the shared counter fetch is charged once — the later
        siblings see a counter-cache hit or half-miss instead of a second
        full fetch.  Results are returned in input order.
        """
        if self.counter_cache is not None:
            order = sorted(
                range(len(addresses)),
                key=lambda i: (
                    self.scheme.counter_block_address(addresses[i]),
                    addresses[i],
                ),
            )
        else:
            order = sorted(range(len(addresses)),
                           key=lambda i: addresses[i])
        timings: list[MissTiming | None] = [None] * len(addresses)
        for i in order:
            timings[i] = self.read_miss(now, addresses[i])
        return timings  # type: ignore[return-value]

    def write_backs(self, now: float, addresses: list[int]) -> float:
        """Service several dirty evictions posted in the same cycle.

        Counter-block grouping as in :meth:`read_misses`.  Returns the
        latest stall-until cycle across the batch (write-backs are posted;
        only RSR conditions stall the core).
        """
        if self.counter_cache is not None:
            ordered = sorted(
                addresses,
                key=lambda a: (
                    (self.scheme.counter_block_address(a), a)
                    if a < self._node_region_base else (-1, a)
                ),
            )
        else:
            ordered = sorted(addresses)
        stall_until = now
        for address in ordered:
            stall_until = max(stall_until, self.write_back(now, address))
        return stall_until

    def _read_miss_shares(self, now: float, address: int) -> MissTiming:
        """Secret-shared read path: k share fetches, k leaf verifications.

        The shares travel in parallel over the shared bus; the plaintext is
        a GF(256) combine of the arrived shares (one cycle, like the CTR
        XOR — no pad generation on the read path, since the coefficient
        keystream is only needed to *split*).  Each share is a distinct
        tree leaf, so every fetched share image is independently
        authenticated before reconstruction trusts it.
        """
        tracer = self.tracer
        recording = tracer.enabled
        counter_path = PathTime(now) if recording else None
        counter_ready = now
        if self.counter_cache is not None:
            counter_ready = self._resolve_counter(now, address,
                                                  for_write=False,
                                                  path=counter_path)
        block_index = address // self.block_size
        arrived = now
        auth_done = now
        share_paths: list[PathTime] = []
        chain_paths: list[PathTime] = []
        for s in range(self._shares_k):
            arrive_path = PathTime(now) if recording else None
            arrive = self._bus_read(now, self.block_size, path=arrive_path)
            arrived = max(arrived, arrive)
            leaf = s * self._num_data_blocks + block_index
            chain_path = arrive_path.fork() if recording else None
            chain_done = self._verify_chain(now, leaf, arrive, counter_ready,
                                            path=chain_path)
            auth_done = max(auth_done, chain_done)
            if recording:
                share_paths.append(arrive_path)
                chain_paths.append(chain_path)
        data_ready = arrived + 1  # GF combine of the k share images
        auth_done = max(auth_done, data_ready)
        self._lat_hist.observe(auth_done - now)
        if recording:
            data_path = PathTime.merge(counter_path, *share_paths).fork()
            data_path.advance("other", data_ready)
            auth_path = PathTime.merge(data_path, *chain_paths)
            tracer.miss(MissRecord(address=address, issue=now,
                                   data_ready=data_ready,
                                   auth_done=auth_done,
                                   parts=auth_path.parts,
                                   kind="shares"))
            tracer.span("miss", f"shares@{address:#x}", now, auth_done,
                        data_ready=data_ready)
        return MissTiming(data_ready=data_ready, auth_done=auth_done)

    def _read_miss_prediction(self, now: float, address: int) -> MissTiming:
        """Counter-prediction read path (Figure 6).

        N candidate pads are precomputed speculatively; the block's actual
        64-bit counter travels with the data (+8 bytes of bus traffic) to
        check the prediction.  A wrong prediction regenerates pads after
        the counter arrives.
        """
        scheme = self.scheme
        tracer = self.tracer
        recording = tracer.enabled
        correct, candidates = scheme.predict(address)
        # Precompute pads for every candidate; remember each completion.
        completions = []
        for _ in candidates:
            completions.append(self.aes.request_many(now, self._chunks))
        arrive_path = PathTime(now) if recording else None
        arrive = self._bus_read(now, self.block_size + 8, path=arrive_path)
        self.stats.pads.pad_requests += 1
        if correct:
            actual = scheme.counter_for_block(address)
            base = scheme.base_counter(address)
            # base may have resynced on a miss; guard the index range
            position = min(max(actual - base, 0), len(completions) - 1)
            pad_done = completions[position]
            timely = pad_done <= arrive
            if timely:
                self.stats.pads.timely_pads += 1
            data_ready = max(arrive, pad_done) + 1
            if recording:
                tracer.instant("pad", "timely" if timely else "late", arrive,
                               address=address, pad_done=pad_done)
                pad_path = PathTime(now)
                pad_path.advance("aes", pad_done)
                data_path = PathTime.merge(arrive_path, pad_path).fork()
                data_path.advance("other", data_ready)
        else:
            pad_done = self._aes_pads(now, arrive, self._chunks)
            data_ready = pad_done + 1
            if recording:
                tracer.instant("pad", "mispredict", arrive, address=address)
                data_path = arrive_path.fork()
                data_path.advance("aes", pad_done)
                data_path.advance("other", data_ready)
        auth_done = data_ready
        if self.node_cache is not None:
            leaf = address // self.block_size
            chain_path = arrive_path.fork() if recording else None
            chain_done = self._verify_chain(now, leaf, arrive, now,
                                            path=chain_path)
            auth_done = max(data_ready, chain_done)
        self._lat_hist.observe(auth_done - now)
        if recording:
            auth_path = data_path
            if self.node_cache is not None:
                auth_path = PathTime.merge(data_path, chain_path)
            tracer.miss(MissRecord(address=address, issue=now,
                                   data_ready=data_ready,
                                   auth_done=auth_done,
                                   parts=auth_path.parts,
                                   kind="prediction"))
            tracer.span("miss", f"pred@{address:#x}", now, auth_done,
                        data_ready=data_ready)
        return MissTiming(data_ready=data_ready, auth_done=auth_done)

    # -- write path ----------------------------------------------------------

    def write_back(self, now: float, address: int) -> float:
        """Service one dirty L2 eviction; returns the stall-until cycle.

        Write-backs are posted (no core stall) except for the two RSR
        conditions of section 4.2, in which case the returned cycle is when
        the core may proceed.
        """
        if address >= self._node_region_base:
            # eviction of a Merkle code block cached in the L2
            self._bus_write(now, self.block_size)
            self._update_parent(now)
            return now
        self.stats.writes += 1
        stall_until = now
        counter = 0
        counter_ready = now

        if self.scheme is not None:
            if self.counter_cache is not None:
                counter_ready = self._resolve_counter(now, address,
                                                      for_write=True)
                self.counter_cache.mark_dirty(
                    self.scheme.counter_block_address(address)
                )
            result = self.scheme.increment(address)
            counter = result.counter
            if result.action is OverflowAction.PAGE_REENCRYPTION:
                stall_until = self._page_reencrypt_timing(
                    max(now, counter_ready), result.page_address, address
                )
            elif result.action is OverflowAction.FULL_REENCRYPTION:
                # Paper methodology: assumed instantaneous, zero traffic;
                # occurrences are counted and reported above the bars.
                self.stats.reencryption.full_reencryptions += 1
                if self.tracer.enabled:
                    self.tracer.instant("rsr", "full-reencryption", now,
                                        address=address)
                self.scheme.reset_all_counters()
                self.scheme.set_counter(address, 1)
                counter = 1

        mode = self.config.encryption
        if mode is EncryptionMode.SHARES:
            # Splitting needs the k-1 coefficient keystreams (PRF pads, same
            # engine as CTR), then posts all n share blocks; each share's
            # MAC lands in its own leaf slot.
            self._aes_pads(now, max(counter_ready, stall_until),
                           (self._shares_k - 1) * self._chunks)
            block_index = address // self.block_size
            for s in range(self._shares_n):
                self._bus_write(now, self.block_size)
                if self.node_cache is not None:
                    self._update_leaf(
                        now, s * self._num_data_blocks + block_index
                    )
            self._written.add(address)
            return stall_until
        transfer_bytes = self.block_size
        if isinstance(self.scheme, CounterPredictionScheme):
            transfer_bytes += 8  # the stored 64-bit counter rides along
        if mode in (EncryptionMode.COUNTER, EncryptionMode.DIRECT):
            # Encryption work for the outgoing block (bandwidth accounting;
            # the posted write buffers until the pads are ready).
            self._aes_pads(now, max(counter_ready, stall_until),
                           self._chunks)
        self._bus_write(now, transfer_bytes)
        self._written.add(address)

        if self.node_cache is not None:
            self._update_leaf(now, address // self.block_size)
        return stall_until

    # -- RSR page re-encryption ------------------------------------------------

    def _page_reencrypt_timing(self, now: float, page_index: int,
                               triggering_address: int) -> float:
        """Model one page re-encryption; returns the core's stall-until.

        Normally the core does not stall: the RSR fetches, decrypts, and
        re-writes non-resident blocks in the background while cached blocks
        are lazily dirty-marked.  Stalls happen only when the page already
        has an active RSR or all RSRs are busy.
        """
        scheme = self.scheme
        assert isinstance(scheme, SplitCounterScheme)
        stats = self.stats.reencryption
        stats.page_reencryptions += 1
        stall_until = now
        self.rsr_file.expire(now)
        active = self.rsr_file.find(page_index)
        if active is not None:
            # Second overflow while the page is still re-encrypting: the
            # write-back stalls until the RSR frees.
            stats.rsr_stalls += 1
            stall_until = active.busy_until
            active.free()
        rsr = self.rsr_file.find_free()
        if rsr is None:
            stats.rsr_stalls += 1
            stall_until = max(stall_until, self.rsr_file.earliest_free_time())
            self.rsr_file.expire(stall_until)
            rsr = self.rsr_file.find_free()

        start = max(now, stall_until)
        t = start
        old_major = scheme.major_counter(page_index) - 1
        for block_address in scheme.blocks_of_page(page_index):
            if block_address == triggering_address:
                stats.blocks_found_onchip += 1
                continue
            if self.l2 is not None and self.l2.contains(block_address):
                # Lazy: dirty-mark the cached copy; it re-encrypts under the
                # new major on its natural write-back.
                scheme.reset_minor(block_address)
                self.l2.mark_dirty(block_address)
                stats.blocks_found_onchip += 1
                stats.blocks_reencrypted += 1
                continue
            if block_address not in self._written:
                scheme.reset_minor(block_address)
                stats.blocks_untouched += 1
                continue
            # Fetch, decrypt under the old counter, write back re-encrypted.
            # RSR traffic is background-priority: it consumes bandwidth
            # (charged to the bus statistics) but demand misses are not
            # queued behind it — the arbitration that lets section 4.2's
            # re-encryption overlap normal execution.
            read_occ = self.bus.charge_background(
                self.block_size * self._shares_k
            )
            arrive = t + read_occ + self.mem_latency
            pad_time = self.aes.batch_latency(self._chunks)
            plain_at = max(arrive, t + pad_time) + 1
            scheme.reset_minor(block_address)
            scheme.increment(block_address)
            t = (plain_at + pad_time + 1
                 + self.bus.charge_background(
                     self.block_size * self._shares_n))
            if self.node_cache is not None:
                for s in range(self._shares_n):
                    self._update_leaf(
                        t, s * self._num_data_blocks
                        + block_address // self.block_size
                    )
            stats.blocks_fetched += 1
            stats.blocks_reencrypted += 1
        rsr.allocate(page_index, old_major, busy_until=t)
        stats.max_concurrent_rsrs = max(stats.max_concurrent_rsrs,
                                        self.rsr_file.active_count)
        stats.total_page_cycles += t - start
        if self.tracer.enabled:
            self.tracer.span("rsr", f"page-{page_index}", start, t,
                             page=page_index,
                             stalled_until=stall_until,
                             active_rsrs=self.rsr_file.active_count)
        if not self.config.rsr_overlap:
            # Ablation: without the RSR overlap machinery the write-back
            # (and the core behind it) stalls for the whole re-encryption.
            return max(stall_until, t)
        return stall_until

    # -- recovery timing -------------------------------------------------------

    def charge_recovery(self, now: float, attempts: int,
                        path: PathTime | None = None) -> float:
        """Charge ``attempts`` integrity-retry re-fetches starting at ``now``.

        Each retry waits out its exponential-backoff delay (same schedule
        as the functional :class:`~repro.resilience.RecoveryController`,
        seeded independently) and then re-reads the block over the bus.
        Returns when the last re-read's data arrives.
        """
        if self._recovery_rng is None:
            raise RuntimeError("recovery is not enabled in this config")
        cfg = self.config.recovery
        t = now
        backoff = 0.0
        for attempt in range(1, attempts + 1):
            delay = backoff_delay(cfg, attempt, self._recovery_rng)
            backoff += delay
            t = self._bus_read(t + delay, self.block_size, path=path)
        self.recovery_stats.violations += 1
        self.recovery_stats.retries += attempts
        self.recovery_stats.backoff_cycles += backoff
        if self.tracer.enabled:
            self.tracer.span("recovery", "retries", now, t,
                             attempts=attempts, backoff_cycles=backoff)
        return t

    # -- checkpoint support ----------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable timing state (the shared L2 is the processor's)."""
        state: dict = {
            "stats": fields_state(self.stats),
            "bus": self.bus.state_dict(),
            "aes": self.aes.state_dict(),
            "sha": self.sha.state_dict(),
            "written": set(self._written),
            "counter_inflight": dict(self._counter_inflight),
            "rsrs": self.rsr_file.state_dict(),
            "instruments": self.metrics.instruments_state(),
        }
        if self.counter_cache is not None:
            state["counter_cache"] = self.counter_cache.state_dict()
        if self.scheme is not None:
            state["scheme"] = self.scheme.state_dict()
        if self.node_cache is not None and self.node_cache is not self.l2:
            # With an injected L2 the node cache *is* the L2, which the
            # processor checkpoint owns; saving it here would restore twice.
            state["node_cache"] = self.node_cache.state_dict()
        if self._recovery_rng is not None:
            state["recovery"] = {
                "rng": self._recovery_rng.getstate(),
                "stats": fields_state(self.recovery_stats),
            }
        return state

    def load_state(self, state: dict) -> None:
        load_fields_state(self.stats, state["stats"])
        self.bus.load_state(state["bus"])
        self.aes.load_state(state["aes"])
        self.sha.load_state(state["sha"])
        self._written = set(state["written"])
        self._counter_inflight = dict(state["counter_inflight"])
        self.rsr_file.load_state(state["rsrs"])
        self.metrics.load_instruments_state(state["instruments"])
        if self.counter_cache is not None:
            self.counter_cache.load_state(state["counter_cache"])
        if self.scheme is not None:
            self.scheme.load_state(state["scheme"])
        if "node_cache" in state and self.node_cache is not None:
            self.node_cache.load_state(state["node_cache"])
        if self._recovery_rng is not None and "recovery" in state:
            rng_state = state["recovery"]["rng"]
            self._recovery_rng.setstate(
                (rng_state[0], tuple(rng_state[1]), rng_state[2])
            )
            load_fields_state(self.recovery_stats,
                              state["recovery"]["stats"])
