"""Trace-driven processor model with a bounded out-of-order window.

Stands in for the paper's SESC-simulated 3-issue out-of-order core
(section 5).  The model executes a memory-reference trace:

* non-memory instructions retire at the issue width (3 per cycle);
* L1 hits are free (their 2-cycle latency is fully pipelined);
* L2 hits are likewise hidden by the out-of-order window;
* L2 *load* misses enter an outstanding-miss window bounded by the number
  of MSHRs and by a reorder-buffer instruction budget — the core keeps
  running until either fills, which is what lets independent misses overlap
  (memory-level parallelism) while still exposing latency that exceeds the
  window;
* store misses allocate and consume memory-system resources (bus, engines,
  counter traffic) but drain through the store buffer without stalling
  retirement;
* dirty L2 evictions go to ``TimingSecureMemory.write_back``, whose only
  direct stalls are the RSR conditions of section 4.2.

The authentication policy (Lazy / Commit / Safe, Figure 8) decides how much
of each load's ``auth_done - data_ready`` gap is exposed on top of the data
arrival before the load is considered complete.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.auth.policies import AuthPolicy, exposed_auth_latency
from repro.core.config import (
    DEFAULT_ISSUE_WIDTH,
    DEFAULT_L1_ASSOC,
    DEFAULT_L1_SIZE,
    DEFAULT_L2_ASSOC,
    DEFAULT_L2_SIZE,
    SecureMemoryConfig,
)
from repro.memory.cache import Cache
from repro.obs.tracer import Tracer
from repro.sim.timing_memory import TimingSecureMemory
from repro.workloads.trace import Trace

DEFAULT_ROB_INSNS = 128
DEFAULT_MSHRS = 8


@dataclass
class LoopState:
    """The trace loop's scalar state at a reference boundary.

    Everything :meth:`Processor.run` keeps outside the memory hierarchy:
    captured by the checkpoint callback, handed back via ``resume=`` so a
    resumed run continues exactly where the checkpointed one stopped.
    ``outstanding`` mirrors the bounded out-of-order window as
    ``[completion_cycle, insn_index]`` pairs.

    Both engines express the clock as ``cycle = cycle_base +
    trace.cum_cycles(cpi)[i]`` (stalls re-anchor the base), so the base —
    not the derived ``cycle`` — is what a resume needs: re-deriving it as
    ``cycle - cum[i]`` would lose ulps to float cancellation and break the
    bit-identical-resume guarantee.  ``cycle`` stays in the snapshot for
    readability and legacy checkpoints (``cycle_base=None`` falls back to
    the approximate re-derivation).
    """

    cycle: float = 0.0
    insns: int = 0
    writebacks: int = 0
    cycle0: float = 0.0
    insns0: int = 0
    next_ref: int = 0
    outstanding: list = field(default_factory=list)
    cycle_base: float | None = None

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "insns": self.insns,
            "writebacks": self.writebacks,
            "cycle0": self.cycle0,
            "insns0": self.insns0,
            "next_ref": self.next_ref,
            "outstanding": [list(entry) for entry in self.outstanding],
            "cycle_base": self.cycle_base,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoopState":
        return cls(
            cycle=data["cycle"],
            insns=data["insns"],
            writebacks=data["writebacks"],
            cycle0=data["cycle0"],
            insns0=data["insns0"],
            next_ref=data["next_ref"],
            outstanding=[list(entry) for entry in data["outstanding"]],
            cycle_base=data.get("cycle_base"),
        )


@dataclass
class SimResult:
    """Outcome of one timing-simulation run."""

    name: str
    instructions: int
    cycles: float
    l1_hits: int
    l1_misses: int
    l2_hits: int
    l2_misses: int
    writebacks: int
    memory: TimingSecureMemory

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l2_miss_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_misses / total if total else 0.0

    @property
    def seconds(self) -> float:
        """Simulated wall time at the 5GHz clock of section 5."""
        return self.cycles / 5e9


class Processor:
    """Bounded-window trace-driven core over a two-level cache hierarchy."""

    def __init__(self, config: SecureMemoryConfig,
                 issue_width: int = DEFAULT_ISSUE_WIDTH,
                 rob_insns: int = DEFAULT_ROB_INSNS,
                 mshrs: int = DEFAULT_MSHRS,
                 l1_size: int = DEFAULT_L1_SIZE,
                 l1_assoc: int = DEFAULT_L1_ASSOC,
                 l2_size: int = DEFAULT_L2_SIZE,
                 l2_assoc: int = DEFAULT_L2_ASSOC,
                 tracer: Tracer | None = None,
                 rng=None):
        self.config = config
        self.issue_width = issue_width
        self.rob_insns = rob_insns
        self.mshrs = mshrs
        block = config.block_size
        self.l1 = Cache(l1_size, l1_assoc, block, name="l1d")
        self.l2 = Cache(l2_size, l2_assoc, block, name="l2")
        self.memory = TimingSecureMemory(config, l2=self.l2, tracer=tracer,
                                         rng=rng)
        # Single registry spanning the whole hierarchy: the memory system
        # already registered everything it owns; add the core-side caches.
        self.metrics = self.memory.metrics
        self.metrics.register("l1", self.l1.stats)
        self.metrics.register("l2", self.l2.stats)

    def resolved_sim_engine(self) -> str:
        """The timing-loop implementation this processor will run.

        ``config.sim_engine="auto"`` picks the NumPy event-batch engine
        when numpy is importable and falls back to the scalar loop
        otherwise; an explicit ``"batched"`` without numpy is an error
        rather than a silent fallback.
        """
        choice = self.config.sim_engine
        if choice == "auto":
            from repro.crypto.vector import HAVE_NUMPY

            return "batched" if HAVE_NUMPY else "scalar"
        if choice == "batched":
            from repro.crypto.vector import HAVE_NUMPY

            if not HAVE_NUMPY:
                raise RuntimeError(
                    "sim_engine='batched' requires numpy; use 'auto' or "
                    "'scalar'")
        return choice

    def run(self, trace: Trace, warmup_refs: int = 0, *,
            resume: LoopState | None = None,
            checkpoint_every: int | None = None,
            on_checkpoint=None) -> SimResult:
        """Execute a trace to completion and return timing statistics.

        ``warmup_refs`` references are simulated first to warm the caches
        (the paper fast-forwards 5 billion instructions before measuring);
        statistics and the cycle/instruction baselines reset at the
        boundary, so the result reflects warm-cache behaviour only.

        ``resume`` continues a run from a :class:`LoopState` captured by a
        previous checkpoint (the caches and memory system must have been
        restored first); ``checkpoint_every``/``on_checkpoint`` invoke the
        callback with the current :class:`LoopState` every N references.
        Checkpoints fire at the top of an iteration, before the reference
        executes, so a resumed run replays the exact remaining stream and
        finishes with bit-identical statistics.

        The loop itself runs on the engine named by ``config.sim_engine``
        — the per-reference scalar oracle below, or the NumPy event-batch
        engine of :mod:`repro.sim.batched`.  Both produce bit-identical
        cycles, statistics, and checkpoints (the golden-trace and
        differential suites enforce this), so the knob is purely a
        host-speed choice.
        """
        if self.resolved_sim_engine() == "batched":
            from repro.sim.batched import run_batched

            return run_batched(self, trace, warmup_refs=warmup_refs,
                               resume=resume,
                               checkpoint_every=checkpoint_every,
                               on_checkpoint=on_checkpoint)
        return self._run_scalar(trace, warmup_refs, resume=resume,
                                checkpoint_every=checkpoint_every,
                                on_checkpoint=on_checkpoint)

    def _run_scalar(self, trace: Trace, warmup_refs: int = 0, *,
                    resume: LoopState | None = None,
                    checkpoint_every: int | None = None,
                    on_checkpoint=None) -> SimResult:
        """The per-reference oracle loop (see :meth:`run` for semantics).

        Clock arithmetic is expressed against the trace's shared prefix
        sums (``cycle = cycle_base + cum[i]``, re-anchored whenever a
        stall advances the clock) so the batched engine can reproduce the
        exact same IEEE doubles by evaluating the exact same expressions.
        """
        l1 = self.l1
        l2 = self.l2
        memory = self.memory
        policy = self.config.auth_policy
        cpi = 1.0 / self.issue_width
        block_mask = ~(self.config.block_size - 1)
        cum_cycles = trace.cum_cycles(cpi)
        cum_insns = trace.cum_insns

        state = resume if resume is not None else LoopState()
        start = state.next_ref
        if state.cycle_base is not None:
            cycle_base = state.cycle_base
        else:
            # legacy checkpoint (or fresh state, where this is exactly 0.0)
            cycle_base = state.cycle - cum_cycles[start]
        insns_base = state.insns - cum_insns[start]
        writebacks = state.writebacks
        cycle0 = state.cycle0
        insns0 = state.insns0
        # outstanding load misses: (completion_cycle, insn_index_at_issue)
        outstanding: deque[tuple[float, int]] = deque(
            (entry[0], entry[1]) for entry in state.outstanding)

        writes = trace.writes
        addrs = trace.addrs
        mshrs = self.mshrs
        rob_insns = self.rob_insns

        for i in range(start, len(addrs)):
            if (checkpoint_every and on_checkpoint is not None
                    and i and i != start and i % checkpoint_every == 0):
                on_checkpoint(LoopState(
                    cycle=cycle_base + cum_cycles[i],
                    insns=insns_base + cum_insns[i],
                    writebacks=writebacks,
                    cycle0=cycle0, insns0=insns0, next_ref=i,
                    outstanding=[list(entry) for entry in outstanding],
                    cycle_base=cycle_base))
            if i == warmup_refs and warmup_refs:
                cycle0 = cycle_base + cum_cycles[i]
                insns0 = insns_base + cum_insns[i]
                writebacks = 0
                # The registry knows every stats object in the hierarchy, so
                # new stat sources cannot silently escape the warmup reset.
                self.metrics.reset()
                memory.tracer.clear()
            address = addrs[i] & block_mask
            is_write = writes[i]

            if l1.access(address, write=is_write):
                continue
            evicted_l1 = l1.fill(address, dirty=is_write)
            if evicted_l1 is not None and evicted_l1.dirty:
                # L1 write-back lands in the L2 (on-chip, no bus traffic).
                l2.access(evicted_l1.address, write=True)
            if l2.access(address):
                continue

            # L2 miss: the clock through this reference, then retire
            # completed window entries and make room.
            cycle = cycle_base + cum_cycles[i + 1]
            insns = insns_base + cum_insns[i + 1]
            while outstanding and outstanding[0][0] <= cycle:
                outstanding.popleft()
            while outstanding and (
                len(outstanding) >= mshrs
                or insns - outstanding[0][1] >= rob_insns
            ):
                cycle = max(cycle, outstanding[0][0])
                outstanding.popleft()

            timing = memory.read_miss(cycle, address)
            eviction = l2.fill(address, dirty=is_write)
            if eviction is not None and eviction.dirty:
                writebacks += 1
                stall = memory.write_back(cycle, eviction.address)
                cycle = max(cycle, stall)
            # Re-anchor unconditionally: (base + cum) - cum loses ulps, so
            # doing it only on stalls would make timing depend on *whether*
            # a stall happened — this way both engines re-anchor at every
            # miss and stay bit-identical.
            cycle_base = cycle - cum_cycles[i + 1]

            if is_write:
                # Stores drain via the store buffer; the fetch has consumed
                # bus/engine resources already, nothing enters the window.
                continue
            completion = timing.data_ready + exposed_auth_latency(
                policy, timing.data_ready, timing.auth_done
            )
            outstanding.append((completion, insns))

        # Drain: the last loads must complete.
        n = len(addrs)
        cycle = cycle_base + cum_cycles[n]
        insns = insns_base + cum_insns[n]
        if outstanding:
            cycle = max(cycle, outstanding[-1][0])
        return SimResult(
            name=trace.name,
            instructions=insns - insns0,
            cycles=cycle - cycle0,
            l1_hits=l1.stats.hits,
            l1_misses=l1.stats.misses,
            l2_hits=l2.stats.hits,
            l2_misses=l2.stats.misses,
            writebacks=writebacks,
            memory=memory,
        )

    # -- checkpoint support --------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "l1": self.l1.state_dict(),
            "l2": self.l2.state_dict(),
            "memory": self.memory.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.l1.load_state(state["l1"])
        self.l2.load_state(state["l2"])
        self.memory.load_state(state["memory"])


def simulate(config: SecureMemoryConfig, trace: Trace,
             warmup_refs: int = 0, tracer: Tracer | None = None,
             **kwargs) -> SimResult:
    """One-shot convenience: build a processor and run a trace."""
    return Processor(config, tracer=tracer, **kwargs).run(
        trace, warmup_refs=warmup_refs)
