"""IPC normalization and experiment-level aggregation helpers.

All performance results in the paper are *normalized IPC* — a scheme's IPC
divided by the IPC of the same application on a machine with no memory
encryption or authentication.  These helpers run the baseline and scheme
configurations over identical traces and compute the ratios and the
averages the figures report (averages in the paper are over all 21
benchmarks even when only a subset is plotted individually).

Aggregation semantics:

* A zero-IPC baseline makes ``normalized_ipc`` *undefined*, not zero —
  the cell reports ``nan`` so a broken baseline cannot masquerade as a
  "scheme is infinitely slow" data point and silently drag averages down.
* ``geometric_mean`` works in the log domain so a 21-benchmark product of
  small ratios cannot underflow to 0.0 (the naive product of 21 values
  around 1e-20 underflows ``float``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import SecureMemoryConfig, baseline_config
from repro.sim.processor import SimResult, simulate
from repro.workloads.trace import Trace


@dataclass
class NormalizedResult:
    """One (application, scheme) cell of a figure."""

    app: str
    scheme: str
    baseline: SimResult
    result: SimResult

    @property
    def normalized_ipc(self) -> float:
        # A zero baseline IPC means the ratio is undefined; report nan
        # rather than 0.0 so the cell is visibly invalid instead of
        # looking like a catastrophic slowdown.
        if self.baseline.ipc == 0:
            return float("nan")
        return self.result.ipc / self.baseline.ipc

    @property
    def valid(self) -> bool:
        """Whether this cell carries a defined normalized IPC."""
        return not math.isnan(self.normalized_ipc)

    @property
    def overhead(self) -> float:
        """IPC overhead as a fraction (paper: '5% overhead' = 0.95 nIPC).

        Propagates ``nan`` from an undefined ``normalized_ipc``.
        """
        return 1.0 - self.normalized_ipc


def run_normalized(config: SecureMemoryConfig, trace: Trace,
                   baseline: SimResult | None = None,
                   warmup_refs: int = 0, **kwargs) -> NormalizedResult:
    """Simulate a scheme and its no-protection baseline on one trace."""
    if baseline is None:
        baseline = simulate(baseline_config(), trace,
                            warmup_refs=warmup_refs, **kwargs)
    result = simulate(config, trace, warmup_refs=warmup_refs, **kwargs)
    return NormalizedResult(app=trace.name, scheme=config.name,
                            baseline=baseline, result=result)


def _clean(values: list[float], skip_invalid: bool,
           allow_negative: bool) -> list[float]:
    """Shared validation for the mean helpers."""
    out = []
    for v in values:
        if math.isnan(v):
            if skip_invalid:
                continue
            raise ValueError("nan in mean input (invalid cell); "
                             "pass skip_invalid=True to drop such cells")
        if not allow_negative and v < 0:
            raise ValueError(f"negative value {v!r} has no geometric mean")
        out.append(v)
    return out


def geometric_mean(values: list[float], skip_invalid: bool = False) -> float:
    """Geometric mean (well-suited to IPC ratios), computed in log domain.

    * ``[]`` (or all-skipped input) -> 0.0
    * any value == 0 -> 0.0 (a zero ratio annihilates the product)
    * any negative value -> ``ValueError`` (undefined for real outputs)
    * any nan -> ``ValueError`` unless ``skip_invalid=True``, which drops
      nan cells (e.g. `NormalizedResult` cells with a broken baseline)
    """
    cleaned = _clean(values, skip_invalid, allow_negative=False)
    if not cleaned:
        return 0.0
    if any(v == 0 for v in cleaned):
        return 0.0
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


def arithmetic_mean(values: list[float], skip_invalid: bool = False) -> float:
    """Arithmetic mean; nan handling matches :func:`geometric_mean`."""
    cleaned = _clean(values, skip_invalid, allow_negative=True)
    if not cleaned:
        return 0.0
    return sum(cleaned) / len(cleaned)
