"""IPC normalization and experiment-level aggregation helpers.

All performance results in the paper are *normalized IPC* — a scheme's IPC
divided by the IPC of the same application on a machine with no memory
encryption or authentication.  These helpers run the baseline and scheme
configurations over identical traces and compute the ratios and the
averages the figures report (averages in the paper are over all 21
benchmarks even when only a subset is plotted individually).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SecureMemoryConfig, baseline_config
from repro.sim.processor import SimResult, simulate
from repro.workloads.trace import Trace


@dataclass
class NormalizedResult:
    """One (application, scheme) cell of a figure."""

    app: str
    scheme: str
    baseline: SimResult
    result: SimResult

    @property
    def normalized_ipc(self) -> float:
        if self.baseline.ipc == 0:
            return 0.0
        return self.result.ipc / self.baseline.ipc

    @property
    def overhead(self) -> float:
        """IPC overhead as a fraction (paper: '5% overhead' = 0.95 nIPC)."""
        return 1.0 - self.normalized_ipc


def run_normalized(config: SecureMemoryConfig, trace: Trace,
                   baseline: SimResult | None = None,
                   warmup_refs: int = 0, **kwargs) -> NormalizedResult:
    """Simulate a scheme and its no-protection baseline on one trace."""
    if baseline is None:
        baseline = simulate(baseline_config(), trace,
                            warmup_refs=warmup_refs, **kwargs)
    result = simulate(config, trace, warmup_refs=warmup_refs, **kwargs)
    return NormalizedResult(app=trace.name, scheme=config.name,
                            baseline=baseline, result=result)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (well-suited to IPC ratios)."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def arithmetic_mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
