"""NumPy event-batch engine for the trace-driven timing simulation.

The scalar loop in :mod:`repro.sim.processor` walks the trace one
reference at a time, paying Python interpreter overhead on every L1 hit
even though hits contribute nothing but a cycle increment.  This engine
restructures the same computation around which structural state is
*timing-independent* — classifiable ahead of time from the reference
stream alone:

* **phase A** — vectorized preprocessing over the materialized trace
  arrays (:meth:`repro.workloads.trace.Trace.arrays`): block alignment,
  L1 set indices, and same-block run collapsing computed as ndarray
  passes;
* **phase B1** — an exact true-LRU L1 kernel over the precomputed arrays
  that emits the L2 event stream (one event per L1 miss, tagged with the
  dirty L1 victim, if any).  The L1 is *always* timing-independent: only
  the processor's reference stream touches it.  The event stream for a
  from-reset run is cached on the trace, so a fig-4/fig-9 style sweep
  classifies each trace once and reuses the events for every scheme;
* **phase B2** — the same trick one level down.  When the L2 is not also
  the Merkle node cache and the counter scheme cannot trigger a page
  re-encryption (which probes ``l2.contains`` mid-run), nothing in the
  memory layer ever touches the L2 — so L2 hits, misses, and dirty
  victims are precomputable too, and the serial drain iterates only the
  *L2* misses.  Cached per (trace, L1 geometry, L2 geometry);
* **phase B2p** — the placement-only variant for split-counter schemes,
  whose page re-encryption *does* touch the L2 mid-run — but only via
  ``contains`` (pure) and ``mark_dirty`` (never reorders LRU).  L2
  *placement* (hit/miss/victim identity) therefore stays
  timing-independent and is precomputed like B2, while dirty bits and
  writebacks resolve live in the drain against a minimal residency shim
  (:class:`_L2ResidencyShim`) that also serves the re-encryption probes.
  Pending ``mark_dirty`` effects from L1 victim hits are attached to the
  next L2 miss event so they apply in exactly the scalar order;
* **phase C** — the genuinely serial remainder, kept in Python: the
  MSHR/ROB window drain, the FCFS bus schedule, counter half-miss
  in-flight ordering, Merkle chain walks, and RSR stall conditions.
  Eligible configurations (no counter prediction, no secret shares,
  single-copy engines, tracing off) drain through a *monomorphized
  closure engine* built by :func:`_make_fast_engine`: every hot mutable
  scalar (bus free slot, engine issue slots, statistic counters,
  histogram summary) lives in closure cells, synchronized with the real
  objects only at segment boundaries and around rare delegations (page
  re-encryption).  Everything else falls back to the real
  :class:`~repro.sim.timing_memory.TimingSecureMemory` methods operating
  on installed :class:`LeanCache` mirrors.

Bit-exactness contract: every cycle count, statistic, checkpoint, and
PathTime record equals the scalar engine's, down to the last ulp.  Both
engines share the trace's prefix-sum arrays and express the clock as
``cycle_base + cum_cycles[i]``; stalls re-anchor the base with the exact
same expressions, and the closure engine evaluates the exact float
expressions of the scalar methods in the exact order.  The golden-trace
fixtures and the Hypothesis differential suite in ``tests/sim/`` enforce
the contract for all registered schemes.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque

import numpy as np

from repro.auth.policies import (
    COMMIT_HIDE_CYCLES,
    AuthPolicy,
    exposed_auth_latency,
)
from repro.core.config import AuthMode, EncryptionMode
from repro.counters.base import OverflowAction
from repro.counters.prediction import CounterPredictionScheme
from repro.counters.split import SplitCounterScheme
from repro.memory.cache import Cache, CacheLine, Eviction

__all__ = ["LeanCache", "run_batched"]


class LeanCache:
    """Drop-in stand-in for :class:`~repro.memory.cache.Cache` state.

    Holds per-set lists of block *addresses* (MRU first) plus one dirty
    set, instead of per-line :class:`CacheLine` objects — the same
    true-LRU semantics at a fraction of the per-access cost.  Statistics
    go straight into the donor cache's ``stats`` object so the metrics
    registry, warmup resets, and snapshots keep working unchanged, and
    ``state_dict()`` emits exactly the donor's schema so checkpoints taken
    mid-run are byte-identical to scalar ones.

    The batched engine installs instances over ``processor.l1/.l2``,
    ``memory.l2``, ``memory.node_cache``, and the counter cache's inner
    cache for the duration of a run, then flushes the line state back.
    """

    __slots__ = ("sets", "dirty", "stats", "assoc", "num_sets",
                 "block_size", "_shift", "_mask")

    def __init__(self, cache: Cache):
        self.assoc = cache.assoc
        self.num_sets = cache.num_sets
        self.block_size = cache.block_size
        self._shift = cache.block_size.bit_length() - 1
        self._mask = cache.num_sets - 1
        self.stats = cache.stats  # shared instance, not a copy
        self.sets: list[list[int]] = []
        self.dirty: set[int] = set()
        for set_index, lines in enumerate(cache._sets):
            addresses = []
            for line in lines:
                if line.payload is not None:
                    raise ValueError(
                        "LeanCache mirrors timing-layer caches only "
                        "(payload-bearing lines belong to the functional "
                        "layer)")
                address = (line.tag * self.num_sets + set_index) \
                    * self.block_size
                addresses.append(address)
                if line.dirty:
                    self.dirty.add(address)
            self.sets.append(addresses)

    def flush_to(self, cache: Cache) -> None:
        """Write the mirrored line state back into the donor cache."""
        num_sets = self.num_sets
        block_size = self.block_size
        dirty = self.dirty
        new = CacheLine.__new__
        out = []
        for addresses in self.sets:
            lines = []
            for address in addresses:
                line = new(CacheLine)
                line.tag = address // block_size // num_sets
                line.dirty = address in dirty
                line.payload = None
                lines.append(line)
            out.append(lines)
        cache._sets = out

    # -- Cache-compatible interface (the subset the timing layer uses) ----

    def access(self, address: int, write: bool = False) -> bool:
        lines = self.sets[(address >> self._shift) & self._mask]
        if address in lines:
            i = lines.index(address)
            if i:
                lines.insert(0, lines.pop(i))
            if write:
                self.dirty.add(address)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, address: int, dirty: bool = False,
             payload=None) -> Eviction | None:
        lines = self.sets[(address >> self._shift) & self._mask]
        if address in lines:  # refill of a resident block: refresh it
            i = lines.index(address)
            if i:
                lines.insert(0, lines.pop(i))
            if dirty:
                self.dirty.add(address)
            return None
        evicted = None
        if len(lines) >= self.assoc:
            victim = lines.pop()
            victim_dirty = victim in self.dirty
            if victim_dirty:
                self.stats.writebacks += 1
                self.dirty.discard(victim)
            evicted = Eviction(address=victim, dirty=victim_dirty)
        lines.insert(0, address)
        if dirty:
            self.dirty.add(address)
        return evicted

    def contains(self, address: int) -> bool:
        return address in self.sets[(address >> self._shift) & self._mask]

    def mark_dirty(self, address: int) -> bool:
        if address in self.sets[(address >> self._shift) & self._mask]:
            self.dirty.add(address)
            return True
        return False

    def state_dict(self) -> dict:
        """Checkpoint schema identical to :meth:`Cache.state_dict`."""
        dirty = self.dirty
        num_sets = self.num_sets
        return {
            "sets": [
                [
                    {
                        "tag": address // self.block_size // num_sets,
                        "dirty": address in dirty,
                        "payload": None,
                    }
                    for address in addresses
                ]
                for addresses in self.sets
            ],
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "writebacks": self.stats.writebacks,
            },
        }


class _L2ResidencyShim:
    """Stand-in for ``memory.l2`` during placement-preclassified runs.

    When the L2's *placement* (which blocks are resident, and which get
    evicted) is precomputed but the dirty bits stay live (split-counter
    page re-encryption marks arbitrary resident blocks dirty mid-run),
    the memory layer's only L2 interactions are the residency probe and
    the dirty mark inside ``_page_reencrypt_timing``.  This shim exposes
    exactly those two, backed by the drain's live sets — anything else
    raises, so a violated assumption fails loudly instead of silently
    diverging from the scalar oracle.
    """

    __slots__ = ("resident", "dirty")

    def __init__(self):
        self.resident: set[int] = set()
        self.dirty: set[int] = set()

    def contains(self, address: int) -> bool:
        return address in self.resident

    def mark_dirty(self, address: int) -> bool:
        if address in self.resident:
            self.dirty.add(address)
            return True
        return False


# -- phase A/B1: ahead-of-time L1 classification ------------------------------


def _run_masks(blocks: np.ndarray, writes: np.ndarray, start: int, stop: int):
    """Collapse same-block runs in ``[start, stop)`` to their first ref.

    Returns ``(positions, run_writes)``: the trace indices of each run's
    first reference and, per run, whether *any* reference in the run
    writes.  Consecutive references to the same block after the first are
    guaranteed L1 hits on the MRU line — the cache state they produce is
    fully described by "hit count += run length - 1, dirty |= any write".
    """
    if stop == start:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(bool)
    seg_blocks = blocks[start:stop]
    first = np.empty(stop - start, dtype=bool)
    first[0] = True
    np.not_equal(seg_blocks[1:], seg_blocks[:-1], out=first[1:])
    positions = np.flatnonzero(first)
    run_writes = np.logical_or.reduceat(writes[start:stop], positions)
    return positions + start, run_writes


def _l1_kernel(mirror: LeanCache, blocks: list, block_set: list,
               writes: list, positions, run_writes, refs: int) -> list:
    """Exact L1 replay over one segment's collapsed reference runs.

    Emits the L2 event stream as ``(ref_index, block, is_write,
    dirty_l1_victim_or_None)`` tuples and accumulates the segment's L1
    statistics into the mirror's (shared) stats object.
    """
    sets = mirror.sets
    dirty = mirror.dirty
    assoc = mirror.assoc
    dirty_add = dirty.add
    dirty_discard = dirty.discard
    events = []
    append = events.append
    hits = refs - len(positions)  # collapsed repeats are all hits
    misses = 0
    writebacks = 0
    run_writes = run_writes.tolist()
    for k, i in enumerate(positions.tolist()):
        block = blocks[i]
        lines = sets[block_set[i]]
        if block in lines:
            j = lines.index(block)
            hits += 1
            if j:
                lines.insert(0, lines.pop(j))
        else:
            misses += 1
            victim_dirty = None
            if len(lines) >= assoc:
                victim = lines.pop()
                if victim in dirty:
                    dirty_discard(victim)
                    writebacks += 1
                    victim_dirty = victim
            lines.insert(0, block)
            append((i, block, writes[i], victim_dirty))
        if run_writes[k]:
            dirty_add(block)
    stats = mirror.stats
    stats.hits += hits
    stats.misses += misses
    stats.writebacks += writebacks
    return events


def _classified_events(trace, l1: Cache, blocks_arr, writes_arr):
    """Whole-trace L1 classification for a from-reset run, cached.

    The event stream and the final L1 line state depend only on the trace
    and the L1 geometry — not on the scheme under test — so a sweep over
    many schemes classifies each trace once.  Returns ``(events,
    event_refs, cum_writebacks, final_sets, final_dirty)`` where the
    cumulative array lets any segmentation recover exact per-boundary L1
    statistics.  The per-reference Python lists are materialized only on
    a cache miss — a warm sweep never pays for them.
    """
    key = (l1.size_bytes, l1.assoc, l1.block_size)
    cache = getattr(trace, "_l1_classification", None)
    if cache is None:
        cache = trace._l1_classification = {}
    hit = cache.get(key)
    if hit is not None:
        return hit
    blocks = blocks_arr.tolist()
    shift = l1.block_size.bit_length() - 1
    block_set = ((blocks_arr >> shift)
                 & np.int64(l1.num_sets - 1)).tolist()
    writes = trace.writes
    scratch = Cache(l1.size_bytes, l1.assoc, l1.block_size, name="scratch")
    mirror = LeanCache(scratch)
    positions, run_writes = _run_masks(blocks_arr, writes_arr, 0, len(trace))
    events = _l1_kernel(mirror, blocks, block_set, writes,
                        positions, run_writes, len(trace))
    event_refs = np.fromiter((e[0] for e in events), dtype=np.int64,
                             count=len(events))
    event_wbs = np.cumsum(
        np.fromiter((e[3] is not None for e in events), dtype=np.int64,
                    count=len(events)))
    result = (events, event_refs, event_wbs, mirror.sets, mirror.dirty)
    cache[key] = result
    return result


# -- phase B2: ahead-of-time L2 classification --------------------------------


def _l2_classified_events(trace, l1_key: tuple, l2: Cache, b1):
    """Whole-trace L2 classification for a from-reset run, cached.

    Valid only when the memory layer never touches the L2: no Merkle node
    cache sharing it, and no split-counter scheme (whose page
    re-encryption probes ``l2.contains``/``mark_dirty`` mid-run).  Under
    those conditions the L2's hit/miss/victim sequence is a pure function
    of the B1 event stream, so the serial drain shrinks to the L2
    *misses* only.  Returns ``(l2_events, l2ev_refs, cum_hits,
    cum_misses, cum_writebacks, final_sets, final_dirty)``; the cum
    arrays are indexed by *B1 event count* so any segmentation recovers
    exact per-boundary L2 statistics via a searchsorted on the B1 refs.
    """
    key = (l1_key, l2.size_bytes, l2.assoc, l2.block_size)
    cache = getattr(trace, "_l2_classification", None)
    if cache is None:
        cache = trace._l2_classification = {}
    hit = cache.get(key)
    if hit is not None:
        return hit
    shift = l2.block_size.bit_length() - 1
    mask = l2.num_sets - 1
    assoc = l2.assoc
    sets: list[list[int]] = [[] for _ in range(l2.num_sets)]
    dirty: set[int] = set()
    l2_events = []
    append = l2_events.append
    h = m = w = 0
    cum_h = [0]
    cum_m = [0]
    cum_w = [0]
    for i, block, is_write, l1_victim in b1[0]:
        if l1_victim is not None:
            # L1 write-back: an L2 access with write=True
            lines = sets[(l1_victim >> shift) & mask]
            if l1_victim in lines:
                j = lines.index(l1_victim)
                if j:
                    lines.insert(0, lines.pop(j))
                dirty.add(l1_victim)
                h += 1
            else:
                m += 1
        lines = sets[(block >> shift) & mask]
        if block in lines:
            j = lines.index(block)
            if j:
                lines.insert(0, lines.pop(j))
            h += 1
        else:
            m += 1
            victim = None
            if len(lines) >= assoc:
                v = lines.pop()
                if v in dirty:
                    w += 1
                    dirty.discard(v)
                    victim = v
            lines.insert(0, block)
            if is_write:
                dirty.add(block)
            append((i, block, is_write, victim))
        cum_h.append(h)
        cum_m.append(m)
        cum_w.append(w)
    result = (
        l2_events,
        np.fromiter((e[0] for e in l2_events), dtype=np.int64,
                    count=len(l2_events)),
        np.asarray(cum_h, dtype=np.int64),
        np.asarray(cum_m, dtype=np.int64),
        np.asarray(cum_w, dtype=np.int64),
        sets,
        dirty,
    )
    cache[key] = result
    return result


def _l2_placement_events(trace, l1_key: tuple, l2: Cache, b1):
    """Whole-trace L2 *placement* classification, cached (phase B2p).

    The fallback one level weaker than :func:`_l2_classified_events`:
    when the memory layer can mark resident L2 blocks dirty mid-run (a
    split-counter page re-encryption) but never changes *placement*, the
    hit/miss/victim-identity sequence is still a pure function of the B1
    event stream — only the dirty bits (hence write-back counts) are
    timing-dependent.  Emits one event per L2 miss as ``(ref_index,
    block, is_write, victim_address_or_None, gap_dirty_adds)`` where
    ``gap_dirty_adds`` are the L1 victim write-backs that hit the L2
    since the previous miss (applied to the live dirty set before the
    eviction).  Returns ``(events, event_refs, cum_hits, cum_misses,
    final_sets, trailing_dirty_adds)``; write-backs are accumulated live
    by the drain.
    """
    key = (l1_key, l2.size_bytes, l2.assoc, l2.block_size)
    cache = getattr(trace, "_l2_placement", None)
    if cache is None:
        cache = trace._l2_placement = {}
    hit = cache.get(key)
    if hit is not None:
        return hit
    shift = l2.block_size.bit_length() - 1
    mask = l2.num_sets - 1
    assoc = l2.assoc
    sets: list[list[int]] = [[] for _ in range(l2.num_sets)]
    events = []
    append = events.append
    pending: list[int] = []
    h = m = 0
    cum_h = [0]
    cum_m = [0]
    for i, block, is_write, l1_victim in b1[0]:
        if l1_victim is not None:
            lines = sets[(l1_victim >> shift) & mask]
            if l1_victim in lines:
                j = lines.index(l1_victim)
                if j:
                    lines.insert(0, lines.pop(j))
                pending.append(l1_victim)
                h += 1
            else:
                m += 1
        lines = sets[(block >> shift) & mask]
        if block in lines:
            j = lines.index(block)
            if j:
                lines.insert(0, lines.pop(j))
            h += 1
        else:
            m += 1
            victim = None
            if len(lines) >= assoc:
                victim = lines.pop()
            lines.insert(0, block)
            append((i, block, is_write, victim, tuple(pending)))
            pending.clear()
        cum_h.append(h)
        cum_m.append(m)
    result = (
        events,
        np.fromiter((e[0] for e in events), dtype=np.int64,
                    count=len(events)),
        np.asarray(cum_h, dtype=np.int64),
        np.asarray(cum_m, dtype=np.int64),
        sets,
        tuple(pending),
    )
    cache[key] = result
    return result


def _l2_preclass_ok(memory) -> bool:
    """Phase-B2 structural eligibility (see :func:`_l2_classified_events`)."""
    return (memory.node_cache is None
            and not isinstance(memory.scheme, SplitCounterScheme))


# -- phase C: the monomorphized closure engine --------------------------------


class _FastEngine:
    """Holder for the closures built by :func:`_make_fast_engine`."""

    __slots__ = ("drain_live", "drain_pre", "drain_pre_dirty", "sync",
                 "reload")


def _fast_eligible(memory) -> bool:
    return (not memory.tracer.enabled
            and not isinstance(memory.scheme, CounterPredictionScheme)
            and memory.config.encryption is not EncryptionMode.SHARES
            and memory.aes.copies == 1
            and memory.sha.copies == 1)


def _make_fast_engine(memory, l2_mirror: LeanCache,
                      cc_mirror: LeanCache | None, *, policy,
                      insns_base, cum_cycles, cum_insns,
                      mshrs: int, rob_insns: int) -> _FastEngine:
    """Build drain loops specialized to one configuration.

    Mirrors :class:`TimingSecureMemory` float-op for float-op, but keeps
    every hot mutable scalar (bus free slot, engine issue slots,
    statistics, histogram summary) in closure cells instead of object
    attributes.  ``reload()`` snapshots the real objects into the cells
    and ``sync()`` writes them back; the drains bracket themselves with
    the pair, and delegations to real methods (page re-encryption) are
    bracketed the same way mid-flight, so interleaving stays consistent
    — including the ``_fill_node`` → ``write_back`` recursion, which
    runs entirely inside the closure sharing the same cells.
    """
    config = memory.config
    bus = memory.bus
    bus_stats = bus.stats
    mem_stats = memory.stats
    pads_stats = mem_stats.pads
    reenc_stats = mem_stats.reencryption
    hist = memory._lat_hist
    _bisect = bisect_left

    BS = memory.block_size
    OCC = bus.transfer_cycles(BS)
    MEM = memory.mem_latency
    CH = memory._chunks

    aes = memory.aes
    aes_next = aes._next_issue
    aes_stats = aes.stats
    AES_LAT = aes.latency
    AES_INT = aes.initiation_interval
    PADS_K = (CH - 1) * AES_INT
    sha = memory.sha
    sha_next = sha._next_issue
    sha_stats = sha.stats
    SHA_LAT = sha.latency
    SHA_INT = sha.initiation_interval
    GH_PB = CH * memory.ghash.cycles_per_chunk
    GH_XOR = memory.ghash.final_xor_cycles

    mode = config.encryption
    IS_COUNTER = mode is EncryptionMode.COUNTER
    IS_NONE_MODE = mode is EncryptionMode.NONE
    PADS_ON_WRITE = IS_COUNTER or mode is EncryptionMode.DIRECT
    IS_GCM = config.auth is AuthMode.GCM
    PARALLEL = config.parallel_auth
    NODE_BASE = memory._node_region_base
    NUM_LEAVES = memory._num_data_leaves
    HAS_NODE = memory.node_cache is not None
    H_BOUNDS = hist.bounds
    _PAGE = OverflowAction.PAGE_REENCRYPTION
    _FULL = OverflowAction.FULL_REENCRYPTION

    scheme = memory.scheme
    HAS_SCHEME = scheme is not None
    if HAS_SCHEME:
        CBA = scheme.counter_block_address
        INC = scheme.increment
        # only schemes that can signal FULL_REENCRYPTION implement these
        RESET_ALL = getattr(scheme, "reset_all_counters", None)
        SET_COUNTER = getattr(scheme, "set_counter", None)
    page_reencrypt = memory._page_reencrypt_timing
    counter_inflight = memory._counter_inflight
    inflight_get = counter_inflight.get
    written_add = memory._written.add

    l2_sets = l2_mirror.sets
    l2_dirty = l2_mirror.dirty
    l2_stats = l2_mirror.stats
    L2_SHIFT = l2_mirror._shift
    L2_MASK = l2_mirror._mask
    L2_ASSOC = l2_mirror.assoc

    HAS_CC = cc_mirror is not None
    if HAS_CC:
        cc_sets = cc_mirror.sets
        cc_dirty = cc_mirror.dirty
        cc_stats = cc_mirror.stats
        CC_SHIFT = cc_mirror._shift
        CC_MASK = cc_mirror._mask
        CC_ASSOC = cc_mirror.assoc
        CC_BS = memory.counter_cache.block_size
        AUTH_CTRS = HAS_NODE and config.authenticate_counters
    else:
        AUTH_CTRS = False

    if HAS_NODE:
        geometry = memory.geometry
        ARITY = geometry.arity
        DEPTH = geometry.depth
        LEVEL_BASE = [0] * (DEPTH + 1)
        for level in range(1, DEPTH + 1):
            LEVEL_BASE[level] = (NODE_BASE
                                 + geometry.level_offset_blocks(level) * BS)

    # 0 = lazy, 1 = commit, 2 = safe
    POL = (0 if policy is AuthPolicy.LAZY
           else 1 if policy is AuthPolicy.COMMIT else 2)
    HIDE = COMMIT_HIDE_CYCLES
    MSHRS = mshrs
    ROB = rob_insns
    INSNS_BASE = insns_base
    CCL = cum_cycles
    CIL = cum_insns

    # counter_block_address is pure address arithmetic for every
    # registered scheme, so its (index, counter_address) pair is memoized
    # per block address for the lifetime of one engine (= one run).
    cba_memo: dict[int, tuple[int, int]] = {}
    cba_get = cba_memo.get

    # -- closure cells: every hot mutable scalar -------------------------
    bus_free = 0.0
    bus_tx = 0
    bus_by = 0
    bus_busy = 0.0
    bus_q = 0.0
    aes_busy = 0.0
    aes_ops = 0
    aes_stall = 0.0
    sha_busy = 0.0
    sha_ops = 0
    sha_stall = 0.0
    m_reads = 0
    m_writes = 0
    m_cfetch = 0
    m_cwb = 0
    m_half = 0
    p_req = 0
    p_timely = 0
    full_re = 0
    h_count = 0
    h_total = 0.0
    h_min = 0.0
    h_max = 0.0
    h_buckets: list[int] = hist.buckets
    l2_h = 0
    l2_m = 0
    l2_w = 0
    cc_h = 0
    cc_m = 0
    cc_w = 0

    def reload():
        nonlocal bus_free, bus_tx, bus_by, bus_busy, bus_q
        nonlocal aes_busy, aes_ops, aes_stall, sha_busy, sha_ops, sha_stall
        nonlocal m_reads, m_writes, m_cfetch, m_cwb, m_half
        nonlocal p_req, p_timely, full_re
        nonlocal h_count, h_total, h_min, h_max, h_buckets
        nonlocal l2_h, l2_m, l2_w, cc_h, cc_m, cc_w
        bus_free = bus._free_at
        bus_tx = bus_stats.transactions
        bus_by = bus_stats.bytes_moved
        bus_busy = bus_stats.busy_cycles
        bus_q = bus_stats.queue_cycles
        aes_busy = aes_next[0]
        aes_ops = aes_stats.operations
        aes_stall = aes_stats.stall_cycles
        sha_busy = sha_next[0]
        sha_ops = sha_stats.operations
        sha_stall = sha_stats.stall_cycles
        m_reads = mem_stats.reads
        m_writes = mem_stats.writes
        m_cfetch = mem_stats.counter_fetches
        m_cwb = mem_stats.counter_writebacks
        m_half = mem_stats.counter_half_misses
        p_req = pads_stats.pad_requests
        p_timely = pads_stats.timely_pads
        full_re = reenc_stats.full_reencryptions
        h_count = hist.count
        h_total = hist.total
        h_min = hist.min
        h_max = hist.max
        h_buckets = hist.buckets  # reset() rebinds the list
        l2_h = l2_stats.hits
        l2_m = l2_stats.misses
        l2_w = l2_stats.writebacks
        if HAS_CC:
            cc_h = cc_stats.hits
            cc_m = cc_stats.misses
            cc_w = cc_stats.writebacks

    def sync():
        bus._free_at = bus_free
        bus_stats.transactions = bus_tx
        bus_stats.bytes_moved = bus_by
        bus_stats.busy_cycles = bus_busy
        bus_stats.queue_cycles = bus_q
        aes_next[0] = aes_busy
        aes_stats.operations = aes_ops
        aes_stats.stall_cycles = aes_stall
        sha_next[0] = sha_busy
        sha_stats.operations = sha_ops
        sha_stats.stall_cycles = sha_stall
        mem_stats.reads = m_reads
        mem_stats.writes = m_writes
        mem_stats.counter_fetches = m_cfetch
        mem_stats.counter_writebacks = m_cwb
        mem_stats.counter_half_misses = m_half
        pads_stats.pad_requests = p_req
        pads_stats.timely_pads = p_timely
        reenc_stats.full_reencryptions = full_re
        hist.count = h_count
        hist.total = h_total
        hist.min = h_min
        hist.max = h_max
        l2_stats.hits = l2_h
        l2_stats.misses = l2_m
        l2_stats.writebacks = l2_w
        if HAS_CC:
            cc_stats.hits = cc_h
            cc_stats.misses = cc_m
            cc_stats.writebacks = cc_w

    # -- primitive mirrors (exact float expressions of the scalar code) --

    def bus_read(now):
        # MemoryBus.schedule + the _bus_read memory-latency add
        nonlocal bus_free, bus_tx, bus_by, bus_busy, bus_q
        start = bus_free if bus_free > now else now
        end = start + OCC
        bus_free = end
        bus_tx += 1
        bus_by += BS
        bus_busy += OCC
        bus_q += start - now
        return end + MEM

    def bus_write(now):
        nonlocal bus_free, bus_tx, bus_by, bus_busy, bus_q
        start = bus_free if bus_free > now else now
        bus_free = start + OCC
        bus_tx += 1
        bus_by += BS
        bus_busy += OCC
        bus_q += start - now

    def aes_request(now):
        # PipelinedEngine.request for a single-copy engine
        nonlocal aes_busy, aes_ops, aes_stall
        start = aes_busy if aes_busy > now else now
        aes_busy = start + AES_INT
        aes_ops += 1
        aes_stall += start - now
        return start + AES_LAT

    def sha_request(now):
        nonlocal sha_busy, sha_ops, sha_stall
        start = sha_busy if sha_busy > now else now
        sha_busy = start + SHA_INT
        sha_ops += 1
        sha_stall += start - now
        return start + SHA_LAT

    if CH == 4:
        def aes_pads(now, earliest_start):
            # TimingSecureMemory._aes_pads, unrolled for the ubiquitous
            # 64B-block / 16B-chunk geometry.  Each stall contribution is
            # added to the accumulator separately, preserving the scalar
            # loop's left-associated float summation bit-for-bit.
            nonlocal aes_busy, aes_ops, aes_stall
            busy = aes_busy
            start = busy if busy > now else now
            busy = start + AES_INT
            aes_stall += start - now
            start = busy if busy > now else now
            busy = start + AES_INT
            aes_stall += start - now
            start = busy if busy > now else now
            busy = start + AES_INT
            aes_stall += start - now
            start = busy if busy > now else now
            busy = start + AES_INT
            aes_stall += start - now
            aes_busy = busy
            aes_ops += 4
            done = start + AES_LAT
            floor = (earliest_start + AES_LAT) + PADS_K
            return done if done > floor else floor
    else:
        def aes_pads(now, earliest_start):
            # TimingSecureMemory._aes_pads: request_many + batch_latency
            nonlocal aes_busy, aes_ops, aes_stall
            done = now
            busy = aes_busy
            for _ in range(CH):
                start = busy if busy > now else now
                busy = start + AES_INT
                aes_stall += start - now
                done = start + AES_LAT
            aes_busy = busy
            aes_ops += CH
            floor = (earliest_start + AES_LAT) + PADS_K
            return done if done > floor else floor

    def leaf_mac(fetch_issue, arrive, counter_ready):
        # TimingSecureMemory._leaf_mac_done (recording off)
        if IS_GCM:
            engine_done = aes_request(fetch_issue)
            floor = counter_ready + AES_LAT
            pad_ready = engine_done if engine_done > floor else floor
            ghash_done = arrive + GH_PB
            tail = ghash_done if ghash_done > pad_ready else pad_ready
            return tail + GH_XOR
        engine_done = sha_request(fetch_issue)
        floor = arrive + SHA_LAT
        return engine_done if engine_done > floor else floor

    def update_parent(now):
        # one MAC computation; the GHASH chain is stateless and its
        # completion time is discarded, so only the engine-slot
        # reservation is performed
        if IS_GCM:
            nonlocal aes_busy, aes_ops, aes_stall
            start = aes_busy if aes_busy > now else now
            aes_busy = start + AES_INT
            aes_ops += 1
            aes_stall += start - now
        else:
            nonlocal sha_busy, sha_ops, sha_stall
            start = sha_busy if sha_busy > now else now
            sha_busy = start + SHA_INT
            sha_ops += 1
            sha_stall += start - now

    def fill_node(node_address, now):
        # TimingSecureMemory._fill_node on the node cache (== the L2)
        nonlocal l2_w
        lines = l2_sets[(node_address >> L2_SHIFT) & L2_MASK]
        if node_address in lines:  # refill of a resident node: refresh
            j = lines.index(node_address)
            if j:
                lines.insert(0, lines.pop(j))
            return
        victim = None
        if len(lines) >= L2_ASSOC:
            v = lines.pop()
            if v in l2_dirty:
                l2_w += 1
                l2_dirty.discard(v)
                victim = v
        lines.insert(0, node_address)
        if victim is not None:
            if victim >= NODE_BASE:
                bus_write(now)
                update_parent(now)
            else:
                write_back(now, victim)

    def node_access_w(node_address):
        # node_cache.access(node_address, write=True), generic accounting
        nonlocal l2_h, l2_m
        lines = l2_sets[(node_address >> L2_SHIFT) & L2_MASK]
        if node_address in lines:
            j = lines.index(node_address)
            if j:
                lines.insert(0, lines.pop(j))
            l2_dirty.add(node_address)
            l2_h += 1
            return True
        l2_m += 1
        return False

    def update_leaf(now, leaf_index):
        # TimingSecureMemory._update_leaf
        node_address = LEVEL_BASE[1] + (leaf_index // ARITY) * BS
        if not node_access_w(node_address):
            bus_read(now)
            fill_node(node_address, now)
            node_access_w(node_address)
        update_parent(now)

    def verify_chain(now, leaf_index, data_arrive, counter_ready):
        # TimingSecureMemory._verify_chain (recording off)
        nonlocal l2_h, l2_m
        nonlocal aes_busy, aes_ops, aes_stall, sha_busy, sha_ops, sha_stall
        missing = None
        level = 1
        index = leaf_index // ARITY
        while level <= DEPTH:
            node_address = LEVEL_BASE[level] + index * BS
            lines = l2_sets[(node_address >> L2_SHIFT) & L2_MASK]
            if node_address in lines:
                j = lines.index(node_address)
                if j:
                    lines.insert(0, lines.pop(j))
                l2_h += 1
                break
            l2_m += 1
            if missing is None:
                missing = [node_address]
            else:
                missing.append(node_address)
            level += 1
            index //= ARITY

        # leaf_mac(now, data_arrive, counter_ready), inlined
        if IS_GCM:
            start = aes_busy if aes_busy > now else now
            aes_busy = start + AES_INT
            aes_ops += 1
            aes_stall += start - now
            engine_done = start + AES_LAT
            floor = counter_ready + AES_LAT
            pad_ready = engine_done if engine_done > floor else floor
            ghash_done = data_arrive + GH_PB
            tail = ghash_done if ghash_done > pad_ready else pad_ready
            leaf_done = tail + GH_XOR
        else:
            start = sha_busy if sha_busy > now else now
            sha_busy = start + SHA_INT
            sha_ops += 1
            sha_stall += start - now
            engine_done = start + SHA_LAT
            floor = data_arrive + SHA_LAT
            leaf_done = engine_done if engine_done > floor else floor
        if missing is None:
            return leaf_done
        if PARALLEL:
            auth_done = leaf_done
            for node_address in missing:
                arrive = bus_read(now)
                done = leaf_mac(now, arrive, now)
                if done > auth_done:
                    auth_done = done
                fill_node(node_address, now)
            return auth_done
        t = now
        for node_address in reversed(missing):
            arrive = bus_read(t)
            t = leaf_mac(t, arrive, t)
            fill_node(node_address, t)
        return leaf_done if leaf_done > t else t

    def resolve_miss(now, index, caddr, lines):
        # counter-cache miss remainder of _resolve_counter (plus
        # _write_back_counter_block for a dirty victim)
        nonlocal cc_m, cc_w, m_cfetch, m_cwb, m_half
        nonlocal bus_free, bus_tx, bus_by, bus_busy, bus_q
        cc_m += 1
        inflight = inflight_get(index)
        if inflight is not None and inflight > now:
            m_half += 1
            return inflight
        m_cfetch += 1
        start = bus_free if bus_free > now else now
        end = start + OCC
        bus_free = end
        bus_tx += 1
        bus_by += BS
        bus_busy += OCC
        bus_q += start - now
        arrive = end + MEM
        counter_inflight[index] = arrive
        victim = None
        if len(lines) >= CC_ASSOC:
            v = lines.pop()
            if v in cc_dirty:
                cc_w += 1
                cc_dirty.discard(v)
                victim = v
        lines.insert(0, caddr)
        if victim is not None:
            m_cwb += 1
            bus_write(now)
            if AUTH_CTRS:
                update_parent(now)
        if AUTH_CTRS:
            verify_chain(now, NUM_LEAVES + index, arrive, now)
        return arrive

    def resolve_counter(now, address, for_write):
        # TimingSecureMemory._resolve_counter
        nonlocal cc_h, m_half
        e = cba_get(address)
        if e is None:
            index = CBA(address)
            e = (index, index * CC_BS)
            cba_memo[address] = e
        index, caddr = e
        lines = cc_sets[(caddr >> CC_SHIFT) & CC_MASK]
        if caddr in lines:
            j = lines.index(caddr)
            if j:
                lines.insert(0, lines.pop(j))
            if for_write:
                cc_dirty.add(caddr)
            cc_h += 1
            inflight = inflight_get(index)
            if inflight is not None and inflight > now:
                m_half += 1
                return inflight
            return now
        return resolve_miss(now, index, caddr, lines)

    def write_back(now, address):
        # TimingSecureMemory.write_back (no pred/shares)
        nonlocal m_writes, full_re
        if address >= NODE_BASE:
            bus_write(now)
            update_parent(now)
            return now
        m_writes += 1
        stall_until = now
        counter_ready = now
        if HAS_SCHEME:
            if HAS_CC:
                counter_ready = resolve_counter(now, address, True)
                caddr = cba_memo[address][1]
                if caddr in cc_sets[(caddr >> CC_SHIFT) & CC_MASK]:
                    cc_dirty.add(caddr)
            result = INC(address)
            action = result.action
            if action is _PAGE:
                floor = now if now > counter_ready else counter_ready
                sync()
                stall_until = page_reencrypt(floor, result.page_address,
                                             address)
                reload()
            elif action is _FULL:
                full_re += 1
                RESET_ALL()
                SET_COUNTER(address, 1)
        if PADS_ON_WRITE:
            floor = (counter_ready if counter_ready > stall_until
                     else stall_until)
            aes_pads(now, floor)
        bus_write(now)
        written_add(address)
        if HAS_NODE:
            update_leaf(now, address // BS)
        return stall_until

    # -- the serial drains ------------------------------------------------

    def drain_live(segment, cycle_base, writebacks, outstanding):
        """Phase C over B1 events, with the L2 live (inline LeanCache).

        The whole ``read_miss`` body is inlined into the loop — on the
        authenticated configurations this is the hottest code in the
        engine, and the call/tuple-return overhead is measurable.
        """
        nonlocal l2_h, l2_m, l2_w
        nonlocal m_reads, p_req, p_timely
        nonlocal h_count, h_total, h_min, h_max
        nonlocal cc_h, m_half
        nonlocal bus_free, bus_tx, bus_by, bus_busy, bus_q
        reload()
        popleft = outstanding.popleft
        append = outstanding.append
        for i, block, is_write, l1_victim in segment:
            if l1_victim is not None:
                # L1 write-back lands in the L2 (on-chip, no bus traffic)
                lines = l2_sets[(l1_victim >> L2_SHIFT) & L2_MASK]
                if l1_victim in lines:
                    j = lines.index(l1_victim)
                    if j:
                        lines.insert(0, lines.pop(j))
                    l2_dirty.add(l1_victim)
                    l2_h += 1
                else:
                    l2_m += 1
            lines = l2_sets[(block >> L2_SHIFT) & L2_MASK]
            if block in lines:
                j = lines.index(block)
                if j:
                    lines.insert(0, lines.pop(j))
                l2_h += 1
                continue
            l2_m += 1

            cycle = cycle_base + CCL[i + 1]
            insns = INSNS_BASE + CIL[i + 1]
            while outstanding and outstanding[0][0] <= cycle:
                popleft()
            while outstanding and (
                len(outstanding) >= MSHRS
                or insns - outstanding[0][1] >= ROB
            ):
                head = outstanding[0][0]
                if head > cycle:
                    cycle = head
                popleft()

            # read_miss, inlined
            m_reads += 1
            if HAS_CC:
                e = cba_get(block)
                if e is None:
                    index = CBA(block)
                    e = (index, index * CC_BS)
                    cba_memo[block] = e
                index, caddr = e
                clines = cc_sets[(caddr >> CC_SHIFT) & CC_MASK]
                if caddr in clines:
                    j = clines.index(caddr)
                    if j:
                        clines.insert(0, clines.pop(j))
                    cc_h += 1
                    inflight = inflight_get(index)
                    if inflight is not None and inflight > cycle:
                        m_half += 1
                        counter_ready = inflight
                    else:
                        counter_ready = cycle
                else:
                    counter_ready = resolve_miss(cycle, index, caddr,
                                                 clines)
            else:
                counter_ready = cycle
            if IS_COUNTER:
                pad_done = aes_pads(cycle, counter_ready)
                start = bus_free if bus_free > cycle else cycle
                end = start + OCC
                bus_free = end
                bus_tx += 1
                bus_by += BS
                bus_busy += OCC
                bus_q += start - cycle
                arrive = end + MEM
                p_req += 1
                if pad_done <= arrive:
                    p_timely += 1
                data_ready = (arrive if arrive > pad_done else pad_done) \
                    + 1
            elif IS_NONE_MODE:
                start = bus_free if bus_free > cycle else cycle
                end = start + OCC
                bus_free = end
                bus_tx += 1
                bus_by += BS
                bus_busy += OCC
                bus_q += start - cycle
                arrive = end + MEM
                data_ready = arrive
            else:  # DIRECT
                start = bus_free if bus_free > cycle else cycle
                end = start + OCC
                bus_free = end
                bus_tx += 1
                bus_by += BS
                bus_busy += OCC
                bus_q += start - cycle
                arrive = end + MEM
                data_ready = aes_pads(cycle, arrive)
            auth_done = data_ready
            if HAS_NODE:
                chain_done = verify_chain(cycle, block // BS, arrive,
                                          counter_ready)
                if chain_done > data_ready:
                    auth_done = chain_done
            value = auth_done - cycle
            h_count += 1
            h_total += value
            if value < h_min:
                h_min = value
            if value > h_max:
                h_max = value
            h_buckets[_bisect(H_BOUNDS, value)] += 1

            # L2 fill; verify_chain may have mutated this set's list,
            # but only with node addresses, so the block stays absent
            victim = None
            if len(lines) >= L2_ASSOC:
                v = lines.pop()
                if v in l2_dirty:
                    l2_w += 1
                    l2_dirty.discard(v)
                    victim = v
            lines.insert(0, block)
            if is_write:
                l2_dirty.add(block)
            if victim is not None:
                writebacks += 1
                stall = write_back(cycle, victim)
                if stall > cycle:
                    cycle = stall
            cycle_base = cycle - CCL[i + 1]

            if is_write:
                continue
            # exposed_auth_latency, inlined with the same arithmetic
            if auth_done <= data_ready or POL == 0:
                completion = data_ready + 0.0
            elif POL == 1:
                gap = auth_done - data_ready - HIDE
                completion = data_ready + (gap if gap > 0.0 else 0.0)
            else:
                completion = data_ready + (auth_done - data_ready)
            append((completion, insns))
        sync()
        return cycle_base, writebacks

    def drain_pre(segment, cycle_base, writebacks, outstanding):
        """Phase C over precomputed L2 events (phase-B2 configurations).

        Callers guarantee there is no Merkle node cache (phase B2 is only
        valid then), so ``read_miss`` specializes to counter resolution,
        pad generation, and the bus read — inlined here wholesale.  With
        no authentication, ``auth_done == data_ready`` and the exposed
        latency collapses to ``data_ready + 0.0`` under every policy.
        """
        nonlocal m_reads, p_req, p_timely
        nonlocal h_count, h_total, h_min, h_max
        nonlocal cc_h, m_half
        nonlocal bus_free, bus_tx, bus_by, bus_busy, bus_q
        reload()
        popleft = outstanding.popleft
        append = outstanding.append
        for i, block, is_write, dirty_victim in segment:
            cycle = cycle_base + CCL[i + 1]
            insns = INSNS_BASE + CIL[i + 1]
            while outstanding and outstanding[0][0] <= cycle:
                popleft()
            while outstanding and (
                len(outstanding) >= MSHRS
                or insns - outstanding[0][1] >= ROB
            ):
                head = outstanding[0][0]
                if head > cycle:
                    cycle = head
                popleft()

            # read_miss, no-node specialization, inlined
            m_reads += 1
            if HAS_CC:
                e = cba_get(block)
                if e is None:
                    index = CBA(block)
                    e = (index, index * CC_BS)
                    cba_memo[block] = e
                index, caddr = e
                lines = cc_sets[(caddr >> CC_SHIFT) & CC_MASK]
                if caddr in lines:
                    j = lines.index(caddr)
                    if j:
                        lines.insert(0, lines.pop(j))
                    cc_h += 1
                    inflight = inflight_get(index)
                    if inflight is not None and inflight > cycle:
                        m_half += 1
                        counter_ready = inflight
                    else:
                        counter_ready = cycle
                else:
                    counter_ready = resolve_miss(cycle, index, caddr,
                                                 lines)
            else:
                counter_ready = cycle
            if IS_COUNTER:
                pad_done = aes_pads(cycle, counter_ready)
                start = bus_free if bus_free > cycle else cycle
                end = start + OCC
                bus_free = end
                bus_tx += 1
                bus_by += BS
                bus_busy += OCC
                bus_q += start - cycle
                arrive = end + MEM
                p_req += 1
                if pad_done <= arrive:
                    p_timely += 1
                data_ready = (arrive if arrive > pad_done else pad_done) \
                    + 1
            elif IS_NONE_MODE:
                start = bus_free if bus_free > cycle else cycle
                end = start + OCC
                bus_free = end
                bus_tx += 1
                bus_by += BS
                bus_busy += OCC
                bus_q += start - cycle
                data_ready = end + MEM
            else:  # DIRECT
                start = bus_free if bus_free > cycle else cycle
                end = start + OCC
                bus_free = end
                bus_tx += 1
                bus_by += BS
                bus_busy += OCC
                bus_q += start - cycle
                data_ready = aes_pads(cycle, end + MEM)
            value = data_ready - cycle
            h_count += 1
            h_total += value
            if value < h_min:
                h_min = value
            if value > h_max:
                h_max = value
            h_buckets[_bisect(H_BOUNDS, value)] += 1

            if dirty_victim is not None:
                writebacks += 1
                stall = write_back(cycle, dirty_victim)
                if stall > cycle:
                    cycle = stall
            cycle_base = cycle - CCL[i + 1]

            if is_write:
                continue
            append((data_ready + 0.0, insns))
        sync()
        return cycle_base, writebacks

    def drain_pre_dirty(segment, cycle_base, writebacks, outstanding,
                        resident, live_dirty):
        """Phase C over placement-preclassified L2 events (phase B2p).

        Same inlined no-node miss path as :func:`drain_pre`, but the
        dirty bits stay live: each event applies the gap's L1-victim
        dirty marks first, then decides whether the precomputed victim
        actually needs a write-back.  ``resident``/``live_dirty`` back
        the :class:`_L2ResidencyShim` installed as ``memory.l2``, so a
        split-counter page re-encryption probes exact current state.
        """
        nonlocal m_reads, p_req, p_timely
        nonlocal h_count, h_total, h_min, h_max
        nonlocal cc_h, m_half, l2_w
        nonlocal bus_free, bus_tx, bus_by, bus_busy, bus_q
        reload()
        popleft = outstanding.popleft
        append = outstanding.append
        resident_discard = resident.discard
        resident_add = resident.add
        dirty_add = live_dirty.add
        dirty_discard = live_dirty.discard
        for i, block, is_write, victim, adds in segment:
            if adds:
                for address in adds:
                    dirty_add(address)
            cycle = cycle_base + CCL[i + 1]
            insns = INSNS_BASE + CIL[i + 1]
            while outstanding and outstanding[0][0] <= cycle:
                popleft()
            while outstanding and (
                len(outstanding) >= MSHRS
                or insns - outstanding[0][1] >= ROB
            ):
                head = outstanding[0][0]
                if head > cycle:
                    cycle = head
                popleft()

            # read_miss, no-node specialization, inlined
            m_reads += 1
            if HAS_CC:
                e = cba_get(block)
                if e is None:
                    index = CBA(block)
                    e = (index, index * CC_BS)
                    cba_memo[block] = e
                index, caddr = e
                lines = cc_sets[(caddr >> CC_SHIFT) & CC_MASK]
                if caddr in lines:
                    j = lines.index(caddr)
                    if j:
                        lines.insert(0, lines.pop(j))
                    cc_h += 1
                    inflight = inflight_get(index)
                    if inflight is not None and inflight > cycle:
                        m_half += 1
                        counter_ready = inflight
                    else:
                        counter_ready = cycle
                else:
                    counter_ready = resolve_miss(cycle, index, caddr,
                                                 lines)
            else:
                counter_ready = cycle
            if IS_COUNTER:
                pad_done = aes_pads(cycle, counter_ready)
                start = bus_free if bus_free > cycle else cycle
                end = start + OCC
                bus_free = end
                bus_tx += 1
                bus_by += BS
                bus_busy += OCC
                bus_q += start - cycle
                arrive = end + MEM
                p_req += 1
                if pad_done <= arrive:
                    p_timely += 1
                data_ready = (arrive if arrive > pad_done else pad_done) \
                    + 1
            elif IS_NONE_MODE:
                start = bus_free if bus_free > cycle else cycle
                end = start + OCC
                bus_free = end
                bus_tx += 1
                bus_by += BS
                bus_busy += OCC
                bus_q += start - cycle
                data_ready = end + MEM
            else:  # DIRECT
                start = bus_free if bus_free > cycle else cycle
                end = start + OCC
                bus_free = end
                bus_tx += 1
                bus_by += BS
                bus_busy += OCC
                bus_q += start - cycle
                data_ready = aes_pads(cycle, end + MEM)
            value = data_ready - cycle
            h_count += 1
            h_total += value
            if value < h_min:
                h_min = value
            if value > h_max:
                h_max = value
            h_buckets[_bisect(H_BOUNDS, value)] += 1

            dirty_victim = None
            if victim is not None:
                resident_discard(victim)
                if victim in live_dirty:
                    l2_w += 1
                    dirty_discard(victim)
                    dirty_victim = victim
            resident_add(block)
            if is_write:
                dirty_add(block)
            if dirty_victim is not None:
                writebacks += 1
                stall = write_back(cycle, dirty_victim)
                if stall > cycle:
                    cycle = stall
            cycle_base = cycle - CCL[i + 1]

            if is_write:
                continue
            append((data_ready + 0.0, insns))
        sync()
        return cycle_base, writebacks

    engine = _FastEngine()
    engine.drain_live = drain_live
    engine.drain_pre = drain_pre
    engine.drain_pre_dirty = drain_pre_dirty
    engine.sync = sync
    engine.reload = reload
    return engine


# -- the batched run ----------------------------------------------------------


def run_batched(processor, trace, warmup_refs: int = 0, *,
                resume=None, checkpoint_every=None, on_checkpoint=None):
    """Event-batch execution of :meth:`Processor.run` (same contract).

    See the module docstring for the phase structure.  Called by
    ``Processor.run`` when ``config.sim_engine`` resolves to
    ``"batched"``; produces bit-identical results, statistics, and
    checkpoints to the scalar oracle.
    """
    from repro.sim.processor import LoopState, SimResult

    config = processor.config
    memory = processor.memory
    real_l1 = processor.l1
    real_l2 = processor.l2
    policy = config.auth_policy
    cpi = 1.0 / processor.issue_width
    mshrs = processor.mshrs
    rob_insns = processor.rob_insns
    block_size = config.block_size
    n = len(trace)

    cum_cycles = trace.cum_cycles(cpi)
    cum_insns = trace.cum_insns

    state = resume if resume is not None else LoopState()
    start = state.next_ref
    if state.cycle_base is not None:
        cycle_base = state.cycle_base
    else:
        cycle_base = state.cycle - cum_cycles[start]
    insns_base = state.insns - cum_insns[start]
    writebacks = state.writebacks
    cycle0 = state.cycle0
    insns0 = state.insns0
    outstanding: deque[tuple[float, int]] = deque(
        (entry[0], entry[1]) for entry in state.outstanding)

    # phase A: vectorized trace views (the per-reference Python lists are
    # materialized only when a live L1 replay actually needs them)
    blocks_arr = trace.block_ids(block_size)
    writes_arr = trace.arrays()["write"]

    # Segment boundaries: phase B may not classify past a point where the
    # scalar loop observes L1 state or statistics — the warmup reset and
    # every checkpoint callback.
    boundaries = {start, n}
    if warmup_refs and start <= warmup_refs < n:
        boundaries.add(warmup_refs)
    checkpointing = bool(checkpoint_every) and on_checkpoint is not None
    if checkpointing:
        first = ((start // checkpoint_every) + 1) * checkpoint_every
        boundaries.update(range(max(first, checkpoint_every), n,
                                checkpoint_every))
    bounds = sorted(boundaries)

    # Whole-trace cached classification applies only to the common case:
    # from-reset run, empty caches, no checkpoint observation points.
    use_cached = (start == 0 and not checkpointing
                  and real_l1.occupancy() == 0)
    node_is_l2 = memory.node_cache is memory.l2 and memory.l2 is real_l2
    fast_ok = (_fast_eligible(memory)
               and (memory.node_cache is None or node_is_l2))
    cached = None
    cached_l2 = None
    cached_l2p = None
    if use_cached:
        cached = _classified_events(trace, real_l1, blocks_arr, writes_arr)
        if real_l2.occupancy() == 0 and memory.node_cache is None:
            l1_key = (real_l1.size_bytes, real_l1.assoc, real_l1.block_size)
            if _l2_preclass_ok(memory):
                cached_l2 = _l2_classified_events(trace, l1_key, real_l2,
                                                  cached)
            elif fast_ok:
                # split-counter scheme: placement is still precomputable,
                # dirty bits stay live (phase B2p)
                cached_l2p = _l2_placement_events(trace, l1_key, real_l2,
                                                  cached)
    blocks = block_set = writes = None
    if cached is None:
        blocks = blocks_arr.tolist()
        block_set = ((blocks_arr >> (block_size.bit_length() - 1))
                     & np.int64(real_l1.num_sets - 1)).tolist()
        writes = trace.writes

    # Install mirrors over every structural cache the run touches.
    l1_mirror = LeanCache(real_l1)
    l2_mirror = LeanCache(real_l2)
    cc_mirror = None
    counter_cache = memory.counter_cache
    real_cc_inner = None
    processor.l1 = l1_mirror
    processor.l2 = l2_mirror
    memory.l2 = l2_mirror
    if memory.node_cache is not None and node_is_l2:
        memory.node_cache = l2_mirror
    if counter_cache is not None:
        real_cc_inner = counter_cache.cache
        cc_mirror = LeanCache(real_cc_inner)
        counter_cache.cache = cc_mirror
    shim = None
    if cached_l2p is not None:
        shim = _L2ResidencyShim()
        memory.l2 = shim

    fast = None
    if fast_ok:
        fast = _make_fast_engine(
            memory, l2_mirror, cc_mirror, policy=policy,
            insns_base=insns_base, cum_cycles=cum_cycles,
            cum_insns=cum_insns, mshrs=mshrs, rob_insns=rob_insns)

    try:
        for a, b in zip(bounds, bounds[1:]):
            if (checkpointing and a and a != start
                    and a % checkpoint_every == 0):
                on_checkpoint(LoopState(
                    cycle=cycle_base + cum_cycles[a],
                    insns=insns_base + cum_insns[a],
                    writebacks=writebacks,
                    cycle0=cycle0, insns0=insns0, next_ref=a,
                    outstanding=[list(entry) for entry in outstanding],
                    cycle_base=cycle_base))
            if a == warmup_refs and warmup_refs:
                cycle0 = cycle_base + cum_cycles[a]
                insns0 = insns_base + cum_insns[a]
                writebacks = 0
                processor.metrics.reset()
                memory.tracer.clear()

            # phase B: the segment's event stream + bulk statistics
            if cached is not None:
                events, event_refs, event_wbs, _, _ = cached
                lo = int(np.searchsorted(event_refs, a, side="left"))
                hi = int(np.searchsorted(event_refs, b, side="left"))
                misses = hi - lo
                stats = l1_mirror.stats
                stats.hits += (b - a) - misses
                stats.misses += misses
                stats.writebacks += int(
                    (event_wbs[hi - 1] if hi else 0)
                    - (event_wbs[lo - 1] if lo else 0))
                if cached_l2 is not None:
                    (l2_events, l2ev_refs, cum_h, cum_m, cum_w,
                     _, _) = cached_l2
                    l2stats = l2_mirror.stats
                    l2stats.hits += int(cum_h[hi] - cum_h[lo])
                    l2stats.misses += int(cum_m[hi] - cum_m[lo])
                    l2stats.writebacks += int(cum_w[hi] - cum_w[lo])
                    lo2 = int(np.searchsorted(l2ev_refs, a, side="left"))
                    hi2 = int(np.searchsorted(l2ev_refs, b, side="left"))
                    segment = l2_events[lo2:hi2]
                elif cached_l2p is not None:
                    # placement-only: hits/misses are precomputed, the
                    # write-backs accumulate live in the drain
                    (p_events, pev_refs, pcum_h, pcum_m, _, _) = cached_l2p
                    l2stats = l2_mirror.stats
                    l2stats.hits += int(pcum_h[hi] - pcum_h[lo])
                    l2stats.misses += int(pcum_m[hi] - pcum_m[lo])
                    lo2 = int(np.searchsorted(pev_refs, a, side="left"))
                    hi2 = int(np.searchsorted(pev_refs, b, side="left"))
                    segment = p_events[lo2:hi2]
                else:
                    segment = events[lo:hi]
            else:
                positions, run_writes = _run_masks(blocks_arr, writes_arr,
                                                   a, b)
                segment = _l1_kernel(l1_mirror, blocks, block_set, writes,
                                     positions, run_writes, b - a)

            # phase C: serial replay
            if fast is not None:
                if cached_l2 is not None:
                    cycle_base, writebacks = fast.drain_pre(
                        segment, cycle_base, writebacks, outstanding)
                elif cached_l2p is not None:
                    cycle_base, writebacks = fast.drain_pre_dirty(
                        segment, cycle_base, writebacks, outstanding,
                        shim.resident, shim.dirty)
                else:
                    cycle_base, writebacks = fast.drain_live(
                        segment, cycle_base, writebacks, outstanding)
            elif cached_l2 is not None:
                # generic drain over precomputed L2 events; the memory
                # layer never touches the (idle) L2 mirror here
                for i, block, is_write, dirty_victim in segment:
                    cycle = cycle_base + cum_cycles[i + 1]
                    insns = insns_base + cum_insns[i + 1]
                    while outstanding and outstanding[0][0] <= cycle:
                        outstanding.popleft()
                    while outstanding and (
                        len(outstanding) >= mshrs
                        or insns - outstanding[0][1] >= rob_insns
                    ):
                        head = outstanding[0][0]
                        if head > cycle:
                            cycle = head
                        outstanding.popleft()

                    timing = memory.read_miss(cycle, block)
                    data_ready = timing.data_ready
                    auth_done = timing.auth_done
                    if dirty_victim is not None:
                        writebacks += 1
                        stall = memory.write_back(cycle, dirty_victim)
                        if stall > cycle:
                            cycle = stall
                    cycle_base = cycle - cum_cycles[i + 1]

                    if is_write:
                        continue
                    completion = data_ready + exposed_auth_latency(
                        policy, data_ready, auth_done)
                    outstanding.append((completion, insns))
            else:
                # generic drain over B1 events with the L2 mirror live
                l2_access = l2_mirror.access
                l2_fill = l2_mirror.fill
                for i, block, is_write, l1_victim in segment:
                    if l1_victim is not None:
                        l2_access(l1_victim, write=True)
                    if l2_access(block, write=False):
                        continue

                    cycle = cycle_base + cum_cycles[i + 1]
                    insns = insns_base + cum_insns[i + 1]
                    while outstanding and outstanding[0][0] <= cycle:
                        outstanding.popleft()
                    while outstanding and (
                        len(outstanding) >= mshrs
                        or insns - outstanding[0][1] >= rob_insns
                    ):
                        head = outstanding[0][0]
                        if head > cycle:
                            cycle = head
                        outstanding.popleft()

                    timing = memory.read_miss(cycle, block)
                    data_ready = timing.data_ready
                    auth_done = timing.auth_done
                    eviction = l2_fill(block, dirty=is_write)
                    if eviction is not None and eviction.dirty:
                        writebacks += 1
                        stall = memory.write_back(cycle, eviction.address)
                        if stall > cycle:
                            cycle = stall
                    cycle_base = cycle - cum_cycles[i + 1]

                    if is_write:
                        continue
                    completion = data_ready + exposed_auth_latency(
                        policy, data_ready, auth_done)
                    outstanding.append((completion, insns))
    finally:
        # Flush mirrored line state back and restore the real objects.
        if cached is not None:
            # l1_mirror was never advanced; the cached final state is the
            # truth (a cached run always covers [0, n)).  Copy, don't
            # alias — the cache entry must stay frozen.
            l1_mirror.sets = [list(lines) for lines in cached[3]]
            l1_mirror.dirty = set(cached[4])
        if cached_l2 is not None:
            l2_mirror.sets = [list(lines) for lines in cached_l2[5]]
            l2_mirror.dirty = set(cached_l2[6])
        elif cached_l2p is not None:
            # placement final state is precomputed; the dirty bits are
            # the drain's live set plus the marks trailing the last miss
            l2_mirror.sets = [list(lines) for lines in cached_l2p[4]]
            final_dirty = set(shim.dirty)
            final_dirty.update(cached_l2p[5])
            l2_mirror.dirty = final_dirty
        l1_mirror.flush_to(real_l1)
        l2_mirror.flush_to(real_l2)
        processor.l1 = real_l1
        processor.l2 = real_l2
        memory.l2 = real_l2
        if memory.node_cache is l2_mirror:
            memory.node_cache = real_l2
        if counter_cache is not None:
            cc_mirror.flush_to(real_cc_inner)
            counter_cache.cache = real_cc_inner

    cycle = cycle_base + cum_cycles[n]
    insns = insns_base + cum_insns[n]
    if outstanding:
        last = outstanding[-1][0]
        if last > cycle:
            cycle = last
    return SimResult(
        name=trace.name,
        instructions=insns - insns0,
        cycles=cycle - cycle0,
        l1_hits=real_l1.stats.hits,
        l1_misses=real_l1.stats.misses,
        l2_hits=real_l2.stats.hits,
        l2_misses=real_l2.stats.misses,
        writebacks=writebacks,
        memory=memory,
    )
