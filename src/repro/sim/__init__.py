"""Trace-driven timing simulation: processor, secure-memory timing, metrics."""

from repro.sim.metrics import (
    NormalizedResult,
    arithmetic_mean,
    geometric_mean,
    run_normalized,
)
from repro.sim.processor import LoopState, Processor, SimResult, simulate
from repro.sim.timing_memory import MissTiming, TimingSecureMemory

__all__ = [
    "LoopState",
    "MissTiming",
    "NormalizedResult",
    "Processor",
    "SimResult",
    "TimingSecureMemory",
    "arithmetic_mean",
    "geometric_mean",
    "run_normalized",
    "simulate",
]
