"""Supervised experiment runner: subprocess isolation, timeout, retry.

``run_many`` executes a sweep of experiment *cells* one at a time, each in
its own spawned worker process, so a crash (segfault, ``os._exit``, OOM
kill) or a hang in one cell can never take down the sweep: the supervisor
notices the dead pipe or the expired wall-clock budget, retries the cell
with exponential backoff up to its retry budget, and records the final
verdict.  A SIGINT (Ctrl-C) drains gracefully — the in-flight worker is
terminated, every remaining cell is marked ``skipped``, and the partial
:class:`SweepReport` is still returned so the caller can persist what
finished.

Cells carry an ``inject`` test hook (``"crash"``/``"hang"``, optionally
suffixed ``-always``) that makes the *worker* misbehave before touching the
simulator; the CI ``resilience`` job uses it to prove the supervisor's
retry and timeout paths against real subprocesses.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from dataclasses import dataclass, field

__all__ = [
    "CellResult",
    "SWEEP_SCHEMA",
    "SweepCell",
    "SweepReport",
    "load_sweep_report",
    "parse_inject",
    "run_many",
]

#: report schema emitted by ``SweepReport.to_dict``.  v2 added per-cell
#: ``worker_id`` / ``resumed_from_checkpoint`` (and kept ``attempts``)
#: plus the optional ``fabric`` section; v1 reports (no ``schema`` key)
#: stay readable through :func:`load_sweep_report`.
SWEEP_SCHEMA = "repro-sweep/2"

_INJECT_KINDS = ("crash", "hang")
#: fabric-only inject kinds, parameterized ``kind:N`` (see
#: :mod:`repro.resilience.fabric`); the serial runner ignores them
_FABRIC_INJECT_KINDS = ("kill9", "killworker")


def parse_inject(spec: str | None) -> tuple[str | None, int | None, bool]:
    """Split an inject spec into ``(base, arg, always)``.

    Grammar: ``crash`` / ``hang``, optionally suffixed ``-always``; or
    ``kill9:N`` / ``killworker:N`` (fabric-only — SIGKILL the cell child
    / its worker right after checkpoint ``N`` on the first attempt).
    Raises :class:`ValueError` on anything else.
    """
    if spec is None:
        return None, None, False
    base, colon, arg = spec.partition(":")
    if colon:
        if base in _FABRIC_INJECT_KINDS and arg.isdigit() and int(arg) >= 1:
            return base, int(arg), False
        raise ValueError(
            f"unknown inject {spec!r}; parameterized kinds are "
            f"{' or '.join(f'{kind}:N' for kind in _FABRIC_INJECT_KINDS)} "
            "with N >= 1")
    always = spec.endswith("-always")
    base = spec[:-len("-always")] if always else spec
    if base not in _INJECT_KINDS:
        raise ValueError(
            f"unknown inject {spec!r}; choose from {_INJECT_KINDS} "
            f"(optionally suffixed '-always') or "
            f"{'/'.join(_FABRIC_INJECT_KINDS)}:N")
    return base, None, always


@dataclass(frozen=True)
class SweepCell:
    """One experiment in a sweep: a scheme preset bound to a workload."""

    scheme: str
    app: str = "swim"
    refs: int = 20_000
    warmup_refs: int | None = None
    #: test hook: make the worker misbehave ("crash" / "hang" fail the
    #: first attempt only; "crash-always" / "hang-always" every attempt;
    #: "kill9:N" / "killworker:N" SIGKILL the cell child / its fabric
    #: worker after checkpoint N — fabric runs only, ignored serially)
    inject: str | None = None

    def __post_init__(self) -> None:
        parse_inject(self.inject)     # raises ValueError on bad specs

    @property
    def label(self) -> str:
        return f"{self.scheme}/{self.app}"

    def workload_id(self) -> str:
        """Path-independent identity of this cell's workload.

        Generator-named cells (SPEC apps, scenario-library names) are
        their own identity.  Recorded-trace cells resolve to
        ``trace-<fingerprint>`` so the same recording reached through two
        different paths (or a moved file) still names the *same* cell —
        the property fabric resume/dedupe and chaos normalization key on.
        An unreadable trace file falls back to the raw spec rather than
        failing identity computation.
        """
        from repro.workloads import canonical_workload_id, is_trace_workload

        if not is_trace_workload(self.app):
            return self.app
        try:
            return canonical_workload_id(self.app)
        except (OSError, ValueError):
            return self.app

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "app": self.app,
            "refs": self.refs,
            "warmup_refs": self.warmup_refs,
            "inject": self.inject,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepCell":
        return cls(
            scheme=data["scheme"],
            app=data.get("app", "swim"),
            refs=data.get("refs", 20_000),
            warmup_refs=data.get("warmup_refs"),
            inject=data.get("inject"),
        )


@dataclass
class CellResult:
    """Final verdict for one cell after all attempts."""

    cell: SweepCell
    status: str                      # "ok" | "failed" | "timeout" | "skipped"
    attempts: int = 0
    elapsed: float = 0.0
    error: str | None = None
    #: the worker's ``ExperimentResult.to_dict()`` when status is "ok"
    result: dict | None = None
    #: which fabric worker published the verdict (None for serial runs)
    worker_id: str | None = None
    #: whether the winning attempt resumed from a per-cell checkpoint
    resumed_from_checkpoint: bool = False

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def to_dict(self) -> dict:
        return {
            "cell": self.cell.to_dict(),
            "status": self.status,
            "attempts": self.attempts,
            "retried": self.retried,
            "elapsed": self.elapsed,
            "error": self.error,
            "result": self.result,
            "worker_id": self.worker_id,
            "resumed_from_checkpoint": self.resumed_from_checkpoint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        """Rebuild from :meth:`to_dict` output — v1 (no worker/resume
        fields) and v2 cell records both load."""
        return cls(
            cell=SweepCell.from_dict(data["cell"]),
            status=data["status"],
            attempts=data.get("attempts", 0),
            elapsed=data.get("elapsed", 0.0),
            error=data.get("error"),
            result=data.get("result"),
            worker_id=data.get("worker_id"),
            resumed_from_checkpoint=bool(
                data.get("resumed_from_checkpoint", False)),
        )


@dataclass
class SweepReport:
    """Everything a sweep produced, including partial results."""

    cells: list[CellResult] = field(default_factory=list)
    interrupted: bool = False
    #: fabric runs attach their queue/metrics section here (None serially)
    fabric: dict | None = None

    @property
    def ok(self) -> bool:
        return (not self.interrupted
                and all(cell.status == "ok" for cell in self.cells))

    def counts(self) -> dict:
        out: dict = {}
        for cell in self.cells:
            out[cell.status] = out.get(cell.status, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "schema": SWEEP_SCHEMA,
            "cells": [cell.to_dict() for cell in self.cells],
            "counts": self.counts(),
            "interrupted": self.interrupted,
            "ok": self.ok,
            "fabric": self.fabric,
        }


def _worker(conn, cell_dict: dict, attempt: int) -> None:
    """Run one cell inside a spawned process; report over the pipe.

    Runs with SIGINT ignored: the supervisor owns interrupt handling, and a
    terminal Ctrl-C is delivered to the whole process group — the worker
    must not die mid-send and turn a graceful drain into a spurious crash.
    """
    import os

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    cell = SweepCell.from_dict(cell_dict)
    base, _arg, always = parse_inject(cell.inject)
    # kill9/killworker are fabric hooks (they need a checkpoint stream to
    # anchor to); the serial runner runs such cells normally
    if base in _INJECT_KINDS and (always or attempt == 1):
        if base == "crash":
            os._exit(17)
        while True:                        # "hang": wait for terminate()
            time.sleep(3600)
    try:
        from repro import api

        result = api.run(cell.scheme, cell.app, refs=cell.refs,
                         warmup_refs=cell.warmup_refs)
        conn.send({"ok": True, "result": result.to_dict()})
    except Exception as exc:            # noqa: BLE001 — verdict, not handling
        conn.send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


def load_sweep_report(path: str) -> dict:
    """Read a sweep-report JSON written via ``run_many(out_path=...)``.

    Raises :class:`repro.resilience.checkpoint.CheckpointError` (a
    :class:`ValueError`) with a clear message on an unreadable, truncated,
    or corrupt file — never a raw :class:`json.JSONDecodeError` — so a
    harness resuming from a partial sweep fails loudly and legibly.

    Reads both schema generations: a v1 report (written before the
    ``schema`` key existed) is normalized in place — ``schema`` is set to
    ``"repro-sweep/1"`` and every cell gains the v2 defaults
    (``worker_id: None``, ``resumed_from_checkpoint: False``) — so
    consumers can index v2 fields unconditionally.
    """
    import json

    from repro.resilience.checkpoint import CheckpointError

    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CheckpointError(
            f"cannot read sweep report {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"sweep report {path!r} is truncated or corrupt "
            f"(invalid JSON at line {exc.lineno}, column {exc.colno}); "
            "re-run the sweep or restore the file") from exc
    if not isinstance(payload, dict) or "cells" not in payload:
        raise CheckpointError(
            f"sweep report {path!r} is not a sweep report "
            "(missing the 'cells' section)")
    schema = payload.get("schema", "repro-sweep/1")
    if schema not in ("repro-sweep/1", SWEEP_SCHEMA):
        raise CheckpointError(
            f"sweep report {path!r} has unsupported schema {schema!r} "
            f"(this reader knows repro-sweep/1 and {SWEEP_SCHEMA})")
    payload["schema"] = schema
    for cell in payload["cells"]:
        cell.setdefault("worker_id", None)
        cell.setdefault("resumed_from_checkpoint", False)
    payload.setdefault("fabric", None)
    return payload


def run_many(cells, *, timeout: float | None = None, retries: int = 1,
             retry_backoff: float = 0.25, progress=None,
             out_path: str | None = None,
             parallelism: int = 1, queue_dir: str | None = None,
             resume: bool = False, heartbeat_interval: float = 0.5,
             lease_ttl: float = 10.0, checkpoint_refs: int = 2000,
             max_worker_restarts: int | None = None) -> SweepReport:
    """Run every cell under supervision; always returns a report.

    ``timeout`` is the per-attempt wall-clock budget in seconds (``None``
    waits forever); ``retries`` is how many *extra* attempts a crashed or
    timed-out cell gets; ``retry_backoff`` seconds doubles per retry.
    ``progress`` (if given) is called with each :class:`CellResult` as it
    finalizes.  A ``KeyboardInterrupt`` terminates the in-flight worker,
    marks unfinished cells ``skipped``, and returns the partial report
    (``interrupted=True``) instead of propagating.

    ``out_path`` streams partial results to disk: the report JSON is
    rewritten *atomically* after every finalized cell (temp file in the
    same directory + ``os.replace``), so even a SIGKILL leaves the last
    complete report on disk, never a truncated one.  Read it back with
    :func:`load_sweep_report`.

    With ``parallelism > 1`` or an explicit ``queue_dir`` the sweep is
    dispatched to the distributed fabric
    (:func:`repro.resilience.fabric.run_fabric`): cells are sharded
    across spawn-isolated workers via a filesystem work-stealing queue,
    in-flight cells checkpoint every ``checkpoint_refs`` refs so
    reclaimed or retried cells resume mid-simulation, and ``resume=True``
    skips cells whose results already sit in ``queue_dir``.  A
    ``queue_dir`` shared between invocations (or hosts on a shared
    filesystem) makes them cooperate on one queue; without one, a
    parallel run uses a private temporary queue.  The remaining fabric
    knobs (``heartbeat_interval``, ``lease_ttl``,
    ``max_worker_restarts``) are documented on :func:`run_fabric`.
    """
    from repro.resilience.checkpoint import atomic_write_json

    cells = [cell if isinstance(cell, SweepCell)
             else SweepCell.from_dict(dict(cell)) for cell in cells]
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    if resume and queue_dir is None:
        raise ValueError("resume=True needs a queue_dir to resume from")
    if parallelism > 1 or queue_dir is not None:
        import tempfile

        from repro.resilience.fabric import run_fabric

        def _dispatch(qdir: str) -> SweepReport:
            return run_fabric(
                cells, queue_dir=qdir, parallelism=parallelism,
                timeout=timeout, retries=retries,
                retry_backoff=retry_backoff,
                heartbeat_interval=heartbeat_interval, lease_ttl=lease_ttl,
                checkpoint_refs=checkpoint_refs, resume=resume,
                max_worker_restarts=max_worker_restarts,
                progress=progress, out_path=out_path)

        if queue_dir is not None:
            return _dispatch(queue_dir)
        with tempfile.TemporaryDirectory(prefix="repro-fabric-") as tmp:
            return _dispatch(tmp)
    context = multiprocessing.get_context("spawn")
    report = SweepReport()
    process = None
    current: SweepCell | None = None
    try:
        for cell in cells:
            current = cell
            attempts = 0
            status = "failed"
            error: str | None = None
            payload: dict | None = None
            started = time.monotonic()
            while attempts <= retries:
                attempts += 1
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(
                    target=_worker, args=(sender, cell.to_dict(), attempts),
                    daemon=True)
                process.start()
                sender.close()
                process.join(timeout)
                if process.is_alive():
                    process.terminate()
                    process.join(5)
                    status = "timeout"
                    error = (f"worker exceeded the {timeout}s wall-clock "
                             f"budget and was terminated")
                else:
                    # poll() is also true at EOF (worker died pipe-first),
                    # so the recv itself decides between verdict and crash.
                    message = None
                    if receiver.poll():
                        try:
                            message = receiver.recv()
                        except EOFError:
                            message = None
                    if message is not None and message.get("ok"):
                        status, payload, error = "ok", message["result"], None
                    elif message is not None:
                        status, error = "failed", message.get("error")
                    else:
                        status = "failed"
                        error = (f"worker died without reporting "
                                 f"(exit code {process.exitcode})")
                receiver.close()
                process = None
                if status == "ok":
                    break
                if attempts <= retries:
                    time.sleep(retry_backoff * (2 ** (attempts - 1)))
            result = CellResult(cell=cell, status=status, attempts=attempts,
                                elapsed=time.monotonic() - started,
                                error=error, result=payload)
            report.cells.append(result)
            current = None
            if out_path is not None:
                atomic_write_json(out_path, report.to_dict())
            if progress is not None:
                progress(result)
    except KeyboardInterrupt:
        report.interrupted = True
        if process is not None and process.is_alive():
            process.terminate()
            process.join(5)
        done = len(report.cells)
        if current is not None and (not report.cells
                                    or report.cells[-1].cell is not current):
            report.cells.append(CellResult(
                cell=current, status="skipped",
                error="interrupted while running"))
            done += 1
        # `cells` is materialized above, so slicing past the finished
        # prefix marks exactly the never-started tail.
        for untouched in cells[done:]:
            report.cells.append(CellResult(
                cell=untouched, status="skipped",
                error="interrupted before start"))
    if out_path is not None:
        atomic_write_json(out_path, report.to_dict())
    return report
