"""Fault tolerance for the secure-memory runtime.

Three layers, importable from this package:

* :mod:`repro.resilience.recovery` — integrity-violation recovery
  (retry with backoff, transient/persistent classification, halt /
  quarantine / degrade policies);
* :mod:`repro.resilience.checkpoint` — versioned, integrity-summed
  serialization of full machine state for deterministic resume;
* :mod:`repro.resilience.runner` — the supervised sweep runner
  (subprocess isolation, timeouts, retry, partial results);
* :mod:`repro.resilience.fabric` — the distributed crash-tolerant sweep
  fabric (filesystem work-stealing queue, lease heartbeats, per-cell
  checkpoint resume, append-only result streaming).

``checkpoint``, ``runner``, and ``fabric`` import the heavy core/sim
layers at module scope, which would cycle with ``secure_memory``'s eager
import of ``recovery`` — so their names resolve lazily (PEP 562).
"""

from __future__ import annotations

from repro.resilience.recovery import (
    QuarantinedPageError,
    RecoveryConfig,
    RecoveryController,
    RecoveryEvent,
    RecoveryHalted,
    RecoveryPolicy,
    RecoveryStats,
    backoff_delay,
)

_CHECKPOINT_NAMES = frozenset({
    "CHECKPOINT_MAGIC",
    "CheckpointError",
    "atomic_write_bytes",
    "atomic_write_json",
    "checkpoint_simulation",
    "checkpoint_system",
    "config_from_state",
    "config_state",
    "dumps",
    "load_checkpoint",
    "load_simulation",
    "loads",
    "restore_system",
    "save_checkpoint",
    "semantic_config_state",
    "trace_digest",
})

_RUNNER_NAMES = frozenset({
    "CellResult",
    "SWEEP_SCHEMA",
    "SweepCell",
    "SweepReport",
    "load_sweep_report",
    "parse_inject",
    "run_many",
})

_FABRIC_NAMES = frozenset({
    "FabricSettings",
    "FabricStats",
    "MANIFEST_SCHEMA",
    "QueuePaths",
    "cell_id",
    "init_queue",
    "lease_is_stale",
    "load_manifest",
    "read_events",
    "run_fabric",
})

__all__ = [
    "QuarantinedPageError",
    "RecoveryConfig",
    "RecoveryController",
    "RecoveryEvent",
    "RecoveryHalted",
    "RecoveryPolicy",
    "RecoveryStats",
    "backoff_delay",
    *sorted(_CHECKPOINT_NAMES),
    *sorted(_RUNNER_NAMES),
    *sorted(_FABRIC_NAMES),
]


def __getattr__(name: str):
    if name in _CHECKPOINT_NAMES:
        from repro.resilience import checkpoint
        return getattr(checkpoint, name)
    if name in _RUNNER_NAMES:
        from repro.resilience import runner
        return getattr(runner, name)
    if name in _FABRIC_NAMES:
        from repro.resilience import fabric
        return getattr(fabric, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
