"""Integrity-violation recovery: retry, classify, apply policy.

A real memory controller cannot treat every MAC mismatch as fatal: a bus
glitch or a marginal DRAM cell produces a *transient* corruption that a
re-read would not reproduce, while actual tampering is *persistent* — the
stored image itself is wrong, so re-reading returns the same bad bytes
forever.  The :class:`RecoveryController` encodes that distinction:

1. **detect** — a verify path raises :class:`IntegrityViolation`;
2. **retry** — re-fetch the block up to ``max_retries`` times with bounded
   exponential backoff plus seeded jitter, re-verifying each image;
3. **classify** — a verify success inside the budget is *transient* (the
   recovered image is returned and the access proceeds); exhausting the
   budget is *persistent*;
4. **policy** — persistent faults are handled per
   :class:`~repro.core.config.RecoveryPolicy`: ``halt`` raises
   :class:`RecoveryHalted`, ``quarantine_page`` fences the affected pages
   and raises :class:`QuarantinedPageError` (later accesses to a fenced
   page fail fast at the public API), ``degrade`` serves the unverified
   image and counts the exposure.

Functional time does not advance, so the backoff here contributes cycle
*accounting* (``stats.backoff_cycles``) rather than wall-clock delay; the
timing twin charges the same schedule for real via
``TimingSecureMemory.charge_recovery``.

``RecoveryHalted`` and ``QuarantinedPageError`` subclass
:class:`IntegrityViolation` so every existing ``except IntegrityViolation``
site — the attack suite, the fuzz oracle — classifies a persistent-tamper
termination as a detection without rewrites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.auth.merkle import IntegrityViolation
from repro.core.config import RecoveryConfig, RecoveryPolicy
from repro.obs.metrics import reset_fields
from repro.obs.tracer import Tracer

__all__ = [
    "IntegrityViolation",
    "QuarantinedPageError",
    "RecoveryConfig",
    "RecoveryController",
    "RecoveryEvent",
    "RecoveryHalted",
    "RecoveryPolicy",
    "RecoveryStats",
    "backoff_delay",
]


class RecoveryHalted(IntegrityViolation):
    """Persistent integrity failure under the ``halt`` policy."""

    def __init__(self, message: str, *, address: int | None = None,
                 attempts: int = 0) -> None:
        super().__init__(message, kind="halt", address=address)
        self.attempts = attempts


class QuarantinedPageError(IntegrityViolation):
    """Access touched a page fenced by the ``quarantine_page`` policy."""

    def __init__(self, message: str, *, address: int | None = None,
                 page: int | None = None) -> None:
        super().__init__(message, kind="quarantine", address=address)
        self.page = page


def backoff_delay(config: RecoveryConfig, attempt: int,
                  rng: random.Random) -> float:
    """Cycles to wait before retry ``attempt`` (1-based), with jitter."""
    base = config.backoff_base_cycles * config.backoff_factor ** (attempt - 1)
    jitter = base * config.jitter_fraction
    return max(0.0, base + rng.uniform(-jitter, jitter))


@dataclass
class RecoveryStats:
    """Recovery activity, registered under ``recovery.*`` in the metrics."""

    violations: int = 0
    retries: int = 0
    transient_recoveries: int = 0
    persistent_faults: int = 0
    quarantined_pages: int = 0
    degraded_accesses: int = 0
    halts: int = 0
    backoff_cycles: float = 0.0

    def reset(self) -> None:
        reset_fields(self)


@dataclass
class RecoveryEvent:
    """One recovery episode, kept for post-mortem triage."""

    address: int
    label: str
    verdict: str            # "transient" | "persistent"
    attempts: int
    backoff_cycles: float
    detail: str

    def to_dict(self) -> dict:
        return {
            "address": self.address,
            "label": self.label,
            "verdict": self.verdict,
            "attempts": self.attempts,
            "backoff_cycles": self.backoff_cycles,
            "detail": self.detail,
        }


class RecoveryController:
    """Retry/classify/policy engine shared by the functional layer."""

    def __init__(self, config: RecoveryConfig, *, page_bytes: int = 4096,
                 tracer: Tracer | None = None):
        self.config = config
        self.page_bytes = page_bytes
        self.tracer = tracer
        self.stats = RecoveryStats()
        self.events: list[RecoveryEvent] = []
        self.quarantined: set[int] = set()
        self.degraded: set[int] = set()
        self._rng = random.Random(config.seed)

    # -- fencing -----------------------------------------------------------

    def page_of(self, address: int) -> int:
        return address // self.page_bytes

    def check_fence(self, address: int) -> None:
        """Fail fast when an access touches a quarantined page."""
        page = self.page_of(address)
        if page in self.quarantined:
            raise QuarantinedPageError(
                f"address {address:#x} is on quarantined page {page}",
                address=address, page=page,
            )

    # -- the recovery loop -------------------------------------------------

    def recover(self, *, address: int, label: str,
                violation: IntegrityViolation, reread, verify,
                quarantine_addresses=None) -> bytes:
        """Run detect → retry → classify → policy for one failed fetch.

        ``reread()`` re-fetches the raw block image, ``verify(image)``
        re-runs the integrity check (raising on mismatch).  Returns the
        verified image on transient recovery; otherwise applies the policy.
        """
        cfg = self.config
        self.stats.violations += 1
        tracer = self.tracer
        backoff = 0.0
        image = None
        last = violation
        for attempt in range(1, cfg.max_retries + 1):
            backoff += backoff_delay(cfg, attempt, self._rng)
            self.stats.retries += 1
            image = reread()
            try:
                verify(image)
            except IntegrityViolation as exc:
                last = exc
                continue
            self.stats.transient_recoveries += 1
            self.stats.backoff_cycles += backoff
            self._record(address, label, "transient", attempt, backoff,
                         str(violation), tracer)
            return image
        self.stats.persistent_faults += 1
        self.stats.backoff_cycles += backoff
        self._record(address, label, "persistent", cfg.max_retries, backoff,
                     str(last), tracer)
        if cfg.policy is RecoveryPolicy.DEGRADE:
            if image is None:
                image = reread()
            self.stats.degraded_accesses += 1
            self.degraded.add(address)
            return image
        if cfg.policy is RecoveryPolicy.QUARANTINE_PAGE:
            pages = {self.page_of(a)
                     for a in (quarantine_addresses or [address])}
            self.stats.quarantined_pages += len(pages - self.quarantined)
            self.quarantined |= pages
            raise QuarantinedPageError(
                f"persistent fault at {address:#x} ({label}); quarantined "
                f"page(s) {sorted(pages)}",
                address=address, page=self.page_of(address),
            ) from last
        self.stats.halts += 1
        raise RecoveryHalted(
            f"persistent fault at {address:#x} ({label}) after "
            f"{cfg.max_retries} retries: {last}",
            address=address, attempts=cfg.max_retries,
        ) from last

    def _record(self, address: int, label: str, verdict: str, attempts: int,
                backoff: float, detail: str, tracer: Tracer | None) -> None:
        self.events.append(RecoveryEvent(address, label, verdict, attempts,
                                         backoff, detail))
        if tracer is not None and tracer.enabled:
            tracer.instant("recovery", verdict, float(len(self.events)),
                           address=address, label=label, attempts=attempts,
                           backoff_cycles=backoff)

    # -- checkpoint support ------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "quarantined": set(self.quarantined),
            "degraded": set(self.degraded),
            "rng": self._rng.getstate(),
            "events": [e.to_dict() for e in self.events],
            "stats": {
                "violations": self.stats.violations,
                "retries": self.stats.retries,
                "transient_recoveries": self.stats.transient_recoveries,
                "persistent_faults": self.stats.persistent_faults,
                "quarantined_pages": self.stats.quarantined_pages,
                "degraded_accesses": self.stats.degraded_accesses,
                "halts": self.stats.halts,
                "backoff_cycles": self.stats.backoff_cycles,
            },
        }

    def load_state(self, state: dict) -> None:
        self.quarantined = set(state["quarantined"])
        self.degraded = set(state["degraded"])
        rng_state = state["rng"]
        self._rng.setstate((rng_state[0], tuple(rng_state[1]), rng_state[2]))
        self.events = [RecoveryEvent(**e) for e in state["events"]]
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
