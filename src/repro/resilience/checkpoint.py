"""Versioned, integrity-summed checkpoints of full machine state.

A checkpoint is a small binary container::

    magic (8 B) | payload length (8 B, big-endian) | sha256 (32 B) | zlib JSON

The JSON body is ``{"kind": ..., "version": 1, "state": ...}`` where
``state`` is a *tagged* encoding of the component ``state_dict()`` trees:
bytes/bytearray become hex strings, tuples/sets/non-string-keyed dicts get
explicit ``"__tuple"``/``"__set"``/``"__dict"`` wrappers, and everything
else must already be JSON-native.  The encoding is deliberately canonical —
sets are sorted, dict insertion order is preserved through a round-trip —
so ``save → load → save`` reproduces the identical byte stream, which the
checkpoint property tests assert for every preset.

``loads`` verifies the magic, the declared length, and the SHA-256 of the
compressed payload before touching the JSON, so a truncated or bit-flipped
checkpoint file fails loudly with :class:`CheckpointError` instead of
resuming a subtly wrong simulation.

Trust model note: a functional-system checkpoint contains the simulated
machine's *secrets* (counter values, Merkle state, plaintext DRAM image).
The digest detects corruption, not tampering — treat checkpoint files with
the same trust as the process memory they snapshot.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import zlib
from typing import Any

from repro.auth.policies import AuthPolicy
from repro.core.config import (
    AuthMode,
    CounterOrg,
    EncryptionMode,
    IntegrityMode,
    RecoveryConfig,
    RecoveryPolicy,
    SecureMemoryConfig,
)

CHECKPOINT_MAGIC = b"RPRCKPT1"
_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint could not be encoded, decoded, or safely applied.

    Subclasses :class:`ValueError`: a bad checkpoint argument (missing
    file, wrong configuration, corrupt container) is an input-validation
    failure, and callers that guard with ``except ValueError`` must catch
    it without importing this module.
    """


# -- tagged JSON codec --------------------------------------------------------


def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, bytes):
        return {"__bytes": value.hex()}
    if isinstance(value, bytearray):
        return {"__bytearray": value.hex()}
    if isinstance(value, tuple):
        return {"__tuple": [_encode(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        # canonical order even for unorderable encodings (e.g. tuples)
        return {"__set": sorted(
            (_encode(item) for item in value),
            key=lambda encoded: json.dumps(encoded, sort_keys=True,
                                           allow_nan=True))}
    if isinstance(value, dict):
        if all(isinstance(key, str) and not key.startswith("__")
               for key in value):
            return {key: _encode(item) for key, item in value.items()}
        return {"__dict": [[_encode(key), _encode(item)]
                           for key, item in value.items()]}
    if isinstance(value, list):
        return [_encode(item) for item in value]
    raise CheckpointError(
        f"cannot checkpoint value of type {type(value).__name__}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__bytes" in value:
            return bytes.fromhex(value["__bytes"])
        if "__bytearray" in value:
            return bytearray.fromhex(value["__bytearray"])
        if "__tuple" in value:
            return tuple(_decode(item) for item in value["__tuple"])
        if "__set" in value:
            return {_decode(item) for item in value["__set"]}
        if "__dict" in value:
            return {_decode(key): _decode(item)
                    for key, item in value["__dict"]}
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def dumps(payload: Any, kind: str) -> bytes:
    """Serialize a state tree into the checkpoint container format."""
    body = json.dumps(
        {"kind": kind, "version": _VERSION, "state": _encode(payload)},
        separators=(",", ":"), allow_nan=True,
    ).encode("utf-8")
    compressed = zlib.compress(body, 6)
    digest = hashlib.sha256(compressed).digest()
    return (CHECKPOINT_MAGIC
            + len(compressed).to_bytes(8, "big")
            + digest
            + compressed)


def loads(blob: bytes, kind: str | None = None) -> Any:
    """Verify and decode a checkpoint container; the inverse of ``dumps``."""
    header = len(CHECKPOINT_MAGIC) + 8 + 32
    if len(blob) < header or not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError("not a checkpoint (bad magic)")
    length = int.from_bytes(blob[8:16], "big")
    digest = blob[16:48]
    compressed = blob[48:]
    if len(compressed) != length:
        raise CheckpointError(
            f"truncated checkpoint: expected {length} payload bytes, "
            f"got {len(compressed)}")
    if hashlib.sha256(compressed).digest() != digest:
        raise CheckpointError("checkpoint integrity digest mismatch")
    try:
        body = json.loads(zlib.decompress(compressed))
    except (zlib.error, ValueError) as exc:
        raise CheckpointError(f"corrupt checkpoint payload: {exc}") from exc
    if body.get("version") != _VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {body.get('version')!r}")
    if kind is not None and body.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint kind {body.get('kind')!r} != expected {kind!r}")
    return _decode(body["state"])


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically.

    The bytes land in a uniquely named temp file *in the same directory*
    (so the final ``os.replace`` stays within one filesystem and is atomic
    on POSIX), get fsynced, and only then replace the target.  A crash or
    SIGKILL at any point leaves either the old file or the new file —
    never a truncated hybrid.  On failure the temp file is removed.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, payload: Any, *, indent: int = 2) -> None:
    """Serialize ``payload`` and write it atomically as UTF-8 JSON.

    Serialization happens fully in memory *before* the file is touched, so
    a payload that fails to encode (or a writer killed mid-dump) can never
    leave a truncated JSON document behind — the partial-sweep reports and
    bench reports written through here must always re-parse.
    """
    body = json.dumps(payload, indent=indent) + "\n"
    atomic_write_bytes(path, body.encode("utf-8"))


def save_checkpoint(path: str, blob: bytes) -> None:
    """Write a checkpoint atomically (unique temp file + rename).

    The temp name is unique per writer (not a fixed ``path + ".tmp"``), so
    two processes checkpointing to the same path cannot interleave writes
    into one temp file; last rename wins with each candidate intact.
    """
    atomic_write_bytes(path, blob)


def load_checkpoint(path: str, kind: str | None = None) -> Any:
    """Read and verify a checkpoint file written by :func:`save_checkpoint`.

    Any failure — unreadable file, truncated container, digest mismatch —
    surfaces as :class:`CheckpointError` with the path in the message, so
    resume callers never see a raw :class:`OSError` from deep inside.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {exc}") from exc
    return loads(blob, kind=kind)


# -- configuration (de)serialization -----------------------------------------


_CONFIG_ENUMS = {
    "encryption": EncryptionMode,
    "counter_org": CounterOrg,
    "auth": AuthMode,
    "auth_policy": AuthPolicy,
    "integrity": IntegrityMode,
}


def config_state(config: SecureMemoryConfig) -> dict:
    """A JSON-able snapshot of every config field (enums by value)."""
    state: dict = {}
    for spec in dataclasses.fields(config):
        value = getattr(config, spec.name)
        if isinstance(value, RecoveryConfig):
            value = {
                field.name: (getattr(value, field.name).value
                             if isinstance(getattr(value, field.name),
                                           enum.Enum)
                             else getattr(value, field.name))
                for field in dataclasses.fields(value)
            }
        elif isinstance(value, enum.Enum):
            value = value.value
        state[spec.name] = value
    return state


def semantic_config_state(config_or_state) -> dict:
    """:func:`config_state` minus host-only backend selectors.

    ``kernel`` and ``sim_engine`` pick bit-identical host implementations,
    so a checkpoint taken under one engine may be resumed under another —
    resume-compatibility checks compare this view, not the raw state.
    Accepts either a config object or an already-built state dict.
    """
    from repro.core.results import HOST_ONLY_CONFIG_FIELDS

    state = (dict(config_or_state) if isinstance(config_or_state, dict)
             else config_state(config_or_state))
    for name in HOST_ONLY_CONFIG_FIELDS:
        state.pop(name, None)
    return state


def config_from_state(state: dict) -> SecureMemoryConfig:
    """Rebuild a :class:`SecureMemoryConfig` from :func:`config_state`."""
    kwargs = dict(state)
    for name, enum_cls in _CONFIG_ENUMS.items():
        if name in kwargs:
            kwargs[name] = enum_cls(kwargs[name])
    if "recovery" in kwargs:
        recovery = dict(kwargs["recovery"])
        recovery["policy"] = RecoveryPolicy(recovery["policy"])
        kwargs["recovery"] = RecoveryConfig(**recovery)
    return SecureMemoryConfig(**kwargs)


# -- whole-machine checkpoints ------------------------------------------------


def checkpoint_system(system) -> bytes:
    """Checkpoint a functional :class:`SecureMemorySystem`."""
    return dumps({"config": config_state(system.config),
                  "system": system.state_dict()}, kind="system")


def restore_system(system, blob: bytes) -> None:
    """Restore a functional system from :func:`checkpoint_system` output.

    The target must be constructed from the same configuration (and, for a
    meaningful restore, the same base key) as the checkpointed one.
    """
    payload = loads(blob, kind="system")
    saved = semantic_config_state(payload["config"])
    current = semantic_config_state(system.config)
    if saved != current:
        raise CheckpointError(
            "checkpoint was taken under a different configuration "
            f"({saved.get('name')!r} != {current.get('name')!r} or "
            "field-level differences)")
    system.load_state(payload["system"])


def trace_digest(trace) -> str:
    """SHA-256 fingerprint of a workload trace (resume-compatibility check)."""
    digest = hashlib.sha256()
    digest.update(trace.name.encode("utf-8"))
    digest.update(b"\x00")
    for gap, write, addr in zip(trace.gaps, trace.writes, trace.addrs):
        digest.update(f"{gap},{1 if write else 0},{addr};".encode("ascii"))
    return digest.hexdigest()


def checkpoint_simulation(processor, loop, meta: dict | None = None) -> bytes:
    """Checkpoint a timing simulation mid-run.

    ``processor`` is a :class:`repro.sim.processor.Processor`; ``loop`` the
    :class:`repro.sim.processor.LoopState` captured at a reference
    boundary; ``meta`` carries resume-compatibility facts (app, refs,
    warmup, trace digest) that :func:`load_simulation` hands back for the
    caller to validate.
    """
    return dumps({
        "config": config_state(processor.config),
        "processor": processor.state_dict(),
        "loop": loop.to_dict(),
        "meta": dict(meta or {}),
    }, kind="simulation")


def load_simulation(blob: bytes) -> dict:
    """Decode a simulation checkpoint into its payload dict.

    Returns ``{"config", "processor", "loop", "meta"}``; the caller
    validates ``meta``/``config`` against the run being resumed and applies
    ``processor``/``loop`` via ``Processor.load_state`` and
    ``LoopState.from_dict``.
    """
    return loads(blob, kind="simulation")
