"""Crash-tolerant distributed sweep fabric: a filesystem work-stealing queue.

The fabric scales :func:`repro.resilience.runner.run_many` from one
serial supervisor to a pool of spawn-isolated worker processes — and,
because every coordination primitive is a file under one ``queue_dir``,
to multiple cooperating invocations (two terminals, two hosts on a
shared filesystem) with zero extra machinery.  The layout::

    queue_dir/
      manifest.json        # the sweep: cell list + settings (atomic write)
      leases/<cell>.json   # at most one per in-flight cell (O_EXCL claim)
      results/<cell>.json  # append-only terminal verdicts (atomic publish)
      checkpoints/<cell>.ckpt  # rolling mid-cell simulation checkpoints
      meta/<cell>.json     # cumulative attempt counter (metadata only)
      workers/<id>.json    # worker registry: pid + start time
      events.log           # append-only JSON-lines event journal

Protocol invariants (the resume-correctness argument, also DESIGN.md
section 17):

* **Claims are exclusive-create.**  A worker owns a cell iff it created
  ``leases/<cell>.json`` with ``O_CREAT | O_EXCL`` (or reclaimed a stale
  one and then won the exclusive re-create).  The lease carries a random
  nonce; renewal and release verify the nonce so a worker that lost its
  lease can never clobber the new owner's.
* **Heartbeats bound staleness in both directions.**  The owner rewrites
  its lease (atomically) every ``heartbeat_interval``.  Any worker may
  reclaim a lease whose heartbeat is older than ``lease_ttl`` — a worker
  killed with SIGKILL simply forfeits its cell — *or* more than
  ``lease_ttl`` in the future, so a clock-skewed (or maliciously
  future-dated) heartbeat cannot park a cell forever.
* **Leases are an efficiency device, not a correctness device.**  In the
  rare race where two workers end up simulating the same cell, both
  compute the identical deterministic result and the atomic
  ``os.replace`` publish makes the duplicate write invisible.
  Correctness rests on (a) deterministic cells, (b) atomic result
  publication, (c) the completed-result check before every claim.
* **Checkpoints make reclaims cheap.**  Each in-flight cell checkpoints
  through the versioned container every ``checkpoint_refs`` references;
  a reclaimed or retried cell resumes mid-simulation (bit-identically —
  the PR-4 guarantee) instead of rerunning.  A corrupt checkpoint or
  result file is quarantined to ``*.corrupt`` and the cell re-runs; it
  is never silently trusted and never crashes the sweep.

The coordinator (:func:`run_fabric`) spawns the local worker pool,
streams completed cells into the report as they land, restarts crashed
workers up to a budget, and aggregates the event journal into
``fabric.*`` metrics through :class:`repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field, fields

from repro.obs import MetricsRegistry
from repro.resilience.checkpoint import CheckpointError, atomic_write_json
from repro.resilience.runner import (
    CellResult,
    SweepCell,
    SweepReport,
    parse_inject,
)

__all__ = [
    "FabricSettings",
    "FabricStats",
    "MANIFEST_SCHEMA",
    "QueuePaths",
    "cell_id",
    "init_queue",
    "load_manifest",
    "read_events",
    "run_fabric",
]

MANIFEST_SCHEMA = "repro-sweep-manifest/1"

#: terminal statuses a result file may carry; anything else is corrupt
_TERMINAL = ("ok", "failed", "timeout")

#: bounds (seconds) for the heartbeat-age histogram — heartbeats are
#: sub-second in health, minutes only when something died
_HEARTBEAT_BOUNDS = (0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0)


@dataclass(frozen=True)
class FabricSettings:
    """Knobs shared by the coordinator and every worker (via the spawn
    args), recorded informationally in the manifest."""

    parallelism: int = 2
    timeout: float | None = None       # per-attempt wall clock, like run_many
    retries: int = 1                   # extra attempts per claim
    retry_backoff: float = 0.25
    heartbeat_interval: float = 0.5
    lease_ttl: float = 10.0
    checkpoint_refs: int = 2_000       # mid-cell checkpoint cadence (refs)
    poll_interval: float = 0.2

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError(
                f"parallelism must be >= 1, got {self.parallelism}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.checkpoint_refs < 1:
            raise ValueError(
                f"checkpoint_refs must be >= 1, got {self.checkpoint_refs}")
        if self.lease_ttl <= 0 or self.heartbeat_interval <= 0:
            raise ValueError("lease_ttl and heartbeat_interval must be > 0")
        if self.lease_ttl <= 2 * self.heartbeat_interval:
            raise ValueError(
                f"lease_ttl ({self.lease_ttl}s) must exceed two heartbeat "
                f"intervals ({self.heartbeat_interval}s each) or healthy "
                "workers get their leases stolen")

    def to_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FabricSettings":
        names = {spec.name for spec in fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in names})


@dataclass
class FabricStats:
    """Counters aggregated from the event journal; registered under
    ``fabric.`` in the coordinator's :class:`MetricsRegistry`."""

    cells_total: int = 0
    cells_completed: int = 0
    cells_leased: int = 0          # successful claims
    cells_reclaimed: int = 0       # claims that evicted a stale lease
    cells_resumed: int = 0         # attempts resumed from a checkpoint
    cells_retried: int = 0         # in-claim retry after crash/timeout
    cells_lost: int = 0            # lease lost mid-cell (abandoned, no publish)
    worker_restarts: int = 0
    results_quarantined: int = 0
    checkpoints_quarantined: int = 0


class QueuePaths:
    """Path arithmetic for one queue directory."""

    __slots__ = ("root",)

    _DIRS = ("leases", "results", "checkpoints", "meta", "workers")

    def __init__(self, root: str):
        self.root = os.fspath(root)

    @property
    def manifest(self) -> str:
        return os.path.join(self.root, "manifest.json")

    @property
    def events(self) -> str:
        return os.path.join(self.root, "events.log")

    def lease(self, cid: str) -> str:
        return os.path.join(self.root, "leases", cid + ".json")

    def result(self, cid: str) -> str:
        return os.path.join(self.root, "results", cid + ".json")

    def checkpoint(self, cid: str) -> str:
        return os.path.join(self.root, "checkpoints", cid + ".ckpt")

    def meta(self, cid: str) -> str:
        return os.path.join(self.root, "meta", cid + ".json")

    def worker(self, wid: str) -> str:
        return os.path.join(self.root, "workers", wid + ".json")

    def ensure(self) -> None:
        os.makedirs(self.root, exist_ok=True)
        for name in self._DIRS:
            os.makedirs(os.path.join(self.root, name), exist_ok=True)


def cell_id(index: int, cell: SweepCell) -> str:
    """Stable, filesystem-safe identity of one manifest cell.

    Uses :meth:`SweepCell.workload_id` rather than the raw ``app`` spec:
    a recorded-trace cell is named by its content fingerprint, so a
    resumed sweep dedupes against the same cell even when the trace file
    is reached through a different path (and a *different* recording at
    the same path can never steal a finished cell's result).
    """
    slug = "-".join(
        "".join(ch if ch.isalnum() else "-" for ch in part)
        for part in (cell.scheme, cell.workload_id()))
    return f"{index:04d}-{slug}"


# -- event journal ------------------------------------------------------------


def _log_event(paths: QueuePaths, **payload) -> None:
    """Append one JSON line to the journal.

    A single small ``O_APPEND`` write is atomic on POSIX local
    filesystems; readers skip unparseable lines defensively anyway.  The
    journal is observability plus test evidence (attempt counts prove no
    completed cell ran twice) — never a correctness input.
    """
    payload.setdefault("t", time.time())
    line = json.dumps(payload, separators=(",", ":")) + "\n"
    flags = os.O_CREAT | os.O_WRONLY | os.O_APPEND
    fd = os.open(paths.events, flags, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def read_events(queue_dir: str) -> list[dict]:
    """Every parseable journal line, in append order."""
    paths = QueuePaths(queue_dir)
    events: list[dict] = []
    try:
        with open(paths.events, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(event, dict):
                    events.append(event)
    except OSError:
        pass
    return events


# -- manifest -----------------------------------------------------------------


def init_queue(queue_dir: str, cells: list[SweepCell],
               settings: FabricSettings, *,
               resume: bool = False) -> list[tuple[str, SweepCell]]:
    """Create or adopt the queue's manifest; return ``(id, cell)`` pairs.

    A fresh directory gets a manifest built from ``cells``.  An existing
    manifest is adopted when ``resume=True`` (the caller's cells are
    ignored — the manifest is the sweep) or when the caller's cells match
    it exactly (the two-terminal join case); a mismatch without
    ``resume`` raises :class:`CheckpointError` instead of silently mixing
    two different sweeps in one directory.
    """
    paths = QueuePaths(queue_dir)
    paths.ensure()
    if os.path.exists(paths.manifest):
        entries = load_manifest(queue_dir)
        if not resume:
            mine = [cell.to_dict() for cell in cells]
            theirs = [cell.to_dict() for _, cell in entries]
            if mine != theirs:
                raise CheckpointError(
                    f"queue dir {queue_dir!r} already holds a different "
                    "sweep manifest; pass resume=True to continue it or "
                    "point at a fresh queue dir")
        return entries
    if resume:
        raise CheckpointError(
            f"nothing to resume: no manifest in {queue_dir!r}")
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "settings": settings.to_dict(),
        "cells": [{"id": cell_id(index, cell), "cell": cell.to_dict()}
                  for index, cell in enumerate(cells)],
    }
    atomic_write_json(paths.manifest, manifest)
    return [(entry["id"], SweepCell.from_dict(entry["cell"]))
            for entry in manifest["cells"]]


def load_manifest(queue_dir: str) -> list[tuple[str, SweepCell]]:
    """Read and validate the manifest; raises :class:`CheckpointError`."""
    paths = QueuePaths(queue_dir)
    try:
        with open(paths.manifest, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise CheckpointError(
            f"cannot read sweep manifest {paths.manifest!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"sweep manifest {paths.manifest!r} is corrupt: {exc}") from exc
    if (not isinstance(manifest, dict)
            or manifest.get("schema") != MANIFEST_SCHEMA):
        raise CheckpointError(
            f"{paths.manifest!r} is not a {MANIFEST_SCHEMA} manifest")
    return [(entry["id"], SweepCell.from_dict(entry["cell"]))
            for entry in manifest["cells"]]


# -- results ------------------------------------------------------------------


def _load_result(paths: QueuePaths, cid: str, *,
                 quarantine_by: str | None = None) -> dict | None:
    """The cell's published terminal verdict, or ``None``.

    A present-but-invalid file (torn by a non-atomic writer, bit-rotted,
    truncated) is never trusted: with ``quarantine_by`` it is atomically
    renamed to ``<result>.corrupt`` (journaled) so the cell re-enqueues;
    without, it is just treated as absent.
    """
    path = paths.result(cid)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if (not isinstance(payload, dict) or "cell" not in payload
                or payload.get("status") not in _TERMINAL):
            raise ValueError(f"not a terminal cell result: {path!r}")
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        if quarantine_by is not None:
            try:
                os.replace(path, path + ".corrupt")
                _log_event(paths, event="result_quarantined", cell=cid,
                           worker=quarantine_by, error=str(exc))
            except FileNotFoundError:
                pass             # another scanner quarantined it first
        return None
    return payload


# -- lease protocol -----------------------------------------------------------


def _lease_payload(worker_id: str, nonce: str) -> dict:
    return {"worker": worker_id, "nonce": nonce, "pid": os.getpid(),
            "heartbeat": time.time()}


def _read_lease(path: str) -> dict | None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return payload if isinstance(payload, dict) else None
    except (OSError, json.JSONDecodeError):
        return None


def lease_is_stale(lease: dict | None, mtime: float, now: float,
                   ttl: float) -> bool:
    """Whether a lease has expired (or is implausibly future-dated).

    ``heartbeat`` older than ``ttl`` means the owner stopped renewing —
    crashed, SIGKILLed, or partitioned — and the cell is up for grabs.
    A heartbeat more than ``ttl`` *ahead* of our clock is treated as
    stale too: an owner with that much forward skew can never be
    distinguished from one that will never expire, so the fabric prefers
    a (correctness-safe) duplicate claim over a wedged cell.  An
    unreadable lease falls back to the file mtime.
    """
    heartbeat = mtime
    if lease is not None and isinstance(lease.get("heartbeat"), (int, float)):
        heartbeat = float(lease["heartbeat"])
    age = now - heartbeat
    return age > ttl or age < -ttl


def _try_claim(paths: QueuePaths, cid: str, worker_id: str, nonce: str,
               ttl: float) -> tuple[bool, bool]:
    """Attempt to acquire the cell's lease.

    Returns ``(claimed, reclaimed_stale)``.  The claim itself is the
    ``O_CREAT | O_EXCL`` create; reclaiming first unlinks a lease that
    :func:`lease_is_stale` and then races the re-create like everyone
    else.
    """
    path = paths.lease(cid)
    payload = json.dumps(_lease_payload(worker_id, nonce)).encode("utf-8")
    for reclaimed in (False, True):
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            if reclaimed:
                return False, False
            lease = _read_lease(path)
            try:
                mtime = os.stat(path).st_mtime
            except OSError:
                continue         # vanished: released or reclaimed; retry
            if not lease_is_stale(lease, mtime, time.time(), ttl):
                return False, False
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            continue
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        return True, reclaimed
    return False, False


def _renew_lease(paths: QueuePaths, cid: str, worker_id: str,
                 nonce: str) -> bool:
    """Refresh the heartbeat iff we still own the lease.

    Reads the current lease first: a different nonce means the lease was
    reclaimed out from under us (we stalled past the TTL) — the caller
    must abandon the cell without publishing.
    """
    path = paths.lease(cid)
    lease = _read_lease(path)
    if lease is None or lease.get("nonce") != nonce:
        return False
    atomic_write_json(path, _lease_payload(worker_id, nonce), indent=0)
    return True


def _release_lease(paths: QueuePaths, cid: str, nonce: str) -> None:
    path = paths.lease(cid)
    lease = _read_lease(path)
    if lease is not None and lease.get("nonce") == nonce:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass


# -- attempt metadata ---------------------------------------------------------


def _read_attempts(paths: QueuePaths, cid: str) -> int:
    try:
        with open(paths.meta(cid), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return int(payload.get("attempts", 0))
    except (OSError, ValueError, json.JSONDecodeError):
        return 0


def _quarantine(path: str) -> bool:
    try:
        os.replace(path, path + ".corrupt")
        return True
    except FileNotFoundError:
        return False


# -- cell execution (grandchild process) --------------------------------------


def _cell_child(conn, cell_dict: dict, attempt: int, queue_dir: str,
                cid: str, settings_dict: dict) -> None:
    """Simulate one cell, checkpointing as it goes; report over the pipe.

    Runs as a spawn-isolated grandchild of the coordinator so a segfault
    or ``os._exit`` can only ever cost one attempt.  A checkpoint left by
    a previous attempt (this worker's or a dead one's) is resumed
    bit-identically; a corrupt or mismatched checkpoint is quarantined to
    ``*.corrupt`` and the cell restarts from scratch — loudly journaled,
    never fatal.

    Chaos inject hooks (fabric-only; see :class:`SweepCell`):

    * ``kill9:N`` — SIGKILL *this* process right after writing its N-th
      checkpoint (first overall attempt only): exercises in-worker crash
      retry with mid-cell resume.
    * ``killworker:N`` — SIGKILL the parent worker first, then this
      process: exercises stale-lease reclaim + coordinator restart.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    cell = SweepCell.from_dict(cell_dict)
    settings = FabricSettings.from_dict(settings_dict)
    paths = QueuePaths(queue_dir)
    base, arg, always = parse_inject(cell.inject)
    if base in ("crash", "hang") and (always or attempt == 1):
        if base == "crash":
            os._exit(17)
        while True:                        # "hang": wait for terminate()
            time.sleep(3600)
    kill_after = (arg if base in ("kill9", "killworker") and attempt == 1
                  else None)
    try:
        from repro.api import Experiment
        from repro.resilience.checkpoint import load_checkpoint

        ckpt_path = paths.checkpoint(cid)
        resume_from = None
        if os.path.isfile(ckpt_path):
            try:
                load_checkpoint(ckpt_path, kind="simulation")
                resume_from = ckpt_path
            except CheckpointError as exc:
                if _quarantine(ckpt_path):
                    _log_event(paths, event="checkpoint_quarantined",
                               cell=cid, error=str(exc))

        checkpoints_written = 0

        def checkpoint_hook() -> None:
            nonlocal checkpoints_written
            checkpoints_written += 1
            if kill_after is not None and checkpoints_written == kill_after:
                if base == "killworker":
                    os.kill(os.getppid(), signal.SIGKILL)
                os.kill(os.getpid(), signal.SIGKILL)

        def simulate(resume: str | None):
            experiment = Experiment(cell.scheme, cell.app, refs=cell.refs,
                                    warmup_refs=cell.warmup_refs)
            return experiment.run(
                checkpoint_every=settings.checkpoint_refs,
                checkpoint_path=ckpt_path, resume_from=resume,
                checkpoint_hook=checkpoint_hook)

        try:
            result = simulate(resume_from)
        except CheckpointError as exc:
            # the checkpoint parsed but did not belong to this cell
            # (config/trace mismatch after a manifest edit): quarantine
            # and rerun from scratch rather than fail the cell
            if resume_from is None:
                raise
            if _quarantine(ckpt_path):
                _log_event(paths, event="checkpoint_quarantined",
                           cell=cid, error=str(exc))
            resume_from = None
            result = simulate(None)
        conn.send({"ok": True, "result": result.to_dict(),
                   "resumed": resume_from is not None})
    except Exception as exc:        # noqa: BLE001 — verdict, not handling
        conn.send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


# -- worker loop (child process) ----------------------------------------------


def _run_cell(context, paths: QueuePaths, cid: str, cell: SweepCell,
              worker_id: str, nonce: str, settings: FabricSettings,
              drain: dict) -> None:
    """Execute one claimed cell to a terminal verdict (or abandon it).

    Mirrors ``run_many``'s per-attempt supervision — spawn, wall-clock
    budget, crash/timeout retries with backoff — while renewing the lease
    every heartbeat.  Publishes the verdict atomically and releases the
    lease; returns without publishing when draining or when the lease was
    lost (so the new owner's eventual publish is the only one).
    """
    attempts_before = _read_attempts(paths, cid)
    attempts = attempts_before
    started = time.monotonic()
    status = "failed"
    error: str | None = None
    payload: dict | None = None
    resumed = False
    while True:
        attempts += 1
        atomic_write_json(paths.meta(cid), {"attempts": attempts}, indent=0)
        _log_event(paths, event="cell_started", cell=cid, worker=worker_id,
                   attempt=attempts)
        receiver, sender = context.Pipe(duplex=False)
        child = context.Process(
            target=_cell_child,
            args=(sender, cell.to_dict(), attempts, paths.root, cid,
                  settings.to_dict()),
            daemon=True)
        child.start()
        sender.close()
        deadline = (time.monotonic() + settings.timeout
                    if settings.timeout is not None else None)
        verdict_timeout = False
        while True:
            child.join(settings.heartbeat_interval)
            if not child.is_alive():
                break
            if drain["hit"]:
                child.terminate()
                child.join(5)
                receiver.close()
                _log_event(paths, event="cell_drained", cell=cid,
                           worker=worker_id, attempt=attempts)
                _release_lease(paths, cid, nonce)
                return
            if deadline is not None and time.monotonic() > deadline:
                child.terminate()
                child.join(5)
                verdict_timeout = True
                break
            if not _renew_lease(paths, cid, worker_id, nonce):
                # the lease was reclaimed: someone else owns the cell
                # now — kill our attempt and never publish
                child.terminate()
                child.join(5)
                receiver.close()
                _log_event(paths, event="lease_lost", cell=cid,
                           worker=worker_id, attempt=attempts)
                return
        if verdict_timeout:
            status = "timeout"
            error = (f"worker exceeded the {settings.timeout}s wall-clock "
                     f"budget and was terminated")
        else:
            message = None
            if receiver.poll():
                try:
                    message = receiver.recv()
                except EOFError:
                    message = None
            if message is not None and message.get("ok"):
                status, payload, error = "ok", message["result"], None
                resumed = bool(message.get("resumed"))
            elif message is not None:
                status, error = "failed", message.get("error")
            else:
                status = "failed"
                error = (f"worker died without reporting "
                         f"(exit code {child.exitcode})")
        receiver.close()
        if status == "ok":
            break
        if attempts - attempts_before <= settings.retries and not drain["hit"]:
            _log_event(paths, event="cell_retried", cell=cid,
                       worker=worker_id, attempt=attempts, status=status)
            time.sleep(settings.retry_backoff
                       * (2 ** (attempts - attempts_before - 1)))
            continue
        break
    verdict = CellResult(cell=cell, status=status, attempts=attempts,
                         elapsed=time.monotonic() - started, error=error,
                         result=payload, worker_id=worker_id,
                         resumed_from_checkpoint=resumed)
    atomic_write_json(paths.result(cid), verdict.to_dict())
    if status == "ok":
        try:
            os.unlink(paths.checkpoint(cid))
        except FileNotFoundError:
            pass
    _release_lease(paths, cid, nonce)
    _log_event(paths, event="cell_finished", cell=cid, worker=worker_id,
               status=status, attempts=attempts, resumed=resumed)


def _worker_main(queue_dir: str, worker_id: str, offset: int,
                 settings_dict: dict) -> None:
    """One pool worker: scan, claim, execute, repeat until drained/done.

    SIGINT is ignored (the coordinator owns interrupts); SIGTERM requests
    a graceful drain — the in-flight attempt is terminated (its last
    checkpoint survives), the lease released, and the worker exits 0.
    ``offset`` rotates each worker's scan order so a freshly started pool
    doesn't stampede the same first cell.
    """
    import secrets

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    drain = {"hit": False}

    def _on_sigterm(_signum, _frame) -> None:
        drain["hit"] = True

    signal.signal(signal.SIGTERM, _on_sigterm)
    paths = QueuePaths(queue_dir)
    settings = FabricSettings.from_dict(settings_dict)
    atomic_write_json(paths.worker(worker_id),
                      {"worker": worker_id, "pid": os.getpid(),
                       "started": time.time()})
    _log_event(paths, event="worker_started", worker=worker_id,
               pid=os.getpid())
    entries = load_manifest(queue_dir)
    entries = entries[offset % max(1, len(entries)):] \
        + entries[:offset % max(1, len(entries))]
    context = multiprocessing.get_context("spawn")
    drained = False
    try:
        while not drain["hit"]:
            claimed_any = False
            pending = 0
            for cid, cell in entries:
                if drain["hit"]:
                    break
                if _load_result(paths, cid,
                                quarantine_by=worker_id) is not None:
                    continue
                pending += 1
                nonce = secrets.token_hex(8)
                claimed, reclaimed = _try_claim(paths, cid, worker_id,
                                                nonce, settings.lease_ttl)
                if not claimed:
                    continue
                if reclaimed:
                    _log_event(paths, event="lease_reclaimed", cell=cid,
                               worker=worker_id)
                _log_event(paths, event="cell_claimed", cell=cid,
                           worker=worker_id, reclaimed=reclaimed)
                claimed_any = True
                _run_cell(context, paths, cid, cell, worker_id, nonce,
                          settings, drain)
            if drain["hit"] or pending == 0:
                break
            if not claimed_any:
                # every unfinished cell is leased elsewhere: wait for a
                # result to land or a lease to go stale
                time.sleep(settings.poll_interval)
        drained = drain["hit"]
    finally:
        _log_event(paths, event="worker_stopped", worker=worker_id,
                   drained=drained)


# -- coordinator --------------------------------------------------------------


def _assemble_report(paths: QueuePaths, entries, *, interrupted: bool,
                     fabric_section: dict) -> SweepReport:
    """Build the report in manifest order from the results directory."""
    report = SweepReport(interrupted=interrupted, fabric=fabric_section)
    for cid, cell in entries:
        payload = _load_result(paths, cid)
        if payload is not None:
            report.cells.append(CellResult.from_dict(payload))
        else:
            report.cells.append(CellResult(
                cell=cell, status="skipped",
                error=("interrupted before completion" if interrupted
                       else "no workers completed this cell")))
    return report


def _aggregate_stats(queue_dir: str, stats: FabricStats) -> list[dict]:
    """Fold the event journal into the counters; returns the events."""
    events = read_events(queue_dir)
    counts: dict[str, int] = {}
    for event in events:
        counts[event.get("event", "?")] = \
            counts.get(event.get("event", "?"), 0) + 1
    stats.cells_leased = counts.get("cell_claimed", 0)
    stats.cells_reclaimed = counts.get("lease_reclaimed", 0)
    stats.cells_retried = counts.get("cell_retried", 0)
    stats.cells_lost = counts.get("lease_lost", 0)
    stats.results_quarantined = counts.get("result_quarantined", 0)
    stats.checkpoints_quarantined = counts.get("checkpoint_quarantined", 0)
    stats.cells_resumed = sum(
        1 for event in events
        if event.get("event") == "cell_finished" and event.get("resumed"))
    return events


def run_fabric(cells, *, queue_dir: str, parallelism: int = 2,
               timeout: float | None = None, retries: int = 1,
               retry_backoff: float = 0.25,
               heartbeat_interval: float = 0.5, lease_ttl: float = 10.0,
               checkpoint_refs: int = 2_000, resume: bool = False,
               max_worker_restarts: int | None = None,
               progress=None, out_path: str | None = None) -> SweepReport:
    """Run a sweep through the distributed fabric; always returns a report.

    Spawns ``parallelism`` local workers against ``queue_dir`` (other
    invocations may point workers at the same directory concurrently),
    streams completed cells into the report — and to ``out_path``,
    atomically, as they land — restarts crashed workers up to
    ``max_worker_restarts`` (default ``2 * parallelism``), and aggregates
    the ``fabric.*`` metrics.  ``KeyboardInterrupt`` drains gracefully:
    workers get SIGTERM, in-flight cells keep their checkpoints, and the
    partial report comes back with ``interrupted=True`` — a later
    ``resume=True`` invocation picks up exactly where it stopped,
    skipping every published result wholesale.
    """
    cells = [cell if isinstance(cell, SweepCell)
             else SweepCell.from_dict(dict(cell)) for cell in cells]
    settings = FabricSettings(
        parallelism=parallelism, timeout=timeout, retries=retries,
        retry_backoff=retry_backoff, heartbeat_interval=heartbeat_interval,
        lease_ttl=lease_ttl, checkpoint_refs=checkpoint_refs)
    paths = QueuePaths(queue_dir)
    entries = init_queue(queue_dir, cells, settings, resume=resume)
    if max_worker_restarts is None:
        max_worker_restarts = 2 * parallelism

    registry = MetricsRegistry()
    stats = FabricStats(cells_total=len(entries))
    registry.register("fabric", stats)
    heartbeat_age = registry.histogram("fabric.heartbeat_age_s",
                                       bounds=_HEARTBEAT_BOUNDS)

    context = multiprocessing.get_context("spawn")
    workers: dict[str, multiprocessing.Process] = {}
    worker_serial = 0

    def spawn_worker(index: int) -> None:
        nonlocal worker_serial
        worker_serial += 1
        wid = f"w{index}.{os.getpid()}" \
            + (f".r{worker_serial - parallelism}"
               if worker_serial > parallelism else "")
        process = context.Process(
            target=_worker_main,
            args=(paths.root, wid, index, settings.to_dict()))
        process.start()
        workers[wid] = process

    for index in range(parallelism):
        spawn_worker(index)

    surfaced: set[str] = set()
    interrupted = False

    def sweep_results() -> int:
        """Surface newly published results; returns the completed count."""
        done = 0
        fresh = False
        for cid, _cell in entries:
            payload = _load_result(paths, cid, quarantine_by="coordinator")
            if payload is None:
                continue
            done += 1
            if cid not in surfaced:
                surfaced.add(cid)
                fresh = True
                if progress is not None:
                    progress(CellResult.from_dict(payload))
        if fresh and out_path is not None:
            stats.cells_completed = done
            _aggregate_stats(paths.root, stats)
            atomic_write_json(out_path, _assemble_report(
                paths, entries, interrupted=False,
                fabric_section=_fabric_section()).to_dict())
        return done

    def sample_heartbeats() -> None:
        now = time.time()
        for cid, _cell in entries:
            lease = _read_lease(paths.lease(cid))
            if lease is not None and isinstance(lease.get("heartbeat"),
                                                (int, float)):
                heartbeat_age.observe(max(0.0, now - lease["heartbeat"]))

    def _fabric_section() -> dict:
        snapshot = registry.snapshot()
        return {
            "queue_dir": paths.root,
            "parallelism": parallelism,
            "settings": settings.to_dict(),
            "workers": sorted(workers),
            "metrics": snapshot,
        }

    restarts_left = max_worker_restarts
    try:
        while True:
            done = sweep_results()
            sample_heartbeats()
            if done >= len(entries):
                break
            for wid, process in list(workers.items()):
                if process.is_alive():
                    continue
                del workers[wid]
                if process.exitcode != 0 and restarts_left > 0:
                    restarts_left -= 1
                    stats.worker_restarts += 1
                    _log_event(paths, event="worker_restarted", worker=wid,
                               exitcode=process.exitcode)
                    spawn_worker(len(workers))
            if not workers:
                if restarts_left > 0:
                    # every local worker exited (e.g. all cells were
                    # leased by a peer invocation that then died): spin
                    # one back up rather than wedge
                    restarts_left -= 1
                    stats.worker_restarts += 1
                    spawn_worker(0)
                else:
                    break
            time.sleep(settings.poll_interval)
    except KeyboardInterrupt:
        interrupted = True
        for process in workers.values():
            if process.is_alive():
                process.terminate()        # SIGTERM: graceful drain
    finally:
        deadline = time.monotonic() + 30
        for process in workers.values():
            process.join(max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(5)
    stats.cells_completed = sweep_results()
    sample_heartbeats()
    _aggregate_stats(paths.root, stats)
    report = _assemble_report(paths, entries, interrupted=interrupted,
                              fabric_section=_fabric_section())
    if out_path is not None:
        atomic_write_json(out_path, report.to_dict())
    return report
