"""Unified experiment facade — the documented entry point for the repro.

Everything an experiment needs lives behind three names:

* :func:`get_config` — preset lookup by benchmark label, with typo
  suggestions and keyword overrides
  (``get_config("split+gcm", mac_bits=32)``).
* :class:`Experiment` — one configuration bound to one workload; ``run()``
  simulates it (plus the no-protection baseline on the identical trace for
  normalization) and returns an :class:`ExperimentResult`.
* :func:`run` — one-shot convenience wrapping the two above.

The CLI (``python -m repro``), the pytest benchmarks, and the examples are
all thin layers over this module.  The older per-scheme constructors
(``split_gcm_config()`` and friends) and the raw ``PRESETS`` mapping remain
available as back-compat shims, but new code should start here.

Example::

    from repro.api import run

    result = run("split+gcm", "mcf", refs=40_000)
    print(result.normalized_ipc, result.counter_cache_hit_rate)
    print(result.to_dict())   # JSON-ready
"""

from __future__ import annotations

import difflib
import math
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.core.config import PRESETS, SecureMemoryConfig
from repro.core.results import (
    RESULT_SCHEMA,
    ResultBase,
    ResultMeta,
    config_fingerprint,
)
from repro.obs import (
    AttributionReport,
    RecordingTracer,
    Tracer,
    build_report,
    write_chrome_trace,
    write_csv,
)
from repro.sim import LoopState, Processor, SimResult, simulate
from repro.workloads import (
    canonical_workload_id,
    resolve_trace,
    workload_kind,
)

__all__ = [
    "BenchResult",
    "ComponentInfo",
    "Experiment",
    "ExperimentResult",
    "ProfileResult",
    "RESULT_SCHEMA",
    "ResultMeta",
    "SchemeInfo",
    "bench",
    "describe_scheme",
    "fuzz",
    "get_config",
    "list_configs",
    "list_schemes",
    "loadgen",
    "profile",
    "run",
    "run_many",
]


def list_configs() -> list[str]:
    """The preset labels accepted by :func:`get_config`, in display order."""
    return list(PRESETS)


def get_config(name: str | None = None, *, preset: str | None = None,
               **overrides: Any) -> SecureMemoryConfig:
    """Look up a preset by its benchmark label, optionally overriding fields.

    The label can be passed positionally or as ``preset=``; exactly one of
    the two must be given.  Unknown labels raise :class:`KeyError` with
    close-match suggestions (``get_config("spilt")`` → *did you mean
    'split'?*).  Overrides go through
    :meth:`SecureMemoryConfig.with_updates`, so they are validated like any
    other construction.
    """
    if (name is None) == (preset is None):
        raise TypeError(
            "get_config takes exactly one scheme label: positional name or "
            "preset=")
    label = name if name is not None else preset
    try:
        config = PRESETS[label]
    except KeyError:
        suggestions = difflib.get_close_matches(label, PRESETS, n=3)
        hint = (
            f"; did you mean {' or '.join(repr(s) for s in suggestions)}?"
            if suggestions else ""
        )
        raise KeyError(
            f"unknown config {label!r}{hint} "
            f"(choose from: {', '.join(PRESETS)})"
        ) from None
    return config.with_updates(**overrides) if overrides else config


# -- scheme registry views ----------------------------------------------------

@dataclass(frozen=True)
class ComponentInfo:
    """One mechanism of a scheme, as registered in the scheme registry."""

    kind: str
    name: str
    summary: str
    provides: tuple[str, ...]
    requires: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["provides"] = list(self.provides)
        payload["requires"] = list(self.requires)
        return payload


@dataclass(frozen=True)
class SchemeInfo:
    """Structured description of one registered scheme.

    ``encryption``/``counters``/``auth``/``mac_bits``/``integrity`` echo
    the resolved configuration (the stable CLI JSON contract);
    ``components`` and ``capabilities`` expose the registry's view of how
    the scheme is composed.
    """

    name: str
    summary: str
    encryption: str
    counters: str | None
    auth: str
    mac_bits: int
    integrity: str
    capabilities: tuple[str, ...]
    components: tuple[ComponentInfo, ...]

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["capabilities"] = list(self.capabilities)
        payload["components"] = [c.to_dict() for c in self.components]
        return payload


def describe_scheme(name: str) -> SchemeInfo:
    """Describe one registered scheme (preset) as structured data."""
    from repro.schemes import REGISTRY

    composition = REGISTRY.scheme(name)
    config = get_config(name)
    specs = [REGISTRY.component(kind, comp_name)
             for kind, comp_name in composition.component_names()]
    return SchemeInfo(
        name=composition.name,
        summary=composition.summary,
        encryption=config.encryption.value,
        counters=(config.counter_org.value if config.uses_counters
                  else None),
        auth=config.auth.value,
        mac_bits=config.mac_bits,
        integrity=config.resolved_integrity.value,
        capabilities=tuple(sorted(
            {cap for spec in specs for cap in spec.provides}
        )),
        components=tuple(
            ComponentInfo(kind=spec.kind, name=spec.name,
                          summary=spec.summary, provides=spec.provides,
                          requires=spec.requires)
            for spec in specs
        ),
    )


def list_schemes() -> list[SchemeInfo]:
    """Every registered scheme, in registration (display) order."""
    from repro.schemes import REGISTRY

    return [describe_scheme(name) for name in REGISTRY.scheme_names()]


@dataclass(frozen=True)
class ExperimentResult(ResultBase):
    """Headline metrics of one simulated design point.

    ``to_dict()`` returns the same fields as a JSON-ready mapping — this is
    what ``python -m repro simulate --json`` prints, so harnesses consume
    these names instead of scraping formatted text.
    """

    scheme: str
    app: str
    refs: int
    ipc: float
    baseline_ipc: float
    normalized_ipc: float
    overhead: float
    cycles: float
    instructions: int
    l2_misses: int
    bus_utilization: float
    #: None when the scheme keeps no counter cache (e.g. baseline, direct)
    counter_cache_hit_rate: float | None
    #: None when the scheme never requested a decryption pad
    timely_pad_rate: float | None
    page_reencryptions: int
    mean_page_reencryption_cycles: float
    full_reencryptions: int
    meta: ResultMeta | None = None

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


class Experiment:
    """One secure-memory configuration bound to one workload.

    ``config`` is a :class:`SecureMemoryConfig` or a preset label;
    ``workload`` is a SPEC-like app name (see ``repro.workloads.SPEC_APPS``),
    a scenario-library name (``repro.workloads.SCENARIO_APPS``), a recorded
    trace file (``trace:<path>`` or any ``*.rtrc`` path), or a prebuilt
    trace.  ``run()`` simulates the scheme and the baseline on
    the identical trace and returns an :class:`ExperimentResult`; the raw
    :class:`~repro.sim.SimResult` pair stays on ``.result`` /
    ``.baseline_result`` for deeper inspection.
    """

    def __init__(self, config: SecureMemoryConfig | str,
                 workload: Any = "swim", *, refs: int = 60_000,
                 warmup_refs: int | None = None,
                 baseline: SimResult | None = None,
                 trace: Tracer | str | None = None):
        self.config = get_config(config) if isinstance(config, str) else config
        if isinstance(workload, str):
            workload_kind(workload)  # raises ValueError with suggestions
        self.workload = workload
        self.refs = refs
        self.warmup_refs = refs // 3 if warmup_refs is None else warmup_refs
        self.result: SimResult | None = None
        #: pass a prior run's baseline to skip re-simulating it (it must
        #: come from the identical trace for the normalization to be fair)
        self.baseline_result: SimResult | None = baseline
        #: ``trace=`` accepts a :class:`~repro.obs.Tracer` to record into,
        #: or a file path — then a RecordingTracer is created and a Chrome
        #: trace is written there after ``run()``.
        self._trace_out: str | None = None
        if isinstance(trace, str):
            self._trace_out = trace
            trace = RecordingTracer()
        self.tracer: Tracer | None = trace

    def _trace(self):
        if isinstance(self.workload, str):
            return resolve_trace(self.workload, self.refs)
        return self.workload

    def run(self, *, checkpoint_every: int | None = None,
            checkpoint_path: str | None = None,
            resume_from: str | None = None,
            checkpoint_hook=None) -> ExperimentResult:
        """Simulate the experiment (checkpointing / resuming on request).

        With ``checkpoint_every``/``checkpoint_path``, the run writes one
        rolling checkpoint file every N trace references (atomically —
        partial writes never clobber a good checkpoint).  ``resume_from``
        restores a checkpoint and continues the *same* experiment: the
        saved configuration, workload, reference counts, and trace digest
        must all match, otherwise :class:`repro.resilience.CheckpointError`
        is raised.  A resumed run finishes with statistics bit-identical to
        the uninterrupted run — the baseline is recomputed deterministically
        either way.

        Every checkpoint argument is validated *up front*: a non-positive
        cadence, a cadence without a path (or vice versa), or a
        ``resume_from`` that is missing, corrupt, or was taken under a
        different configuration/experiment raises :class:`ValueError`
        (:class:`~repro.resilience.CheckpointError` is a subclass) before
        any simulation work starts — never deep inside the run.

        ``checkpoint_hook`` (requires ``checkpoint_path``) is called with
        no arguments after every checkpoint file lands on disk — the
        fabric uses it to renew work leases and drive deterministic chaos
        injection at exact checkpoint boundaries.
        """
        trace = self._trace()
        checkpointing = (checkpoint_every is not None
                         or checkpoint_path is not None
                         or resume_from is not None)
        resume_payload = None
        if checkpoint_hook is not None and checkpoint_path is None:
            raise ValueError(
                "checkpoint_hook requires checkpoint_path: the hook fires "
                "after each checkpoint write, so there must be one")
        if checkpointing:
            resume_payload = self._validate_checkpoint_args(
                trace, checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path, resume_from=resume_from)
        baseline = self.baseline_result
        if baseline is None:
            baseline = simulate(get_config("baseline"), trace,
                                warmup_refs=self.warmup_refs)
        if checkpointing:
            result = self._run_checkpointed(
                trace, checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                resume_payload=resume_payload,
                checkpoint_hook=checkpoint_hook)
        else:
            result = simulate(self.config, trace,
                              warmup_refs=self.warmup_refs,
                              tracer=self.tracer)
        self.baseline_result = baseline
        self.result = result
        if self._trace_out is not None:
            write_chrome_trace(self.tracer, self._trace_out)
        memory = result.memory
        # nan, not 0.0, when the baseline is broken — matching
        # NormalizedResult so a bad cell cannot pose as "infinitely slow".
        nipc = (result.ipc / baseline.ipc if baseline.ipc
                else float("nan"))
        counter_cache = memory.counter_cache
        pads = memory.stats.pads
        reenc = memory.stats.reencryption
        return ExperimentResult(
            scheme=self.config.name,
            app=self._app_name(),
            refs=self.refs,
            ipc=result.ipc,
            baseline_ipc=baseline.ipc,
            normalized_ipc=nipc,
            overhead=1.0 - nipc,
            cycles=result.cycles,
            instructions=result.instructions,
            l2_misses=result.l2_misses,
            bus_utilization=memory.bus.utilization(result.cycles),
            counter_cache_hit_rate=(
                counter_cache.stats.hit_rate
                if counter_cache is not None else None
            ),
            timely_pad_rate=(
                pads.timely_rate if pads.pad_requests else None
            ),
            page_reencryptions=reenc.page_reencryptions,
            mean_page_reencryption_cycles=(
                reenc.mean_page_cycles if reenc.page_reencryptions else 0.0
            ),
            full_reencryptions=reenc.full_reencryptions,
            meta=ResultMeta(
                kind="run",
                config_fingerprint=config_fingerprint(self.config),
                preset=self.config.name,
            ),
        )

    def _app_name(self) -> str:
        # trace-file workloads canonicalize to "trace-<fingerprint>" so a
        # checkpoint taken under one path resumes under another (and never
        # resumes against a *different* recording at the same path)
        if isinstance(self.workload, str):
            return canonical_workload_id(self.workload)
        return getattr(self.workload, "name", "custom-trace")

    def _checkpoint_meta(self, trace) -> dict:
        from repro.resilience.checkpoint import trace_digest

        return {
            "app": self._app_name(),
            "refs": self.refs,
            "warmup_refs": self.warmup_refs,
            "trace_sha256": trace_digest(trace),
        }

    def _validate_checkpoint_args(self, trace, *,
                                  checkpoint_every: int | None,
                                  checkpoint_path: str | None,
                                  resume_from: str | None) -> dict | None:
        """Reject bad checkpoint arguments before any simulation runs.

        Returns the loaded, compatibility-checked resume payload (or
        ``None`` without ``resume_from``) so the run itself never touches
        the checkpoint file again.  Raises :class:`ValueError` — or its
        subclass :class:`~repro.resilience.CheckpointError` for a corrupt
        or mismatched checkpoint — *before* the baseline simulation, so a
        typo'd path cannot burn minutes of work first.
        """
        import os

        from repro.resilience.checkpoint import (
            CheckpointError,
            load_checkpoint,
            semantic_config_state,
        )

        if self.tracer is not None:
            raise ValueError(
                "checkpoint/resume does not compose with trace recording — "
                "tracer event streams are not checkpointed; run without "
                "trace=")
        if (checkpoint_every is None) != (checkpoint_path is None):
            raise ValueError(
                "checkpoint_every and checkpoint_path go together: one "
                "names the cadence, the other the rolling checkpoint file")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if resume_from is None:
            return None
        if not os.path.isfile(resume_from):
            raise ValueError(
                f"resume_from checkpoint {resume_from!r} does not exist "
                "(or is not a file)")
        payload = load_checkpoint(resume_from, kind="simulation")
        if (semantic_config_state(payload["config"])
                != semantic_config_state(self.config)):
            raise CheckpointError(
                "checkpoint was taken under a different configuration "
                f"({payload['config'].get('name')!r}); construct the "
                "experiment with the identical config to resume")
        meta = self._checkpoint_meta(trace)
        if payload["meta"] != meta:
            raise CheckpointError(
                "checkpoint is from a different experiment "
                f"(saved {payload['meta']}, resuming {meta})")
        return payload

    def _run_checkpointed(self, trace, *, checkpoint_every: int | None,
                          checkpoint_path: str | None,
                          resume_payload: dict | None,
                          checkpoint_hook=None) -> SimResult:
        from repro.resilience.checkpoint import (
            checkpoint_simulation,
            save_checkpoint,
        )

        meta = self._checkpoint_meta(trace)
        processor = Processor(self.config)
        resume_state = None
        if resume_payload is not None:
            processor.load_state(resume_payload["processor"])
            resume_state = LoopState.from_dict(resume_payload["loop"])
        on_checkpoint = None
        if checkpoint_path is not None:
            def on_checkpoint(loop):
                save_checkpoint(checkpoint_path,
                                checkpoint_simulation(processor, loop,
                                                      meta=meta))
                if checkpoint_hook is not None:
                    checkpoint_hook()
        return processor.run(trace, warmup_refs=self.warmup_refs,
                             resume=resume_state,
                             checkpoint_every=checkpoint_every,
                             on_checkpoint=on_checkpoint)


def run(config: SecureMemoryConfig | str, workload: Any = "swim", *,
        refs: int = 60_000, warmup_refs: int | None = None,
        trace: Tracer | str | None = None,
        checkpoint_every: int | None = None,
        checkpoint_path: str | None = None,
        resume_from: str | None = None) -> ExperimentResult:
    """One-shot: build an :class:`Experiment` and run it.

    ``trace`` takes a :class:`~repro.obs.RecordingTracer` (the caller keeps
    the reference and inspects events/misses afterwards) or a file path (a
    Chrome trace is written there when the run completes).  The checkpoint
    keywords pass through to :meth:`Experiment.run` — write a rolling
    checkpoint every N references and/or resume a previous one.
    """
    return Experiment(config, workload, refs=refs,
                      warmup_refs=warmup_refs, trace=trace).run(
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        resume_from=resume_from)


def run_many(cells, *, timeout: float | None = None, retries: int = 1,
             retry_backoff: float = 0.25, progress=None,
             parallelism: int = 1, queue_dir: str | None = None,
             resume: bool = False, heartbeat_interval: float = 0.5,
             lease_ttl: float = 10.0, checkpoint_refs: int = 2000,
             max_worker_restarts: int | None = None):
    """Supervised sweep over many experiments (subprocess isolation).

    A facade over :func:`repro.resilience.run_many` (imported lazily).
    ``cells`` is an iterable of :class:`repro.resilience.SweepCell` or
    equivalent dicts; each runs in its own worker process with an optional
    per-cell wall-clock ``timeout`` and crash/timeout ``retries``.  Returns
    a :class:`repro.resilience.SweepReport` whose ``to_dict()`` marks every
    cell ``ok``/``failed``/``timeout``/``skipped``.

    ``parallelism``/``queue_dir``/``resume`` (and the fabric tuning knobs)
    route the sweep through the crash-tolerant distributed fabric — see
    :func:`repro.resilience.fabric.run_fabric` for the full story.
    """
    from repro.resilience.runner import run_many as _run_many

    return _run_many(cells, timeout=timeout, retries=retries,
                     retry_backoff=retry_backoff, progress=progress,
                     parallelism=parallelism, queue_dir=queue_dir,
                     resume=resume, heartbeat_interval=heartbeat_interval,
                     lease_ttl=lease_ttl, checkpoint_refs=checkpoint_refs,
                     max_worker_restarts=max_worker_restarts)


@dataclass
class ProfileResult(ResultBase):
    """Outcome of a traced, attribution-checked run."""

    run: ExperimentResult
    attribution: AttributionReport
    tracer: RecordingTracer
    tolerance: float
    trace_path: str | None = None
    csv_path: str | None = None
    metrics: dict[str, Any] = field(default_factory=dict)
    meta: ResultMeta | None = None

    @property
    def result(self) -> ExperimentResult:
        """Deprecated alias of :attr:`run` (pre-ResultBase field name)."""
        warnings.warn(
            "ProfileResult.result is deprecated; use ProfileResult.run",
            DeprecationWarning, stacklevel=2)
        return self.run

    @property
    def ok(self) -> bool:
        """Whether every miss's attribution summed within tolerance."""
        return self.attribution.max_residual_fraction <= self.tolerance

    def to_dict(self) -> dict[str, Any]:
        return {
            "run": self.run.to_dict(),
            "attribution": self.attribution.to_dict(),
            "events": len(self.tracer.events),
            "misses": len(self.tracer.misses),
            "tolerance": self.tolerance,
            "ok": self.ok,
            "trace_path": self.trace_path,
            "csv_path": self.csv_path,
            "meta": self.meta_dict(),
        }


def profile(config: SecureMemoryConfig | str, workload: Any = "swim", *,
            refs: int = 60_000, warmup_refs: int | None = None,
            tolerance: float = 0.01, trace_out: str | None = None,
            csv_out: str | None = None) -> ProfileResult:
    """Run one traced experiment and decompose every miss's latency.

    The simulation runs under a strict :class:`~repro.obs.RecordingTracer`
    (each miss's component breakdown is asserted against its observed
    ``auth_done - issue`` as it is recorded), then the per-component
    attribution report is built over all misses.  Optional exports:
    ``trace_out`` (Chrome/Perfetto JSON) and ``csv_out`` (flat CSV).
    """
    tracer = RecordingTracer(strict=True, tolerance=tolerance)
    experiment = Experiment(config, workload, refs=refs,
                            warmup_refs=warmup_refs, trace=tracer)
    result = experiment.run()
    report = build_report(tracer.misses, tolerance=tolerance)
    if trace_out is not None:
        write_chrome_trace(tracer, trace_out)
    if csv_out is not None:
        write_csv(tracer, csv_out)
    snapshot = experiment.result.memory.metrics.snapshot()
    metrics = {
        name: (None if isinstance(value, float) and math.isnan(value)
               else value)
        for name, value in snapshot.items()
        if isinstance(value, (int, float))
    }
    return ProfileResult(run=result, attribution=report, tracer=tracer,
                         tolerance=tolerance, trace_path=trace_out,
                         csv_path=csv_out, metrics=metrics,
                         meta=ResultMeta(
                             kind="profile",
                             config_fingerprint=config_fingerprint(
                                 experiment.config),
                             preset=experiment.config.name,
                         ))


@dataclass
class BenchResult(ResultBase):
    """Outcome of the perf-regression bench suite.

    ``report`` is the schema-versioned dict ``python -m repro bench --json``
    prints (see :data:`repro.bench.BENCH_SCHEMA`); diff two with
    :func:`repro.bench.compare_reports`.
    """

    report: dict[str, Any]
    meta: ResultMeta | None = None

    @property
    def ok(self) -> bool:
        """True when the report passed its own validation (it always has
        by the time :func:`bench` returns — run_bench validates)."""
        return bool(self.report)

    def __getitem__(self, key: str) -> Any:
        """Deprecated dict-style access from when ``bench()`` returned the
        raw report; use :attr:`report` instead."""
        warnings.warn(
            "indexing BenchResult is deprecated; use BenchResult.report",
            DeprecationWarning, stacklevel=2)
        return self.report[key]

    def to_dict(self) -> dict[str, Any]:
        return {"report": self.report, "meta": self.meta_dict()}


def bench(**kwargs: Any) -> BenchResult:
    """Run the perf-regression bench suite.

    A facade over :func:`repro.bench.run_bench` (imported lazily).  Returns
    a :class:`BenchResult` whose ``report`` holds the schema-versioned
    report dict.
    """
    from repro.bench import run_bench

    report = run_bench(**kwargs)
    return BenchResult(report=report,
                       meta=ResultMeta(kind="bench",
                                       seed=kwargs.get("seed")))


def fuzz(campaigns: int = 20, seed: int = 0, **kwargs: Any):
    """Run the adversarial-memory fault-injection harness.

    A facade over :func:`repro.testing.run_fuzz` (imported lazily so plain
    simulation work never pays for the harness).  Returns a
    :class:`repro.testing.FuzzReport`; ``report.ok`` is the pass/fail
    verdict and ``report.to_dict()`` the JSON the CLI emits.
    """
    from repro.testing import run_fuzz

    report = run_fuzz(campaigns, seed, **kwargs)
    report.meta = ResultMeta(kind="fuzz", seed=seed,
                             preset=",".join(report.presets))
    return report


def loadgen(host: str, port: int, **kwargs: Any):
    """Drive the seeded load generator against a running serve instance.

    A facade over :func:`repro.serve.run_loadgen` (imported lazily so the
    service stack is only paid for when used).  Returns a
    :class:`repro.serve.LoadgenResult` with requests/s and p50/p99 latency.
    """
    from repro.serve import run_loadgen

    return run_loadgen(host, port, **kwargs)
