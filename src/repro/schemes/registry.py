"""Declarative scheme registry: components, compositions, resolution.

A *component* is one independently-selectable mechanism of a secure-memory
scheme — a data codec (plaintext / AES-direct / AES-CTR / secret shares), a
counter organization, a MAC scheme, or an integrity (anti-replay) strategy.
A *composition* names one component of each kind plus optional field
overrides; resolving a composition produces the same frozen
:class:`~repro.core.config.SecureMemoryConfig` the legacy preset
constructors build, so every consumer of ``PRESETS`` keeps working
unchanged.

The capability contract is deliberately small: each component *provides* a
set of capability strings and may *require* capabilities that some other
component of the composition must provide.  ``register_scheme`` checks the
contract at registration time, so an impossible composition (e.g. counter
mode encryption without a counter organization) fails loudly before any
system is built from it.

Everything here is frozen and hashable — a resolved scheme cannot be
mutated in place, and re-registering a taken name raises ``ValueError`` —
which closes the latent preset-mutability hazard of the hand-wired preset
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import get_close_matches
from typing import Any

#: component kinds, in the order compositions resolve them
KINDS = ("codec", "counter", "mac", "integrity")


@dataclass(frozen=True)
class ComponentSpec:
    """One registered mechanism with its capability contract.

    ``config_updates`` is the tuple of ``(field, value)`` pairs the
    component contributes to the resolved
    :class:`~repro.core.config.SecureMemoryConfig`; tuples (not dicts) keep
    the spec hashable.
    """

    kind: str
    name: str
    summary: str
    provides: tuple[str, ...] = ()
    requires: tuple[str, ...] = ()
    config_updates: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"component kind must be one of {KINDS}, got {self.kind!r}")

    def updates(self) -> dict[str, Any]:
        """The component's config-field contribution as a fresh dict."""
        return dict(self.config_updates)


@dataclass(frozen=True)
class SchemeComposition:
    """A named scheme: one component of each kind plus field overrides."""

    name: str
    summary: str
    codec: str
    counter: str
    mac: str
    integrity: str
    overrides: tuple[tuple[str, Any], ...] = ()

    def component_names(self) -> tuple[tuple[str, str], ...]:
        """``(kind, component-name)`` pairs in resolution order."""
        return tuple((kind, getattr(self, kind)) for kind in KINDS)


class SchemeRegistry:
    """Holds component specs and scheme compositions; names are final."""

    def __init__(self):
        self._components: dict[tuple[str, str], ComponentSpec] = {}
        self._schemes: dict[str, SchemeComposition] = {}

    # -- components --------------------------------------------------------

    def register_component(self, spec: ComponentSpec) -> ComponentSpec:
        key = (spec.kind, spec.name)
        if key in self._components:
            raise ValueError(
                f"component {spec.kind}/{spec.name!r} is already registered")
        self._components[key] = spec
        return spec

    def component(self, kind: str, name: str) -> ComponentSpec:
        try:
            return self._components[(kind, name)]
        except KeyError:
            known = sorted(n for k, n in self._components if k == kind)
            raise KeyError(
                f"unknown {kind} component {name!r}; known: {known}"
            ) from None

    def components(self, kind: str | None = None) -> tuple[ComponentSpec, ...]:
        return tuple(spec for (k, _), spec in self._components.items()
                     if kind is None or k == kind)

    # -- schemes -----------------------------------------------------------

    def register_scheme(self, comp: SchemeComposition) -> SchemeComposition:
        if comp.name in self._schemes:
            raise ValueError(
                f"scheme {comp.name!r} is already registered")
        specs = [self.component(kind, name)
                 for kind, name in comp.component_names()]
        provided = {cap for spec in specs for cap in spec.provides}
        for spec in specs:
            missing = [cap for cap in spec.requires if cap not in provided]
            if missing:
                raise ValueError(
                    f"scheme {comp.name!r}: component {spec.kind}/"
                    f"{spec.name!r} requires {missing} but the composition "
                    f"only provides {sorted(provided)}")
        self._schemes[comp.name] = comp
        return comp

    def scheme(self, name: str) -> SchemeComposition:
        try:
            return self._schemes[name]
        except KeyError:
            hint = get_close_matches(name, self._schemes, n=1)
            suggestion = f" — did you mean {hint[0]!r}?" if hint else ""
            raise KeyError(
                f"unknown scheme {name!r}{suggestion} "
                f"(known: {', '.join(self._schemes)})") from None

    def scheme_names(self) -> tuple[str, ...]:
        return tuple(self._schemes)

    def capabilities(self, name: str) -> tuple[str, ...]:
        """Sorted union of every capability the scheme's components provide."""
        comp = self.scheme(name)
        return tuple(sorted({
            cap
            for kind, cname in comp.component_names()
            for cap in self.component(kind, cname).provides
        }))

    def resolve(self, name: str):
        """Build the scheme's frozen SecureMemoryConfig from its components.

        Field updates apply in component order (codec, counter, mac,
        integrity) with the composition's ``overrides`` last, mirroring how
        the legacy preset constructors layered their keyword arguments.
        """
        from repro.core.config import SecureMemoryConfig

        comp = self.scheme(name)
        updates: dict[str, Any] = {}
        for kind, cname in comp.component_names():
            updates.update(self.component(kind, cname).updates())
        updates.update(dict(comp.overrides))
        return SecureMemoryConfig(name=comp.name, **updates)
