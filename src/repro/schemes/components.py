"""Built-in components: the mechanisms the paper's presets compose.

Each registration carries exactly the config-field deltas the legacy
preset constructors passed to ``_cfg`` — resolving a legacy composition is
therefore field-identical to calling its constructor, which is what keeps
the fig4/fig9 numbers bit-stable across the registry refactor.

The ``tree`` integrity component intentionally contributes *no* config
delta: ``IntegrityMode.AUTO`` already resolves to the Merkle tree, and
keeping the resolved config equal to the constructors' output matters more
than spelling the default out.  ``secddr`` is the one integrity component
that actually switches the backend.
"""

from __future__ import annotations

from repro.core.config import (
    AuthMode,
    CounterOrg,
    EncryptionMode,
    IntegrityMode,
)
from repro.schemes.registry import ComponentSpec, SchemeRegistry


def register_builtin_components(registry: SchemeRegistry) -> None:
    """Register every mechanism the built-in compositions draw from."""
    for spec in BUILTIN_COMPONENTS:
        registry.register_component(spec)


BUILTIN_COMPONENTS = (
    # -- data codecs -------------------------------------------------------
    ComponentSpec(
        kind="codec", name="plaintext",
        summary="no data transformation; DRAM stores plaintext",
    ),
    ComponentSpec(
        kind="codec", name="aes-direct",
        summary="direct AES block encryption (decrypt on the critical path)",
        provides=("confidentiality",),
        config_updates=(("encryption", EncryptionMode.DIRECT),),
    ),
    ComponentSpec(
        kind="codec", name="aes-ctr",
        summary="counter-mode AES pads overlapped with the memory fetch",
        provides=("confidentiality",),
        requires=("counters",),
        config_updates=(("encryption", EncryptionMode.COUNTER),),
    ),
    ComponentSpec(
        kind="codec", name="secret-shares",
        summary="k-of-n Shamir secret sharing over GF(256) per block",
        provides=("confidentiality", "scattering"),
        requires=("counters", "authentication"),
        config_updates=(("encryption", EncryptionMode.SHARES),),
    ),
    # -- counter organizations ---------------------------------------------
    ComponentSpec(
        kind="counter", name="none",
        summary="no per-block counters",
    ),
    ComponentSpec(
        kind="counter", name="split",
        summary="split major/minor counters (the paper's contribution)",
        provides=("counters",),
        config_updates=(("counter_org", CounterOrg.SPLIT),),
    ),
    ComponentSpec(
        kind="counter", name="mono8",
        summary="8-bit monolithic per-block counters",
        provides=("counters",),
        config_updates=(("counter_org", CounterOrg.MONO8),),
    ),
    ComponentSpec(
        kind="counter", name="mono16",
        summary="16-bit monolithic per-block counters",
        provides=("counters",),
        config_updates=(("counter_org", CounterOrg.MONO16),),
    ),
    ComponentSpec(
        kind="counter", name="mono32",
        summary="32-bit monolithic per-block counters",
        provides=("counters",),
        config_updates=(("counter_org", CounterOrg.MONO32),),
    ),
    ComponentSpec(
        kind="counter", name="mono64",
        summary="64-bit monolithic per-block counters",
        provides=("counters",),
        config_updates=(("counter_org", CounterOrg.MONO64),),
    ),
    ComponentSpec(
        kind="counter", name="prediction",
        summary="counter prediction (speculate instead of caching)",
        provides=("counters",),
        config_updates=(("counter_org", CounterOrg.PREDICTION),),
    ),
    # -- MAC schemes -------------------------------------------------------
    ComponentSpec(
        kind="mac", name="none",
        summary="no per-block authentication codes",
    ),
    ComponentSpec(
        kind="mac", name="gcm",
        summary="GCM MACs sharing the AES engine; pads overlap the fetch",
        provides=("authentication",),
        requires=("counters",),
        config_updates=(("auth", AuthMode.GCM),),
    ),
    ComponentSpec(
        kind="mac", name="sha1",
        summary="HMAC-SHA1 MACs (prior-work baseline, serialized)",
        provides=("authentication",),
        config_updates=(("auth", AuthMode.SHA1),),
    ),
    # -- integrity (anti-replay) strategies --------------------------------
    ComponentSpec(
        kind="integrity", name="none",
        summary="MACs (if any) are unanchored; replay is out of scope",
    ),
    ComponentSpec(
        kind="integrity", name="tree",
        summary="Bonsai-style Merkle tree over data+counter leaf MACs",
        provides=("replay-protection",),
        requires=("authentication",),
        # AUTO already resolves to the tree; no delta keeps legacy configs
        # field-identical to their constructors.
    ),
    ComponentSpec(
        kind="integrity", name="secddr",
        summary="SecDDR-style on-chip MAC-of-MACs; O(1) verify, no walk",
        provides=("replay-protection", "constant-time-verify"),
        requires=("authentication",),
        config_updates=(("integrity", IntegrityMode.SECDDR),),
    ),
)
