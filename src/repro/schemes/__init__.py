"""Pluggable scheme registry: components, compositions, and resolution.

``PRESETS`` (in :mod:`repro.core.config`) and the public API's
``list_schemes``/``describe_scheme`` are views over :data:`REGISTRY`.  To
add a backend, register its mechanism as a :class:`ComponentSpec` and name
it from a :class:`SchemeComposition` — see DESIGN.md §14 for a worked
example.
"""

from repro.schemes.compositions import (
    BUILTIN_SCHEMES,
    REGISTRY,
    build_registry,
    preset_configs,
)
from repro.schemes.registry import (
    KINDS,
    ComponentSpec,
    SchemeComposition,
    SchemeRegistry,
)

__all__ = [
    "BUILTIN_SCHEMES",
    "ComponentSpec",
    "KINDS",
    "REGISTRY",
    "SchemeComposition",
    "SchemeRegistry",
    "build_registry",
    "preset_configs",
]
