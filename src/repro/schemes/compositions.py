"""Built-in scheme compositions: the 16 legacy presets plus two backends.

``PRESETS`` in :mod:`repro.core.config` is a thin view over this table —
the mapping is built lazily on first access and resolves each composition
through the global registry.  Order matters: consumers display presets in
registration order, and downstream baselines key on the legacy names
coming first.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

from repro.schemes.components import register_builtin_components
from repro.schemes.registry import SchemeComposition, SchemeRegistry

BUILTIN_SCHEMES = (
    SchemeComposition(
        name="baseline", summary="no protection (IPC reference)",
        codec="plaintext", counter="none", mac="none", integrity="none"),
    SchemeComposition(
        name="split", summary="split-counter encryption, no authentication",
        codec="aes-ctr", counter="split", mac="none", integrity="none"),
    SchemeComposition(
        name="mono8b", summary="8-bit monolithic counter encryption",
        codec="aes-ctr", counter="mono8", mac="none", integrity="none"),
    SchemeComposition(
        name="mono16b", summary="16-bit monolithic counter encryption",
        codec="aes-ctr", counter="mono16", mac="none", integrity="none"),
    SchemeComposition(
        name="mono32b", summary="32-bit monolithic counter encryption",
        codec="aes-ctr", counter="mono32", mac="none", integrity="none"),
    SchemeComposition(
        name="mono64b", summary="64-bit monolithic counter encryption",
        codec="aes-ctr", counter="mono64", mac="none", integrity="none"),
    SchemeComposition(
        name="direct", summary="direct AES encryption (XOM-style latency)",
        codec="aes-direct", counter="none", mac="none", integrity="none"),
    SchemeComposition(
        name="pred", summary="counter prediction, one AES engine",
        codec="aes-ctr", counter="prediction", mac="none", integrity="none"),
    SchemeComposition(
        name="pred2eng", summary="counter prediction, two AES engines",
        codec="aes-ctr", counter="prediction", mac="none", integrity="none",
        overrides=(("aes_engines", 2),)),
    SchemeComposition(
        name="gcm-auth", summary="GCM authentication only (no encryption)",
        codec="plaintext", counter="split", mac="gcm", integrity="tree"),
    SchemeComposition(
        name="sha-auth-320", summary="SHA-1 authentication only",
        codec="plaintext", counter="none", mac="sha1", integrity="tree",
        overrides=(("sha_latency", 320.0),)),
    SchemeComposition(
        name="split+gcm", summary="the paper's default: split + GCM + tree",
        codec="aes-ctr", counter="split", mac="gcm", integrity="tree"),
    SchemeComposition(
        name="mono+gcm", summary="monolithic counters + GCM + tree",
        codec="aes-ctr", counter="mono64", mac="gcm", integrity="tree"),
    SchemeComposition(
        name="split+sha", summary="split counters + SHA-1 MACs + tree",
        codec="aes-ctr", counter="split", mac="sha1", integrity="tree"),
    SchemeComposition(
        name="mono+sha", summary="monolithic counters + SHA-1 MACs + tree",
        codec="aes-ctr", counter="mono64", mac="sha1", integrity="tree"),
    SchemeComposition(
        name="xom+sha", summary="direct AES + SHA-1 MACs (XOM-like)",
        codec="aes-direct", counter="none", mac="sha1", integrity="tree"),
    # -- new backends ------------------------------------------------------
    SchemeComposition(
        name="secddr",
        summary="SecDDR-style: split + GCM, on-chip MAC-of-MACs replay "
                "protection instead of a Merkle walk",
        codec="aes-ctr", counter="split", mac="gcm", integrity="secddr"),
    SchemeComposition(
        name="scattered",
        summary="Secure Scattered Memory: 2-of-3 secret-shared blocks with "
                "share-level MACs under the Merkle tree",
        codec="secret-shares", counter="split", mac="gcm", integrity="tree",
        overrides=(("shares_k", 2), ("shares_n", 3))),
)


def build_registry() -> SchemeRegistry:
    """A fresh registry holding every built-in component and scheme."""
    registry = SchemeRegistry()
    register_builtin_components(registry)
    for comp in BUILTIN_SCHEMES:
        registry.register_scheme(comp)
    return registry


#: the process-wide registry the public API and ``PRESETS`` resolve against
REGISTRY = build_registry()


def preset_configs() -> Mapping[str, "object"]:
    """Resolve every registered scheme into the read-only preset mapping."""
    return MappingProxyType({
        name: REGISTRY.resolve(name) for name in REGISTRY.scheme_names()
    })
