"""Counter-overflow extrapolation — the arithmetic behind Table 2.

The paper measures each application's fastest-growing counter over a
1-billion-instruction window and extrapolates the interval between
entire-memory re-encryptions for each counter width.  The reproduction's
windows are shorter, so the same rate-based extrapolation is used: the
growth *rate* (increments per simulated second at the 5 GHz clock) is
measured, and the time to overflow an n-bit counter is ``2^n / rate``.

The module also computes the section-4.2 re-encryption *work* comparison
(split counters do ~0.3% of the work of 8-bit monolithic counters) from the
final counter-value distribution of a run.
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_DAY = 86_400.0
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY


@dataclass(frozen=True)
class OverflowEstimate:
    """Estimated time to counter overflow for one (app, width) pair."""

    counter_bits: int
    growth_rate_per_s: float
    seconds_to_overflow: float

    @property
    def human(self) -> str:
        s = self.seconds_to_overflow
        if s == float("inf"):
            return "never"
        if s < 1:
            return f"{s * 1000:.0f} ms"
        if s < 120:
            return f"{s:.1f} s"
        if s < 2 * 3600:
            return f"{s / SECONDS_PER_MINUTE:.0f} min"
        if s < 2 * SECONDS_PER_DAY:
            return f"{s / 3600:.0f} h"
        if s < 2 * SECONDS_PER_YEAR:
            return f"{s / SECONDS_PER_DAY:.0f} days"
        if s < 2000 * SECONDS_PER_YEAR:
            return f"{s / SECONDS_PER_YEAR:.0f} years"
        return f"{s / (1000 * SECONDS_PER_YEAR):,.0f} millennia"


def estimate_overflow(counter_bits: int, fastest_count: int,
                      simulated_seconds: float) -> OverflowEstimate:
    """Extrapolate overflow interval from a measured growth count."""
    if simulated_seconds <= 0:
        raise ValueError("simulated time must be positive")
    rate = fastest_count / simulated_seconds
    if rate == 0:
        return OverflowEstimate(counter_bits, 0.0, float("inf"))
    return OverflowEstimate(
        counter_bits=counter_bits,
        growth_rate_per_s=rate,
        seconds_to_overflow=(1 << counter_bits) / rate,
    )


def reencryption_work_ratio(block_counters: dict[int, int],
                            minor_bits: int, mono_bits: int,
                            blocks_per_page: int, page_of,
                            total_memory_blocks: int) -> float:
    """Split-vs-monolithic re-encryption work, from counter distributions.

    Given the per-block write-back counts of a run, compute
    ``split_work / mono_work`` where

    * mono work: each wrap of the fastest counter (every ``2^mono_bits``
      increments) re-encrypts the whole memory;
    * split work: each page re-encrypts every ``2^minor_bits`` increments
      of *its own* fastest counter, and re-encrypts only its own blocks.

    This is the better-than-worst-case effect of section 4.2: most pages
    advance far slower than the globally fastest page.
    """
    if not block_counters:
        return 0.0
    fastest = max(block_counters.values())
    mono_overflows = fastest / (1 << mono_bits)
    mono_work = mono_overflows * total_memory_blocks

    page_fastest: dict[int, int] = {}
    for block, count in block_counters.items():
        page = page_of(block)
        if count > page_fastest.get(page, 0):
            page_fastest[page] = count
    split_work = sum(
        (count / (1 << minor_bits)) * blocks_per_page
        for count in page_fastest.values()
    )
    if mono_work == 0:
        return 0.0
    return split_work / mono_work
