"""Result aggregation and table rendering for the benchmark suite."""

from repro.analysis.overflow import (
    OverflowEstimate,
    estimate_overflow,
    reencryption_work_ratio,
)
from repro.analysis.tables import FigureTable, results_path

__all__ = [
    "FigureTable",
    "OverflowEstimate",
    "estimate_overflow",
    "reencryption_work_ratio",
    "results_path",
]
