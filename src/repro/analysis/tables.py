"""Formatting helpers that render benchmark results as paper-style tables.

Every benchmark in ``benchmarks/`` produces one of these tables and both
prints it and appends it to ``benchmarks/results/``.  The formats mirror
the paper's figures: applications as columns (memory-bound ones
individually, plus the all-21 average), schemes as rows.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass
class FigureTable:
    """A labelled grid of scheme x application values."""

    title: str
    row_labels: list[str] = field(default_factory=list)
    col_labels: list[str] = field(default_factory=list)
    values: dict[tuple[str, str], float] = field(default_factory=dict)
    value_format: str = "{:.3f}"
    notes: list[str] = field(default_factory=list)

    def set(self, row: str, col: str, value: float) -> None:
        if row not in self.row_labels:
            self.row_labels.append(row)
        if col not in self.col_labels:
            self.col_labels.append(col)
        self.values[(row, col)] = value

    def get(self, row: str, col: str) -> float | None:
        return self.values.get((row, col))

    def row(self, row: str) -> list[float]:
        return [self.values[(row, c)] for c in self.col_labels
                if (row, c) in self.values]

    def render(self) -> str:
        """Plain-text table in the style of the paper's figures."""
        col_width = max(
            [8] + [len(c) for c in self.col_labels]
        ) + 1
        row_width = max([10] + [len(r) for r in self.row_labels]) + 1
        lines = [self.title, "=" * len(self.title)]
        header = " " * row_width + "".join(
            f"{c:>{col_width}}" for c in self.col_labels
        )
        lines.append(header)
        for r in self.row_labels:
            cells = []
            for c in self.col_labels:
                v = self.values.get((r, c))
                cells.append(
                    f"{self.value_format.format(v):>{col_width}}"
                    if v is not None else " " * (col_width - 1) + "-"
                )
            lines.append(f"{r:<{row_width}}" + "".join(cells))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.render() + "\n")

    def print(self) -> None:
        print()
        print(self.render())


def results_path(name: str) -> str:
    """Canonical location for a benchmark's rendered table."""
    root = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "benchmarks",
            "results"),
    )
    return os.path.join(root, name)
