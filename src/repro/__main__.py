"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate --app mcf --scheme split+gcm [--refs N] [--json]`` — run one
  timing simulation and print normalized IPC plus the memory-system
  statistics (``--json`` emits one machine-readable object instead).
* ``schemes [--json]`` — list the named configuration presets.
* ``apps`` — list the SPEC CPU 2000-like workloads.
* ``attack [--no-counter-auth]`` — stage the section-4.3 counter-replay
  attack and report detection.
* ``fuzz [--campaigns N] [--seed S] [--json]`` — run the adversarial-memory
  fault-injection harness over the scheme presets; exits non-zero when any
  fault was missed, any spurious violation appeared, or a differential
  check diverged (see :mod:`repro.testing`).
* ``profile --app mcf --scheme split+gcm [--trace-out t.json] [--csv-out
  t.csv] [--json]`` — run one traced simulation, decompose every L2 miss's
  latency into bus/DRAM/AES/GHASH/tree components, and report the
  per-component totals; exits non-zero if any miss's attribution residual
  exceeds ``--tolerance`` (default 1%).

JSON contract: with ``--json``, stdout carries exactly one JSON document
and nothing else — all progress and notes go to stderr.

The CLI is a thin layer over :mod:`repro.api`; anything it prints is
available programmatically from :class:`repro.api.ExperimentResult`.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import api
from repro.core import SecureMemorySystem, split_gcm_config
from repro.workloads import SPEC_APPS


def _cmd_schemes(args) -> int:
    if args.json:
        print(json.dumps({
            name: {
                "encryption": config.encryption.value,
                "counters": config.counter_org.value,
                "auth": config.auth.value,
                "mac_bits": config.mac_bits,
            }
            for name, config in (
                (n, api.get_config(n)) for n in api.list_configs()
            )
        }, indent=2))
        return 0
    for name in api.list_configs():
        config = api.get_config(name)
        print(f"{name:<14} encryption={config.encryption.value:<8} "
              f"counters={config.counter_org.value:<10} "
              f"auth={config.auth.value}")
    return 0


def _cmd_apps(_args) -> int:
    print(" ".join(SPEC_APPS))
    return 0


def _cmd_simulate(args) -> int:
    try:
        config = api.get_config(args.scheme)
    except KeyError as exc:
        print(f"unknown scheme {args.scheme!r}; see `python -m repro "
              f"schemes` ({exc.args[0]})", file=sys.stderr)
        return 2
    result = api.run(config, args.app, refs=args.refs)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(f"app={args.app} scheme={args.scheme} refs={args.refs}")
    print(f"  baseline IPC        : {result.baseline_ipc:.3f}")
    print(f"  scheme IPC          : {result.ipc:.3f}")
    print(f"  normalized IPC      : {result.normalized_ipc:.3f}  "
          f"(overhead {result.overhead:.1%})")
    print(f"  L2 misses           : {result.l2_misses}")
    print(f"  bus utilization     : {result.bus_utilization:.0%}")
    if result.counter_cache_hit_rate is not None:
        print(f"  counter-cache hits  : {result.counter_cache_hit_rate:.1%}")
    if result.timely_pad_rate is not None:
        print(f"  timely pads         : {result.timely_pad_rate:.1%}")
    if result.page_reencryptions:
        print(f"  page re-encryptions : {result.page_reencryptions} "
              f"(mean {result.mean_page_reencryption_cycles:,.0f} cycles)")
    return 0


def _cmd_attack(args) -> int:
    from repro.attacks import counter_replay_attack

    config = split_gcm_config(
        counter_cache_size=64, counter_cache_assoc=1,
        authenticate_counters=not args.no_counter_auth,
    )
    system = SecureMemorySystem(config, protected_bytes=512 * 1024,
                                l2_size=4 * 1024, l2_assoc=2)
    report = counter_replay_attack(system, 0, b"\xaa" * 64, b"\x55" * 64,
                                   scratch_base=128 * 1024)
    print(report)
    return 0 if report.defended else 1


def _cmd_fuzz(args) -> int:
    from repro.testing import format_report, run_fuzz

    try:
        report = run_fuzz(
            campaigns=args.campaigns, seed=args.seed,
            presets=args.preset or None, weaken=args.weaken,
            num_ops=args.ops, shrink=not args.no_shrink,
            mac_bits=args.mac_bits,
        )
    except KeyError as exc:
        print(f"{exc.args[0]}; see `python -m repro schemes`",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(format_report(report))
    return 0 if report.ok else 1


def _cmd_profile(args) -> int:
    from repro.obs import AttributionError

    try:
        config = api.get_config(args.scheme)
    except KeyError as exc:
        print(f"unknown scheme {args.scheme!r}; see `python -m repro "
              f"schemes` ({exc.args[0]})", file=sys.stderr)
        return 2
    try:
        profiled = api.profile(
            config, args.app, refs=args.refs, tolerance=args.tolerance,
            trace_out=args.trace_out, csv_out=args.csv_out,
        )
    except AttributionError as exc:
        # Strict recording already failed a miss mid-run: the breakdown
        # did not sum to the observed latency.
        print(f"attribution identity violated: {exc}", file=sys.stderr)
        return 1
    report = profiled.attribution
    if args.trace_out:
        print(f"wrote Chrome trace to {args.trace_out}", file=sys.stderr)
    if args.csv_out:
        print(f"wrote CSV to {args.csv_out}", file=sys.stderr)
    if args.json:
        print(json.dumps(profiled.to_dict(), indent=2))
        return 0 if profiled.ok else 1
    result = profiled.result
    print(f"app={args.app} scheme={args.scheme} refs={args.refs}")
    print(f"  normalized IPC      : {result.normalized_ipc:.3f}")
    print(f"  misses attributed   : {report.misses}")
    print(f"  mean miss latency   : {report.mean_latency:,.1f} cycles")
    print(f"  max miss latency    : {report.max_latency:,.1f} cycles")
    print(f"  max residual        : {report.max_residual_fraction:.2%} "
          f"(tolerance {profiled.tolerance:.0%})")
    for component, fraction in sorted(report.fractions().items(),
                                      key=lambda kv: -kv[1]):
        if report.components.get(component):
            print(f"    {component:<13}: {fraction:7.1%}  "
                  f"({report.components[component]:,.0f} cycles)")
    return 0 if profiled.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Split-counter memory encryption + GCM authentication "
                    "(ISCA 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    schemes = sub.add_parser("schemes", help="list configuration presets")
    schemes.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON object")
    sub.add_parser("apps", help="list workloads")
    sim = sub.add_parser("simulate", help="run one timing simulation")
    sim.add_argument("--app", default="swim", choices=SPEC_APPS)
    sim.add_argument("--scheme", default="split+gcm")
    sim.add_argument("--refs", type=int, default=60_000)
    sim.add_argument("--json", action="store_true",
                     help="emit one machine-readable JSON object")
    atk = sub.add_parser("attack", help="stage the counter-replay attack")
    atk.add_argument("--no-counter-auth", action="store_true",
                     help="disable counter authentication (the 4.3 flaw)")
    fuzz = sub.add_parser(
        "fuzz", help="run the adversarial-memory fault-injection harness")
    fuzz.add_argument("--campaigns", type=int, default=20,
                      help="seeded fault campaigns per preset (default 20)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="master seed; a run replays bit-for-bit from it")
    fuzz.add_argument("--preset", action="append", metavar="NAME",
                      help="restrict to a preset (repeatable; default: all)")
    fuzz.add_argument("--mac-bits", type=int, default=None,
                      choices=(32, 64, 128),
                      help="override the MAC truncation width")
    fuzz.add_argument("--ops", type=int, default=28,
                      help="operations per schedule (default 28)")
    fuzz.add_argument("--weaken", choices=("no-tree",), default=None,
                      help="deliberately sabotage every system under test "
                           "(harness self-check: faults must be missed)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip minimizing failing schedules")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the machine-readable report")
    prof = sub.add_parser(
        "profile", help="traced simulation with per-miss cycle attribution")
    prof.add_argument("--app", default="swim", choices=SPEC_APPS)
    prof.add_argument("--scheme", default="split+gcm")
    prof.add_argument("--refs", type=int, default=60_000)
    prof.add_argument("--tolerance", type=float, default=0.01,
                      help="max per-miss attribution residual (default 1%%)")
    prof.add_argument("--trace-out", metavar="PATH",
                      help="write a Chrome/Perfetto trace JSON here")
    prof.add_argument("--csv-out", metavar="PATH",
                      help="write the flat CSV event dump here")
    prof.add_argument("--json", action="store_true",
                      help="emit one machine-readable JSON object")
    args = parser.parse_args(argv)
    return {"schemes": _cmd_schemes, "apps": _cmd_apps,
            "simulate": _cmd_simulate, "attack": _cmd_attack,
            "fuzz": _cmd_fuzz, "profile": _cmd_profile}[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
