"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate --app mcf --scheme split+gcm [--refs N] [--json]`` — run one
  timing simulation and print normalized IPC plus the memory-system
  statistics (``--json`` emits one machine-readable object instead).
* ``schemes [--json]`` — list the named configuration presets.
* ``apps`` — list the SPEC CPU 2000-like workloads and the scenario
  library (database/page-cache, GC, ML-inference patterns).
* ``trace record --workload W --out T.rtrc [--refs N] [--seed S]`` /
  ``trace replay T.rtrc [--scheme S] [--refs N]`` / ``trace info T.rtrc``
  — record any generator workload into the compact mmap-able ``.rtrc``
  container, replay a recording through the full simulator (bit-identical
  to the live generator), or validate and describe a trace file.
  Anywhere a workload is named (``simulate``, ``profile``, ``sweep``,
  ``trace replay``), a recorded trace can stand in via ``trace:<path>``
  or a plain ``*.rtrc`` path.
* ``attack [--no-counter-auth]`` — stage the section-4.3 counter-replay
  attack and report detection.
* ``fuzz [--campaigns N] [--seed S] [--recover POLICY] [--timeout SEC]
  [--json]`` — run the adversarial-memory fault-injection harness over the
  scheme presets; ``--recover`` enables integrity-violation recovery on
  every system under test (transient glitches must heal, persistent
  tampers must still end loudly).  Exit codes: 0 clean, 1 failures found
  (missed / spurious / unrecovered transient / diverged differential),
  2 usage error, 3 wall-clock timeout hit with no failures so far (the
  report is valid but partial; see :mod:`repro.testing`).
* ``sweep [--scheme S ...] [--app A ...] [--timeout SEC] [--retries N]
  [--json]`` — run the scheme x app cross product under the supervised
  runner: each cell in its own subprocess with a wall-clock budget and
  crash/timeout retries.  Exit codes: 0 all cells ok, 1 any cell failed or
  timed out, 2 usage error, 130 interrupted (SIGINT; the partial report is
  still printed).
* ``profile --app mcf --scheme split+gcm [--trace-out t.json] [--csv-out
  t.csv] [--json]`` — run one traced simulation, decompose every L2 miss's
  latency into bus/DRAM/AES/GHASH/tree components, and report the
  per-component totals; exits non-zero if any miss's attribution residual
  exceeds ``--tolerance`` (default 1%).
* ``bench [--json] [--out PATH] [--baseline PATH] [--tolerance F]
  [--quick]`` — run the seeded perf-regression suite (crypto micros under
  every kernel + deterministic preset simulations + the serve saturation
  sweep) and emit the schema-versioned BENCH report.  ``--out`` also
  writes it to a file (atomically); ``--baseline`` diffs the gate metrics
  against a committed report.  Exit codes: 0 clean, 2 regression gate
  tripped (geo-mean of current/baseline gate-metric ratios below
  ``1 - tolerance``) or usage error.
* ``serve [--host H] [--port P] [--shards N] [--backend inline|process]
  [--scheme S] [--tenant-bytes N] [--queue-depth N]`` — run the
  multi-tenant secure-memory service until SIGINT/SIGTERM.  Prints one
  ``{"event": "listening", "host": ..., "port": ...}`` JSON line on
  stdout once the socket is bound (port 0 picks an ephemeral port).
* ``loadgen --port P [--host H] [--tenants N] [--connections N]
  [--requests N] [--batch N] [--seed S] [--json]`` — drive the seeded
  mixed read/write workload against a running server and report
  requests/s plus p50/p99 latency.  Exit codes: 0 clean, 1 any non-BUSY
  request error.

JSON contract: with ``--json``, stdout carries exactly one JSON document
and nothing else — all progress and notes go to stderr.

The CLI is a thin layer over :mod:`repro.api`; anything it prints is
available programmatically from :class:`repro.api.ExperimentResult`.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import api
from repro.core import SecureMemorySystem, split_gcm_config
from repro.workloads import SCENARIO_APPS, SPEC_APPS, workload_kind


def _cmd_schemes(args) -> int:
    schemes = api.list_schemes()
    if args.json:
        print(json.dumps({info.name: info.to_dict() for info in schemes},
                         indent=2))
        return 0
    for info in schemes:
        counters = info.counters if info.counters is not None else "-"
        print(f"{info.name:<14} encryption={info.encryption:<8} "
              f"counters={counters:<10} "
              f"auth={info.auth:<5} integrity={info.integrity:<7} "
              f"{info.summary}")
    return 0


def _cmd_apps(_args) -> int:
    print(" ".join(SPEC_APPS))
    print("scenarios: " + " ".join(SCENARIO_APPS))
    return 0


def _check_workload(name: str) -> str | None:
    """None if ``name`` resolves (app, scenario, or trace file); else the
    error message to print before exiting 2."""
    try:
        workload_kind(name)
    except ValueError as exc:
        return str(exc)
    return None


def _cmd_simulate(args) -> int:
    try:
        config = api.get_config(args.scheme)
    except KeyError as exc:
        print(f"unknown scheme {args.scheme!r}; see `python -m repro "
              f"schemes` ({exc.args[0]})", file=sys.stderr)
        return 2
    error = _check_workload(args.app)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    result = api.run(config, args.app, refs=args.refs)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(f"app={args.app} scheme={args.scheme} refs={args.refs}")
    print(f"  baseline IPC        : {result.baseline_ipc:.3f}")
    print(f"  scheme IPC          : {result.ipc:.3f}")
    print(f"  normalized IPC      : {result.normalized_ipc:.3f}  "
          f"(overhead {result.overhead:.1%})")
    print(f"  L2 misses           : {result.l2_misses}")
    print(f"  bus utilization     : {result.bus_utilization:.0%}")
    if result.counter_cache_hit_rate is not None:
        print(f"  counter-cache hits  : {result.counter_cache_hit_rate:.1%}")
    if result.timely_pad_rate is not None:
        print(f"  timely pads         : {result.timely_pad_rate:.1%}")
    if result.page_reencryptions:
        print(f"  page re-encryptions : {result.page_reencryptions} "
              f"(mean {result.mean_page_reencryption_cycles:,.0f} cycles)")
    return 0


def _cmd_attack(args) -> int:
    from repro.attacks import counter_replay_attack

    config = split_gcm_config(
        counter_cache_size=64, counter_cache_assoc=1,
        authenticate_counters=not args.no_counter_auth,
    )
    system = SecureMemorySystem(config, protected_bytes=512 * 1024,
                                l2_size=4 * 1024, l2_assoc=2)
    report = counter_replay_attack(system, 0, b"\xaa" * 64, b"\x55" * 64,
                                   scratch_base=128 * 1024)
    print(report)
    return 0 if report.defended else 1


def _cmd_fuzz(args) -> int:
    from repro.testing import format_report

    if args.workload is not None:
        error = _check_workload(args.workload)
        if error is not None:
            print(error, file=sys.stderr)
            return 2
    try:
        report = api.fuzz(
            campaigns=args.campaigns, seed=args.seed,
            presets=args.preset or None, weaken=args.weaken,
            num_ops=args.ops, shrink=not args.no_shrink,
            mac_bits=args.mac_bits, recover=args.recover,
            timeout=args.timeout, workload=args.workload,
        )
    except KeyError as exc:
        print(f"{exc.args[0]}; see `python -m repro schemes`",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(format_report(report))
    if not report.ok:
        return 1
    return 3 if report.timed_out else 0


def _cmd_sweep(args) -> int:
    import dataclasses
    import signal

    from repro.resilience.runner import SweepCell, run_many

    if args.resume and not args.queue_dir:
        print("--resume needs --queue-dir (the queue holds the manifest "
              "and results to resume)", file=sys.stderr)
        return 2
    if args.parallel < 1:
        print(f"--parallel must be >= 1, got {args.parallel}",
              file=sys.stderr)
        return 2
    schemes = args.scheme or ["split+gcm"]
    for name in schemes:
        try:
            api.get_config(name)
        except KeyError as exc:
            print(f"{exc.args[0]}", file=sys.stderr)
            return 2
    apps = args.app or ["swim"]
    for name in apps:
        error = _check_workload(name)
        if error is not None:
            print(error, file=sys.stderr)
            return 2
    cells = [SweepCell(scheme=scheme, app=app, refs=args.refs)
             for scheme in schemes for app in apps]
    for spec in args.inject or ():
        kind, sep, index = spec.partition("@")
        if not sep or not index.lstrip("-").isdigit():
            print(f"--inject wants KIND@INDEX, got {spec!r}",
                  file=sys.stderr)
            return 2
        position = int(index)
        if not 0 <= position < len(cells):
            print(f"--inject index {position} out of range "
                  f"(sweep has {len(cells)} cell(s))", file=sys.stderr)
            return 2
        try:
            cells[position] = dataclasses.replace(cells[position],
                                                  inject=kind)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    def progress(result) -> None:
        print(f"sweep: {result.cell.label} -> {result.status} "
              f"({result.attempts} attempt(s))", file=sys.stderr)

    # SIGTERM drains exactly like Ctrl-C (run_many/run_fabric catch the
    # KeyboardInterrupt, drain workers, and return the partial report) but
    # exits 143 so a supervisor can tell "operator interrupt" from
    # "terminated by the platform".
    sigterm = {"hit": False}

    def _on_sigterm(_signum, _frame) -> None:
        sigterm["hit"] = True
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        report = run_many(cells, timeout=args.timeout, retries=args.retries,
                          retry_backoff=args.retry_backoff,
                          progress=progress, out_path=args.out,
                          parallelism=args.parallel,
                          queue_dir=args.queue_dir, resume=args.resume,
                          heartbeat_interval=args.heartbeat_interval,
                          lease_ttl=args.lease_ttl,
                          checkpoint_refs=args.checkpoint_refs)
    finally:
        signal.signal(signal.SIGTERM, previous)
    if args.out:
        print(f"sweep: report at {args.out} (updated after every cell)",
              file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for cell in report.cells:
            line = (f"  {cell.cell.label:<22} {cell.status:<8} "
                    f"attempts={cell.attempts}")
            if cell.error:
                line += f"  ({cell.error})"
            print(line)
        counts = report.counts()
        summary = ", ".join(f"{counts[key]} {key}" for key in sorted(counts))
        # a --resume run adopts the queue's manifest, so the real cell
        # count is whatever the report came back with, not the CLI args
        print(f"sweep: {len(report.cells)} cell(s): {summary}"
              + ("  [INTERRUPTED]" if report.interrupted else ""))
    if report.interrupted:
        return 143 if sigterm["hit"] else 130
    return 0 if report.ok else 1


def _cmd_profile(args) -> int:
    from repro.obs import AttributionError

    try:
        config = api.get_config(args.scheme)
    except KeyError as exc:
        print(f"unknown scheme {args.scheme!r}; see `python -m repro "
              f"schemes` ({exc.args[0]})", file=sys.stderr)
        return 2
    error = _check_workload(args.app)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    try:
        profiled = api.profile(
            config, args.app, refs=args.refs, tolerance=args.tolerance,
            trace_out=args.trace_out, csv_out=args.csv_out,
        )
    except AttributionError as exc:
        # Strict recording already failed a miss mid-run: the breakdown
        # did not sum to the observed latency.
        print(f"attribution identity violated: {exc}", file=sys.stderr)
        return 1
    report = profiled.attribution
    if args.trace_out:
        print(f"wrote Chrome trace to {args.trace_out}", file=sys.stderr)
    if args.csv_out:
        print(f"wrote CSV to {args.csv_out}", file=sys.stderr)
    if args.json:
        print(json.dumps(profiled.to_dict(), indent=2))
        return 0 if profiled.ok else 1
    result = profiled.run
    print(f"app={args.app} scheme={args.scheme} refs={args.refs}")
    print(f"  normalized IPC      : {result.normalized_ipc:.3f}")
    print(f"  misses attributed   : {report.misses}")
    print(f"  mean miss latency   : {report.mean_latency:,.1f} cycles")
    print(f"  max miss latency    : {report.max_latency:,.1f} cycles")
    print(f"  max residual        : {report.max_residual_fraction:.2%} "
          f"(tolerance {profiled.tolerance:.0%})")
    for component, fraction in sorted(report.fractions().items(),
                                      key=lambda kv: -kv[1]):
        if report.components.get(component):
            print(f"    {component:<13}: {fraction:7.1%}  "
                  f"({report.components[component]:,.0f} cycles)")
    return 0 if profiled.ok else 1


def _cmd_bench(args) -> int:
    from repro.bench import compare_reports, load_report

    def progress(message: str) -> None:
        print(message, file=sys.stderr)

    result = api.bench(seed=args.seed, quick=args.quick,
                       progress=progress)
    report = result.report
    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_report(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot use baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            report["regression_gate"] = compare_reports(
                report, baseline, tolerance=args.tolerance)
        except ValueError as exc:
            print(f"cannot gate against {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2
    if args.out is not None:
        from repro.resilience.checkpoint import atomic_write_json

        atomic_write_json(args.out, report)
        print(f"wrote bench report to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        micro = report["micro"]
        print(f"{report['bench_id']}  (schema {report['schema']}"
              + (", quick)" if report["quick"] else ")"))
        for name, entry in micro.items():
            speed = entry["speedup_vs_scalar"]
            table = speed.get("table", float("nan"))
            vec = speed.get("vector", float("nan"))
            print(f"  {name:<15} {entry['units']:>5} {entry['unit']:<9} "
                  f"table {table:6.1f}x  vector {vec:6.1f}x  (vs scalar)")
        sim = report["sim"]
        print(f"  sim ({sim['app']}, {sim['refs']} refs): "
              f"geomean normalized IPC "
              f"{sim['geomean_normalized_ipc']:.4f}")
        gate = report.get("regression_gate")
        if gate is not None:
            verdict = "ok" if gate["ok"] else "REGRESSION"
            print(f"  gate vs baseline: geomean ratio "
                  f"{gate['geomean_ratio']:.4f} "
                  f"(tolerance {gate['tolerance']:.0%}) -> {verdict}")
    gate = report.get("regression_gate")
    if gate is not None and not gate["ok"]:
        return 2
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, run_server

    try:
        config = ServeConfig(
            host=args.host, port=args.port, scheme=args.scheme,
            num_shards=args.shards, backend=args.backend,
            tenant_bytes=args.tenant_bytes, queue_depth=args.queue_depth,
            batch_max=args.batch_max, l2_size=args.l2_size,
        )
        api.get_config(args.scheme)
    except (KeyError, ValueError) as exc:
        detail = exc.args[0] if exc.args else exc
        print(f"{detail}", file=sys.stderr)
        return 2

    def ready(address) -> None:
        host, port = address
        # one parseable line so scripts (and the CI smoke job) can find
        # an ephemeral port without racing the log
        print(json.dumps({"event": "listening", "host": host,
                          "port": port}), flush=True)
        print(f"serve: {args.shards} shard(s), {args.backend} backend, "
              f"scheme {args.scheme}; Ctrl-C to stop", file=sys.stderr)

    run_server(config, ready=ready)
    print("serve: drained and stopped", file=sys.stderr)
    return 0


def _cmd_loadgen(args) -> int:
    from repro.serve import run_loadgen

    if args.workload is not None:
        error = _check_workload(args.workload)
        if error is not None:
            print(error, file=sys.stderr)
            return 2
    try:
        result = run_loadgen(
            args.host, args.port, tenants=args.tenants,
            connections=args.connections, requests=args.requests,
            batch=args.batch, read_fraction=args.read_fraction,
            footprint_blocks=args.footprint_blocks, seed=args.seed,
            recovery=args.recovery, workload=args.workload,
        )
    except (ConnectionError, OSError) as exc:
        print(f"loadgen: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(f"loadgen: {result.requests} requests "
              f"({result.reads} reads / {result.writes} writes, "
              f"{result.blocks} blocks) over {result.connections} "
              f"connection(s) x {result.tenants} tenant(s)")
        print(f"  throughput : {result.rps:,.1f} req/s "
              f"({result.elapsed_s:.2f} s)")
        print(f"  latency    : p50 {result.p50_ms:.2f} ms   "
              f"p99 {result.p99_ms:.2f} ms")
        print(f"  backpressure: {result.busy_retries} BUSY retries")
        if result.errors:
            print(f"  ERRORS     : {result.errors} "
                  f"(first: {result.error_details[:3]})")
    return 1 if result.errors else 0


def _cmd_trace(args) -> int:
    from repro.workloads import (
        TraceFileError,
        read_header,
        resolve_trace,
        trace_fingerprint,
        write_trace,
    )

    if args.trace_command == "record":
        error = _check_workload(args.workload)
        if error is not None:
            print(error, file=sys.stderr)
            return 2
        trace = resolve_trace(args.workload, args.refs, seed=args.seed)
        write_trace(args.out, trace)
        summary = {
            "out": args.out,
            "workload": args.workload,
            "records": len(trace),
            "fingerprint": trace_fingerprint(args.out),
        }
        if args.json:
            print(json.dumps(summary, indent=2))
        else:
            print(f"recorded {summary['records']} references of "
                  f"{args.workload!r} to {args.out} "
                  f"(fingerprint {summary['fingerprint']})")
        return 0

    if args.trace_command == "info":
        try:
            header = read_header(args.trace)
        except (TraceFileError, OSError) as exc:
            print(f"{exc}", file=sys.stderr)
            return 2
        info = {
            "path": args.trace,
            "version": header["version"],
            "name": header["name"],
            "records": header["records"],
            "fingerprint": header["payload_sha256"][:12],
            "payload_sha256": header["payload_sha256"],
        }
        if args.json:
            print(json.dumps(info, indent=2))
        else:
            print(f"{args.trace}: version {info['version']}, "
                  f"name {info['name']!r}, {info['records']} records, "
                  f"fingerprint {info['fingerprint']}")
        return 0

    # replay: run the recording through the full simulator
    try:
        config = api.get_config(args.scheme)
    except KeyError as exc:
        print(f"unknown scheme {args.scheme!r}; see `python -m repro "
              f"schemes` ({exc.args[0]})", file=sys.stderr)
        return 2
    try:
        refs = args.refs
        if refs is None:
            refs = read_header(args.trace)["records"]
        result = api.run(config, f"trace:{args.trace}", refs=refs)
    except (TraceFileError, OSError, ValueError) as exc:
        print(f"{exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(f"trace={args.trace} scheme={args.scheme} refs={result.refs}")
    print(f"  normalized IPC      : {result.normalized_ipc:.3f}  "
          f"(overhead {result.overhead:.1%})")
    print(f"  L2 misses           : {result.l2_misses}")
    print(f"  bus utilization     : {result.bus_utilization:.0%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Split-counter memory encryption + GCM authentication "
                    "(ISCA 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    schemes = sub.add_parser("schemes", help="list configuration presets")
    schemes.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON object")
    sub.add_parser("apps", help="list workloads")
    sim = sub.add_parser("simulate", help="run one timing simulation")
    sim.add_argument("--app", default="swim",
                     help="SPEC app, scenario name, or recorded trace "
                          "(trace:<path> / *.rtrc); see `apps`")
    sim.add_argument("--scheme", default="split+gcm")
    sim.add_argument("--refs", type=int, default=60_000)
    sim.add_argument("--json", action="store_true",
                     help="emit one machine-readable JSON object")
    atk = sub.add_parser("attack", help="stage the counter-replay attack")
    atk.add_argument("--no-counter-auth", action="store_true",
                     help="disable counter authentication (the 4.3 flaw)")
    fuzz = sub.add_parser(
        "fuzz", help="run the adversarial-memory fault-injection harness")
    fuzz.add_argument("--campaigns", type=int, default=20,
                      help="seeded fault campaigns per preset (default 20)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="master seed; a run replays bit-for-bit from it")
    fuzz.add_argument("--preset", action="append", metavar="NAME",
                      help="restrict to a preset (repeatable; default: all)")
    fuzz.add_argument("--mac-bits", type=int, default=None,
                      choices=(32, 64, 128),
                      help="override the MAC truncation width")
    fuzz.add_argument("--ops", type=int, default=28,
                      help="operations per schedule (default 28)")
    fuzz.add_argument("--weaken", choices=("no-tree",), default=None,
                      help="deliberately sabotage every system under test "
                           "(harness self-check: faults must be missed)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip minimizing failing schedules")
    fuzz.add_argument("--recover", choices=("halt", "quarantine_page"),
                      default=None,
                      help="enable integrity-violation recovery on every "
                           "system under test; rotates transient glitches "
                           "into the fault mix")
    fuzz.add_argument("--timeout", type=float, default=None, metavar="SEC",
                      help="wall-clock budget; stops between scenarios and "
                           "reports partial results (exit 3 if clean)")
    fuzz.add_argument("--workload", default=None, metavar="NAME",
                      help="shape campaign working sets after a named "
                           "workload (SPEC app, scenario, or "
                           "trace:<path>/*.rtrc) instead of stratified")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the machine-readable report")
    sweep = sub.add_parser(
        "sweep", help="supervised multi-experiment sweep (subprocesses)")
    sweep.add_argument("--scheme", action="append", metavar="NAME",
                       help="scheme preset (repeatable; default split+gcm)")
    sweep.add_argument("--app", action="append",
                       help="workload: SPEC app, scenario, or recorded "
                            "trace (trace:<path> / *.rtrc; repeatable; "
                            "default swim)")
    sweep.add_argument("--refs", type=int, default=20_000,
                       help="memory references per cell (default 20000)")
    sweep.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-attempt wall-clock budget per cell")
    sweep.add_argument("--retries", type=int, default=1,
                       help="extra attempts for crashed/timed-out cells "
                            "(default 1)")
    sweep.add_argument("--retry-backoff", type=float, default=0.25,
                       metavar="SEC",
                       help="base retry delay, doubles per retry")
    sweep.add_argument("--inject", action="append", metavar="KIND@INDEX",
                       help="test hook: make cell INDEX misbehave (crash, "
                            "hang, crash-always, hang-always; with "
                            "--parallel also kill9:N / killworker:N — "
                            "SIGKILL after the Nth checkpoint; repeatable)")
    sweep.add_argument("--json", action="store_true",
                       help="emit one machine-readable JSON report")
    sweep.add_argument("--out", metavar="PATH",
                       help="stream the report here (rewritten atomically "
                            "after every finished cell, so a crash or "
                            "Ctrl-C leaves a valid partial report)")
    sweep.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="worker processes; >1 routes the sweep through "
                            "the crash-tolerant fabric (default 1: serial)")
    sweep.add_argument("--queue-dir", metavar="DIR",
                       help="fabric work-stealing queue directory; point a "
                            "second invocation (or host on a shared "
                            "filesystem) at the same DIR to cooperate")
    sweep.add_argument("--resume", action="store_true",
                       help="adopt the manifest already in --queue-dir and "
                            "skip every cell with a published result")
    sweep.add_argument("--lease-ttl", type=float, default=10.0,
                       metavar="SEC",
                       help="reclaim a cell whose lease heartbeat is older "
                            "(or more future-dated) than this (default 10)")
    sweep.add_argument("--heartbeat-interval", type=float, default=0.5,
                       metavar="SEC",
                       help="lease renewal cadence (default 0.5)")
    sweep.add_argument("--checkpoint-refs", type=int, default=2_000,
                       metavar="REFS",
                       help="mid-cell checkpoint cadence so reclaimed or "
                            "retried cells resume instead of rerunning "
                            "(default 2000)")
    prof = sub.add_parser(
        "profile", help="traced simulation with per-miss cycle attribution")
    prof.add_argument("--app", default="swim",
                      help="SPEC app, scenario name, or recorded trace "
                           "(trace:<path> / *.rtrc); see `apps`")
    prof.add_argument("--scheme", default="split+gcm")
    prof.add_argument("--refs", type=int, default=60_000)
    prof.add_argument("--tolerance", type=float, default=0.01,
                      help="max per-miss attribution residual (default 1%%)")
    prof.add_argument("--trace-out", metavar="PATH",
                      help="write a Chrome/Perfetto trace JSON here")
    prof.add_argument("--csv-out", metavar="PATH",
                      help="write the flat CSV event dump here")
    prof.add_argument("--json", action="store_true",
                      help="emit one machine-readable JSON object")
    bench = sub.add_parser(
        "bench", help="seeded perf-regression bench suite")
    bench.add_argument("--seed", type=int, default=0,
                       help="RNG seed for the micro-bench inputs")
    bench.add_argument("--quick", action="store_true",
                       help="tiny workload for smoke/subprocess tests "
                            "(only gate quick against quick)")
    bench.add_argument("--out", metavar="PATH",
                       help="also write the JSON report here (BENCH_8.json)")
    bench.add_argument("--baseline", metavar="PATH",
                       help="committed bench report to gate against")
    bench.add_argument("--tolerance", type=float, default=0.10,
                       help="max tolerated geo-mean gate-metric regression "
                            "(default 10%%)")
    bench.add_argument("--json", action="store_true",
                       help="emit the machine-readable report on stdout")
    serve = sub.add_parser(
        "serve", help="run the multi-tenant secure-memory service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = ephemeral; the bound "
                            "port is printed as a JSON line)")
    serve.add_argument("--shards", type=int, default=1,
                       help="number of shards (default 1)")
    serve.add_argument("--backend", choices=("inline", "process"),
                       default="process",
                       help="shard backend: worker processes (real "
                            "parallelism) or inline (default process)")
    serve.add_argument("--scheme", default="split+gcm",
                       help="scheme preset for every tenant system")
    serve.add_argument("--tenant-bytes", type=int, default=1 << 20,
                       help="per-tenant address-space size (default 1 MiB)")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="per-shard admission-control cap (default 256)")
    serve.add_argument("--batch-max", type=int, default=64,
                       help="max ops coalesced per shard batch (default 64)")
    serve.add_argument("--l2-size", type=int, default=64 * 1024,
                       help="per-(tenant, shard) L2 size in bytes (default "
                            "64 KiB; shrink it to force the crypto path)")
    load = sub.add_parser(
        "loadgen", help="drive a seeded workload against a running server")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, required=True)
    load.add_argument("--tenants", type=int, default=2)
    load.add_argument("--connections", type=int, default=4)
    load.add_argument("--requests", type=int, default=200,
                      help="requests per connection (default 200)")
    load.add_argument("--batch", type=int, default=4,
                      help="blocks per request (default 4)")
    load.add_argument("--read-fraction", type=float, default=0.65)
    load.add_argument("--footprint-blocks", type=int, default=512,
                      help="per-tenant working-set size in blocks")
    load.add_argument("--seed", type=int, default=1234)
    load.add_argument("--recovery",
                      choices=("halt", "quarantine_page", "degrade"),
                      default=None,
                      help="recovery policy for the opened tenants")
    load.add_argument("--workload", default=None, metavar="NAME",
                      help="shape the address stream like a named workload "
                           "(SPEC app, scenario, or trace:<path>/*.rtrc) "
                           "instead of uniform-random")
    load.add_argument("--json", action="store_true",
                      help="emit one machine-readable JSON object")
    trace = sub.add_parser(
        "trace", help="record/replay/inspect compact .rtrc trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    t_rec = trace_sub.add_parser(
        "record", help="record a generator workload into a trace file")
    t_rec.add_argument("--workload", required=True, metavar="NAME",
                       help="SPEC app or scenario name (see `apps`)")
    t_rec.add_argument("--out", required=True, metavar="PATH.rtrc",
                       help="trace file to write")
    t_rec.add_argument("--refs", type=int, default=60_000,
                       help="memory references to record (default 60000)")
    t_rec.add_argument("--seed", type=int, default=1234,
                       help="generator seed (default 1234)")
    t_rec.add_argument("--json", action="store_true")
    t_rep = trace_sub.add_parser(
        "replay", help="replay a recording through the full simulator")
    t_rep.add_argument("trace", metavar="PATH.rtrc")
    t_rep.add_argument("--scheme", default="split+gcm")
    t_rep.add_argument("--refs", type=int, default=None,
                       help="replay only the first N references "
                            "(default: the whole recording)")
    t_rep.add_argument("--json", action="store_true")
    t_info = trace_sub.add_parser(
        "info", help="validate a trace file and print its header")
    t_info.add_argument("trace", metavar="PATH.rtrc")
    t_info.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    return {"schemes": _cmd_schemes, "apps": _cmd_apps,
            "simulate": _cmd_simulate, "attack": _cmd_attack,
            "fuzz": _cmd_fuzz, "profile": _cmd_profile,
            "sweep": _cmd_sweep, "bench": _cmd_bench,
            "serve": _cmd_serve, "loadgen": _cmd_loadgen,
            "trace": _cmd_trace}[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
