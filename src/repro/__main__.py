"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate --app mcf --scheme split+gcm [--refs N]`` — run one timing
  simulation and print normalized IPC plus the memory-system statistics.
* ``schemes`` — list the named configuration presets.
* ``apps`` — list the SPEC CPU 2000-like workloads.
* ``attack [--no-counter-auth]`` — stage the section-4.3 counter-replay
  attack and report detection.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import PRESETS, SecureMemorySystem, split_gcm_config
from repro.sim import simulate
from repro.workloads import SPEC_APPS, spec_trace


def _cmd_schemes(_args) -> int:
    for name, config in PRESETS.items():
        print(f"{name:<14} encryption={config.encryption.value:<8} "
              f"counters={config.counter_org.value:<10} "
              f"auth={config.auth.value}")
    return 0


def _cmd_apps(_args) -> int:
    print(" ".join(SPEC_APPS))
    return 0


def _cmd_simulate(args) -> int:
    if args.scheme not in PRESETS:
        print(f"unknown scheme {args.scheme!r}; see `python -m repro "
              f"schemes`", file=sys.stderr)
        return 2
    trace = spec_trace(args.app, args.refs)
    warmup = args.refs // 3
    baseline = simulate(PRESETS["baseline"], trace, warmup_refs=warmup)
    result = simulate(PRESETS[args.scheme], trace, warmup_refs=warmup)
    nipc = result.ipc / baseline.ipc if baseline.ipc else 0.0
    memory = result.memory
    print(f"app={args.app} scheme={args.scheme} refs={args.refs}")
    print(f"  baseline IPC        : {baseline.ipc:.3f}")
    print(f"  scheme IPC          : {result.ipc:.3f}")
    print(f"  normalized IPC      : {nipc:.3f}  (overhead {1 - nipc:.1%})")
    print(f"  L2 misses           : {result.l2_misses}")
    print(f"  bus utilization     : "
          f"{memory.bus.utilization(result.cycles):.0%}")
    if memory.counter_cache is not None:
        print(f"  counter-cache hits  : "
              f"{memory.counter_cache.stats.hit_rate:.1%}")
    if memory.stats.pads.pad_requests:
        print(f"  timely pads         : {memory.stats.pads.timely_rate:.1%}")
    reenc = memory.stats.reencryption
    if reenc.page_reencryptions:
        print(f"  page re-encryptions : {reenc.page_reencryptions} "
              f"(mean {reenc.mean_page_cycles:,.0f} cycles)")
    return 0


def _cmd_attack(args) -> int:
    from repro.attacks import counter_replay_attack

    config = split_gcm_config(
        counter_cache_size=64, counter_cache_assoc=1,
        authenticate_counters=not args.no_counter_auth,
    )
    system = SecureMemorySystem(config, protected_bytes=512 * 1024,
                                l2_size=4 * 1024, l2_assoc=2)
    report = counter_replay_attack(system, 0, b"\xaa" * 64, b"\x55" * 64,
                                   scratch_base=128 * 1024)
    print(report)
    return 0 if report.defended else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Split-counter memory encryption + GCM authentication "
                    "(ISCA 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("schemes", help="list configuration presets")
    sub.add_parser("apps", help="list workloads")
    sim = sub.add_parser("simulate", help="run one timing simulation")
    sim.add_argument("--app", default="swim", choices=SPEC_APPS)
    sim.add_argument("--scheme", default="split+gcm")
    sim.add_argument("--refs", type=int, default=60_000)
    atk = sub.add_parser("attack", help="stage the counter-replay attack")
    atk.add_argument("--no-counter-auth", action="store_true",
                     help="disable counter authentication (the 4.3 flaw)")
    args = parser.parse_args(argv)
    return {"schemes": _cmd_schemes, "apps": _cmd_apps,
            "simulate": _cmd_simulate, "attack": _cmd_attack}[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
