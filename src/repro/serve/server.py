"""Asyncio front end of the multi-tenant secure-memory service.

Architecture (one server process):

* One *lane* per shard: a bounded :class:`asyncio.Queue` of ops, a worker
  coroutine that drains it in batches, and a single-thread executor that
  serializes the shard's backend calls.  With the ``process`` backend the
  executor thread merely pumps a pipe — the actual crypto runs inside the
  shard's own worker process, so shards execute truly in parallel.
* **Coalescing**: the lane worker collects up to ``batch_max`` queued ops
  (from any number of connections) into one shard batch; the shard merges
  consecutive same-kind ops per tenant into single
  ``read_blocks``/``write_blocks`` calls — the vector-kernel batch path.
* **Admission control**: a full lane queue rejects immediately with
  ``BUSY`` instead of buffering without bound.  The queue depth is the
  whole per-shard memory obligation; clients retry with backoff.
* **Tenants**: opened dynamically, each with a bearer token, a key epoch,
  its own address space (sharded block-interleaved across lanes), and its
  own recovery policy.  One tenant's integrity faults — even a ``halt``
  verdict — never touch another tenant's systems.

Address routing: a tenant address is a byte offset in that tenant's own
flat space, block-aligned.  Block ``b = addr // block_size`` lives on
shard ``b % num_shards`` at local address
``(b // num_shards) * block_size`` — consecutive blocks stripe across
shards so any dense working set loads all lanes.
"""

from __future__ import annotations

import asyncio
import contextlib
import hmac
import secrets
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.serve.protocol import (
    ErrorCode,
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
)
from repro.serve.shard import InlineShard, ProcessShard, ShardCore, ShardError

__all__ = ["SecureMemoryService", "ServeConfig", "run_server"]


@dataclass(frozen=True)
class ServeConfig:
    """Static shape of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = pick an ephemeral port
    scheme: str = "split+gcm"         # preset label, see repro.api.get_config
    num_shards: int = 1
    backend: str = "inline"           # "inline" | "process"
    tenant_bytes: int = 1 << 20       # per-tenant address-space size
    queue_depth: int = 256            # max queued ops per shard (admission)
    batch_max: int = 64               # max ops coalesced into one shard batch
    max_request_blocks: int = 256     # max blocks one read/write may name
    l2_size: int = 64 * 1024          # per (tenant, shard) cache size
    base_key: bytes = b"repro-serve-base-key"

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.backend not in ("inline", "process"):
            raise ValueError(f"unknown shard backend {self.backend!r} "
                             "(want 'inline' or 'process')")
        if self.queue_depth < 1 or self.batch_max < 1:
            raise ValueError("queue_depth and batch_max must be >= 1")


class _TenantInfo:
    __slots__ = ("token", "epoch", "recovery")

    def __init__(self, token: str, recovery: str | None):
        self.token = token
        self.epoch = 0
        self.recovery = recovery


@dataclass
class _Lane:
    """One shard's queue + worker + serializing executor."""

    shard: Any
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    executor: ThreadPoolExecutor | None = None
    worker: asyncio.Task | None = None


class SecureMemoryService:
    """The server: lifecycle, tenant registry, op dispatch, lanes."""

    def __init__(self, config: ServeConfig):
        from repro.api import get_config
        from repro.obs.metrics import MetricsRegistry

        self.config = config
        self.memory_config = get_config(config.scheme)
        self.block_size = self.memory_config.block_size
        if config.tenant_bytes % (self.block_size * config.num_shards):
            raise ValueError(
                f"tenant_bytes ({config.tenant_bytes}) must be a multiple "
                f"of block_size * num_shards "
                f"({self.block_size} * {config.num_shards})")
        self._lanes: list[_Lane] = []
        self._tenants: dict[str, _TenantInfo] = {}
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._started = time.monotonic()
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter("serve.requests")
        self._busy = self.metrics.counter("serve.busy")
        self._proto_errors = self.metrics.counter("serve.protocol_errors")
        self._batches = self.metrics.counter("serve.batches")
        self._batched_ops = self.metrics.counter("serve.batched_ops")
        self._batch_size = self.metrics.histogram("serve.batch_size")

    # -- lifecycle ----------------------------------------------------------

    def _build_shard(self, index: int):
        per_shard = self.config.tenant_bytes // self.config.num_shards
        if self.config.backend == "process":
            return ProcessShard(index, self.config.num_shards,
                                self.memory_config, per_shard,
                                self.config.base_key,
                                l2_size=self.config.l2_size)
        return InlineShard(ShardCore(index, self.config.num_shards,
                                     self.memory_config, per_shard,
                                     self.config.base_key,
                                     l2_size=self.config.l2_size))

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        if self.config.backend == "process":
            # spawning is slow (fresh interpreter per shard); overlap them
            shards = await asyncio.gather(*[
                loop.run_in_executor(None, self._build_shard, index)
                for index in range(self.config.num_shards)])
        else:
            shards = [self._build_shard(index)
                      for index in range(self.config.num_shards)]
        for shard in shards:
            lane = _Lane(shard=shard,
                         queue=asyncio.Queue(self.config.queue_depth),
                         executor=ThreadPoolExecutor(
                             max_workers=1,
                             thread_name_prefix=f"shard-{shard.index}"))
            lane.worker = asyncio.ensure_future(self._lane_worker(lane))
            self._lanes.append(lane)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ephemeral port 0."""
        if self._server is None:
            raise RuntimeError("service is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Drain and stop: no new work, finish queued batches, free shards."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for lane in self._lanes:
            await lane.queue.put(None)          # drain sentinel
        for lane in self._lanes:
            if lane.worker is not None:
                await lane.worker
        loop = asyncio.get_running_loop()
        await asyncio.gather(*[
            loop.run_in_executor(lane.executor, lane.shard.close)
            for lane in self._lanes])
        for lane in self._lanes:
            lane.executor.shutdown(wait=True)

    # -- lane worker: coalescing + batch execution --------------------------

    async def _lane_worker(self, lane: _Lane) -> None:
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            item = await lane.queue.get()
            if item is None:
                break
            batch = [item]
            while len(batch) < self.config.batch_max:
                try:
                    extra = lane.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    stopping = True
                    break
                batch.append(extra)
            self._batches.inc()
            self._batched_ops.inc(len(batch))
            self._batch_size.observe(float(len(batch)))
            ops = [op for op, _future in batch]
            try:
                results = await loop.run_in_executor(
                    lane.executor, lane.shard.request, "execute", ops)
            except Exception as exc:  # noqa: BLE001 — fail the batch, not us
                for _op, future in batch:
                    if not future.done():
                        future.set_exception(
                            ShardError(f"shard {lane.shard.index} batch "
                                       f"failed: {exc}"))
                continue
            for (_op, future), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)

    def _submit(self, lane: _Lane, op: tuple) -> asyncio.Future:
        """Admission control: enqueue or raise ``_Busy`` immediately."""
        future = asyncio.get_running_loop().create_future()
        try:
            lane.queue.put_nowait((op, future))
        except asyncio.QueueFull:
            self._busy.inc()
            raise _Busy(
                f"shard {lane.shard.index} queue is full "
                f"({self.config.queue_depth} ops); retry with backoff"
            ) from None
        return future

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()           # serializes frame writes per conn
        pending: set[asyncio.Task] = set()

        async def respond(payload: dict) -> None:
            async with lock:
                writer.write(encode_frame(payload))
                await writer.drain()

        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # stream can no longer be framed: one terminal error,
                    # then drop the connection
                    self._proto_errors.inc()
                    with contextlib.suppress(ConnectionError):
                        await respond(error_response(
                            None, ErrorCode.BAD_REQUEST, str(exc)))
                    break
                if request is None:
                    break
                # pipelining: each request is served concurrently; the
                # per-connection lock keeps response frames whole
                task = asyncio.ensure_future(
                    self._serve_request(request, respond))
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            # CancelledError: the loop may be tearing down mid-close; this
            # is the handler's last statement, nothing is left to cancel
            with contextlib.suppress(ConnectionError,
                                     asyncio.CancelledError):
                await writer.wait_closed()

    async def _serve_request(self, request: dict, respond) -> None:
        request_id = request.get("id")
        self._requests.inc()
        try:
            response = await self._dispatch(request_id, request)
        except _Busy as exc:
            response = error_response(request_id, ErrorCode.BUSY, str(exc))
        except _RequestError as exc:
            response = error_response(request_id, exc.code, str(exc))
        except ShardError as exc:
            response = error_response(request_id, ErrorCode.INTERNAL,
                                      str(exc))
        except Exception as exc:  # noqa: BLE001 — a bug must not kill serving
            response = error_response(
                request_id, ErrorCode.INTERNAL,
                f"{type(exc).__name__}: {exc}")
        with contextlib.suppress(ConnectionError):
            await respond(response)

    # -- request dispatch ---------------------------------------------------

    async def _dispatch(self, request_id, request: dict) -> dict:
        op = request.get("op")
        if not isinstance(op, str):
            raise _RequestError(ErrorCode.BAD_REQUEST,
                                "request needs a string 'op' field")
        if self._closing and op != "ping":
            raise _RequestError(ErrorCode.SHUTDOWN, "server is stopping")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise _RequestError(ErrorCode.UNKNOWN_OP,
                                f"unknown op {op!r}")
        return await handler(request_id, request)

    def _authed(self, request: dict) -> tuple[str, _TenantInfo]:
        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise _RequestError(ErrorCode.BAD_REQUEST,
                                "request needs a non-empty 'tenant' field")
        info = self._tenants.get(tenant)
        if info is None:
            raise _RequestError(ErrorCode.NO_TENANT,
                                f"tenant {tenant!r} is not open")
        token = request.get("token")
        if not isinstance(token, str) or not hmac.compare_digest(
                info.token, token):
            raise _RequestError(ErrorCode.AUTH,
                                f"bad token for tenant {tenant!r}")
        return tenant, info

    def _route(self, address: Any) -> tuple[int, int]:
        """Tenant byte address -> (shard index, shard-local address)."""
        if not isinstance(address, int) or isinstance(address, bool):
            raise _RequestError(ErrorCode.BAD_REQUEST,
                                f"address must be an integer, "
                                f"got {address!r}")
        if address < 0 or address >= self.config.tenant_bytes:
            raise _RequestError(
                ErrorCode.BAD_REQUEST,
                f"address {address:#x} outside the tenant space "
                f"[0, {self.config.tenant_bytes:#x})")
        if address % self.block_size:
            raise _RequestError(
                ErrorCode.BAD_REQUEST,
                f"address {address:#x} is not {self.block_size}-byte "
                "block-aligned")
        block = address // self.block_size
        shard = block % self.config.num_shards
        local = (block // self.config.num_shards) * self.block_size
        return shard, local

    @staticmethod
    def _check_result(result: tuple) -> Any:
        if result[0] == "ok":
            return result[1]
        _tag, code, detail = result
        raise _RequestError(code, detail)

    # each op below is named _op_<wire name> and found via getattr

    async def _op_ping(self, request_id, request: dict) -> dict:
        return ok_response(request_id, pong=True)

    async def _op_open_tenant(self, request_id, request: dict) -> dict:
        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise _RequestError(ErrorCode.BAD_REQUEST,
                                "open_tenant needs a non-empty 'tenant'")
        if tenant in self._tenants:
            raise _RequestError(ErrorCode.TENANT_EXISTS,
                                f"tenant {tenant!r} is already open")
        recovery = request.get("recovery")
        if recovery is not None and recovery not in (
                "halt", "quarantine_page", "degrade"):
            raise _RequestError(
                ErrorCode.BAD_REQUEST,
                f"unknown recovery policy {recovery!r} (want 'halt', "
                "'quarantine_page', or 'degrade')")
        loop = asyncio.get_running_loop()
        await asyncio.gather(*[
            loop.run_in_executor(
                lane.executor, lane.shard.request, "open_tenant",
                {"tenant": tenant, "epoch": 0, "recovery": recovery})
            for lane in self._lanes])
        info = _TenantInfo(secrets.token_hex(16), recovery)
        self._tenants[tenant] = info
        return ok_response(request_id, token=info.token, epoch=0,
                           tenant_bytes=self.config.tenant_bytes,
                           block_size=self.block_size)

    async def _op_close_tenant(self, request_id, request: dict) -> dict:
        tenant, _info = self._authed(request)
        loop = asyncio.get_running_loop()
        await asyncio.gather(*[
            loop.run_in_executor(lane.executor, lane.shard.request,
                                 "close_tenant", tenant)
            for lane in self._lanes])
        del self._tenants[tenant]
        return ok_response(request_id, closed=tenant)

    async def _op_rotate_epoch(self, request_id, request: dict) -> dict:
        tenant, info = self._authed(request)
        loop = asyncio.get_running_loop()
        epochs = await asyncio.gather(*[
            loop.run_in_executor(lane.executor, lane.shard.request,
                                 "rotate", tenant)
            for lane in self._lanes])
        info.epoch = epochs[0]
        return ok_response(request_id, epoch=info.epoch)

    async def _op_read(self, request_id, request: dict) -> dict:
        tenant, _info = self._authed(request)
        addresses = request.get("addresses")
        if not isinstance(addresses, list) or not addresses:
            raise _RequestError(ErrorCode.BAD_REQUEST,
                                "read needs a non-empty 'addresses' list")
        if len(addresses) > self.config.max_request_blocks:
            raise _RequestError(
                ErrorCode.BAD_REQUEST,
                f"read names {len(addresses)} blocks (cap is "
                f"{self.config.max_request_blocks})")
        per_shard: dict[int, list[tuple[int, int]]] = {}
        for position, address in enumerate(addresses):
            shard, local = self._route(address)
            per_shard.setdefault(shard, []).append((position, local))
        futures = []
        for shard, entries in per_shard.items():
            op = ("read", tenant, [local for _pos, local in entries])
            futures.append((entries, self._submit(self._lanes[shard], op)))
        data: list[str | None] = [None] * len(addresses)
        for (entries, future) in futures:
            blocks = self._check_result(await future)
            for (position, _local), block in zip(entries, blocks):
                data[position] = block.hex()
        return ok_response(request_id, data=data)

    async def _op_write(self, request_id, request: dict) -> dict:
        tenant, _info = self._authed(request)
        writes = request.get("writes")
        if not isinstance(writes, list) or not writes:
            raise _RequestError(ErrorCode.BAD_REQUEST,
                                "write needs a non-empty 'writes' list of "
                                "[address, hex_data] pairs")
        if len(writes) > self.config.max_request_blocks:
            raise _RequestError(
                ErrorCode.BAD_REQUEST,
                f"write names {len(writes)} blocks (cap is "
                f"{self.config.max_request_blocks})")
        per_shard: dict[int, list[tuple[int, bytes]]] = {}
        for entry in writes:
            if (not isinstance(entry, (list, tuple)) or len(entry) != 2):
                raise _RequestError(
                    ErrorCode.BAD_REQUEST,
                    "each write must be an [address, hex_data] pair")
            address, hex_data = entry
            shard, local = self._route(address)
            try:
                payload = bytes.fromhex(hex_data)
            except (TypeError, ValueError):
                raise _RequestError(
                    ErrorCode.BAD_REQUEST,
                    f"write data for address {address:#x} is not a hex "
                    "string") from None
            if len(payload) != self.block_size:
                raise _RequestError(
                    ErrorCode.BAD_REQUEST,
                    f"write data for address {address:#x} is "
                    f"{len(payload)} bytes (block size is "
                    f"{self.block_size})")
            per_shard.setdefault(shard, []).append((local, payload))
        futures = [
            self._submit(self._lanes[shard], ("write", tenant, pairs))
            for shard, pairs in per_shard.items()]
        written = 0
        for future in futures:
            written += self._check_result(await future)
        return ok_response(request_id, written=written)

    async def _op_corrupt(self, request_id, request: dict) -> dict:
        """Fault injection (tests / CI smoke): flip DRAM bits of one block.

        Runs on the shard's serializing executor, not through the op
        queue — it must not interleave with a half-executed batch.
        """
        tenant, _info = self._authed(request)
        shard, local = self._route(request.get("address"))
        lane = self._lanes[shard]
        await asyncio.get_running_loop().run_in_executor(
            lane.executor, lane.shard.request, "corrupt",
            {"tenant": tenant, "address": local})
        return ok_response(request_id, corrupted=request["address"],
                           shard=shard)

    async def _op_metrics(self, request_id, request: dict) -> dict:
        """Per-tenant metrics: per-shard scalar snapshots + a summed view.

        Integer counters (accesses, hits, retries, quarantined pages...)
        are summed across shards; rates/floats don't sum meaningfully and
        stay per-shard only.
        """
        tenant, info = self._authed(request)
        loop = asyncio.get_running_loop()
        snapshots = await asyncio.gather(*[
            loop.run_in_executor(lane.executor, lane.shard.request,
                                 "metrics", tenant)
            for lane in self._lanes])
        aggregate: dict[str, int] = {}
        for snapshot in snapshots:
            for name, value in snapshot["metrics"].items():
                if isinstance(value, int) and not isinstance(value, bool):
                    aggregate[name] = aggregate.get(name, 0) + value
        return ok_response(
            request_id,
            tenant=tenant,
            epoch=info.epoch,
            recovery_policy=info.recovery,
            halted=[s["halted"] for s in snapshots],
            aggregate=aggregate,
            shards={str(index): snapshot["metrics"]
                    for index, snapshot in enumerate(snapshots)})

    async def _op_stats(self, request_id, request: dict) -> dict:
        """Server-level serve.* metrics (unauthenticated, no tenant data)."""
        return ok_response(
            request_id,
            uptime_s=time.monotonic() - self._started,
            num_shards=self.config.num_shards,
            backend=self.config.backend,
            scheme=self.config.scheme,
            tenants=len(self._tenants),
            queue_depths=[lane.queue.qsize() for lane in self._lanes],
            metrics=self.metrics.snapshot())


class _Busy(Exception):
    """Admission control verdict: lane queue full, client should back off."""


class _RequestError(Exception):
    """A request-level failure with a wire error code."""

    def __init__(self, code: str, detail: str):
        super().__init__(detail)
        self.code = code


async def _serve_forever(service: SecureMemoryService,
                         ready=None) -> None:
    import signal

    await service.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signum, stop.set)
    if ready is not None:
        ready(service.address)
    try:
        await stop.wait()
    finally:
        await service.stop()


def run_server(config: ServeConfig, *, ready=None) -> None:
    """Blocking entry point behind ``python -m repro serve``.

    ``ready(address)`` is called once the socket is bound — the CLI uses
    it to print the endpoint, tests could use it for synchronization.
    Returns after SIGINT/SIGTERM once all lanes have drained.
    """
    asyncio.run(_serve_forever(SecureMemoryService(config), ready=ready))
