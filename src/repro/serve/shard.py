"""Shard backends: per-tenant secure-memory systems behind one dispatch.

A *shard* owns one :class:`~repro.core.SecureMemorySystem` per tenant and
executes coalesced op batches against them.  The same synchronous engine
(:class:`ShardCore`) runs in two places:

* :class:`InlineShard` — in the server process.  Deterministic and cheap;
  what the unit tests and quick smoke paths use.
* :class:`ProcessShard` — inside a spawned worker process, one per shard,
  driven over a pipe.  This is what makes ``--shards N`` scale on a
  multi-core host: each shard's crypto (AES pads, GHASH MACs, Merkle
  walks) runs on its own core, outside the server's GIL.

Tenant isolation is structural, not advisory: every tenant gets its own
system per shard, keyed by ``sha256(base_key, tenant, epoch)`` — separate
key material, separate DRAM image, separate Merkle tree, separate
recovery controller.  There is no address a tenant can name that reaches
another tenant's state, and rotating a tenant's key epoch rebuilds only
that tenant's systems.

Batches funnel into the existing ``read_blocks``/``write_blocks`` batch
path (and therefore the ``Config.kernel`` vector crypto): consecutive
same-kind ops of one tenant merge into a single bulk call, so a burst of
concurrent single-block requests is serviced with one AES dispatch and
one Merkle walk per shared parent, exactly like the simulator's batch
path.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import signal
import threading
from typing import Any

from repro.serve.protocol import ErrorCode

__all__ = [
    "InlineShard",
    "ProcessShard",
    "ShardCore",
    "ShardError",
    "derive_tenant_key",
]


class ShardError(RuntimeError):
    """A shard worker failed outside the per-op error protocol."""


def derive_tenant_key(base_key: bytes, tenant: str, epoch: int) -> bytes:
    """Per-tenant, per-epoch base key for one tenant's systems.

    Mixing the epoch into the derivation is what makes ``rotate_epoch`` a
    real re-keying: systems built for epoch ``e+1`` share no key material
    with epoch ``e`` (or with any other tenant).
    """
    digest = hashlib.sha256()
    digest.update(b"repro-serve-tenant\x00")
    digest.update(base_key)
    digest.update(b"\x00")
    digest.update(tenant.encode("utf-8"))
    digest.update(epoch.to_bytes(8, "big"))
    return digest.digest()[:16]


class _TenantShardState:
    """One tenant's slice of one shard: the system plus tenant facts."""

    __slots__ = ("system", "epoch", "recovery", "halted")

    def __init__(self, system, epoch: int, recovery: str | None):
        self.system = system
        self.epoch = epoch
        self.recovery = recovery
        self.halted = False


class ShardCore:
    """Synchronous executor of coalesced op batches for one shard."""

    def __init__(self, index: int, num_shards: int, config,
                 protected_bytes: int, base_key: bytes,
                 l2_size: int = 64 * 1024):
        from repro.core.config import SecureMemoryConfig

        if not isinstance(config, SecureMemoryConfig):
            raise TypeError("ShardCore wants a SecureMemoryConfig")
        self.index = index
        self.num_shards = num_shards
        self.config = config
        self.protected_bytes = protected_bytes
        self.l2_size = l2_size
        self.block_size = config.block_size
        self._base_key = bytes(base_key)
        self._tenants: dict[str, _TenantShardState] = {}

    # -- tenant lifecycle ---------------------------------------------------

    def _build_system(self, tenant: str, epoch: int, recovery: str | None):
        from repro.core.config import RecoveryConfig, RecoveryPolicy
        from repro.core.secure_memory import SecureMemorySystem

        config = self.config
        if recovery is not None:
            config = config.with_updates(recovery=RecoveryConfig(
                enabled=True, policy=RecoveryPolicy(recovery)))
        return SecureMemorySystem(
            config, protected_bytes=self.protected_bytes,
            base_key=derive_tenant_key(self._base_key, tenant, epoch),
            l2_size=self.l2_size)

    def open_tenant(self, tenant: str, *, epoch: int = 0,
                    recovery: str | None = None) -> None:
        self._tenants[tenant] = _TenantShardState(
            self._build_system(tenant, epoch, recovery), epoch, recovery)

    def close_tenant(self, tenant: str) -> None:
        self._tenants.pop(tenant, None)

    def rotate_epoch(self, tenant: str) -> int:
        """Bump the tenant's key epoch: fresh systems under a fresh key.

        The old epoch's DRAM image (and any quarantine/halt verdicts)
        is discarded with the old key — an epoch is a hard reset of the
        tenant's address space, which is exactly what makes it useful
        after a halt or a suspected compromise.
        """
        state = self._require(tenant)
        epoch = state.epoch + 1
        self._tenants[tenant] = _TenantShardState(
            self._build_system(tenant, epoch, state.recovery),
            epoch, state.recovery)
        return epoch

    def _require(self, tenant: str) -> _TenantShardState:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise ShardError(f"tenant {tenant!r} not opened on shard "
                             f"{self.index}") from None

    # -- batch execution ----------------------------------------------------

    @staticmethod
    def _error_for(exc: Exception) -> tuple[str, str, str]:
        from repro.resilience.recovery import (
            IntegrityViolation,
            QuarantinedPageError,
            RecoveryHalted,
        )

        if isinstance(exc, RecoveryHalted):
            return ("error", ErrorCode.HALTED, str(exc))
        if isinstance(exc, QuarantinedPageError):
            return ("error", ErrorCode.QUARANTINED, str(exc))
        if isinstance(exc, IntegrityViolation):
            return ("error", ErrorCode.INTEGRITY, str(exc))
        if isinstance(exc, ValueError):
            return ("error", ErrorCode.BAD_REQUEST, str(exc))
        return ("error", ErrorCode.INTERNAL,
                f"{type(exc).__name__}: {exc}")

    def execute(self, ops: list[tuple]) -> list[tuple]:
        """Run one coalesced batch; one result tuple per op, in order.

        ``ops`` entries are ``("read", tenant, [addr, ...])`` or
        ``("write", tenant, [(addr, data), ...])`` with shard-local
        block-aligned addresses.  Consecutive same-kind ops of the same
        tenant merge into one ``read_blocks``/``write_blocks`` call (the
        coalescing contract); kind changes are barriers so read-after-
        write ordering within a tenant is preserved.

        Results are ``("ok", payload)`` or ``("error", code, detail)``.
        A failure poisons only its own merged run — other tenants, and
        the same tenant's later runs (unless halted), proceed.
        """
        from repro.resilience.recovery import RecoveryHalted

        results: list[tuple | None] = [None] * len(ops)
        # per-tenant runs of consecutive same-kind ops, preserving each
        # tenant's own op order
        runs: list[tuple[str, str, list[int]]] = []  # (kind, tenant, idxs)
        last_run_for: dict[str, int] = {}
        for position, (kind, tenant, _payload) in enumerate(ops):
            run_index = last_run_for.get(tenant)
            if run_index is not None and runs[run_index][0] == kind:
                runs[run_index][2].append(position)
            else:
                runs.append((kind, tenant, [position]))
                last_run_for[tenant] = len(runs) - 1
        for kind, tenant, positions in runs:
            try:
                state = self._require(tenant)
            except ShardError as exc:
                for position in positions:
                    results[position] = ("error", ErrorCode.NO_TENANT,
                                         str(exc))
                continue
            if state.halted:
                for position in positions:
                    results[position] = (
                        "error", ErrorCode.HALTED,
                        f"tenant {tenant!r} is halted on shard "
                        f"{self.index} (persistent integrity fault); "
                        "rotate_epoch to recover")
                continue
            try:
                if kind == "read":
                    addrs = [addr for position in positions
                             for addr in ops[position][2]]
                    data = state.system.read_blocks(addrs)
                    cursor = 0
                    for position in positions:
                        take = len(ops[position][2])
                        results[position] = (
                            "ok", data[cursor:cursor + take])
                        cursor += take
                elif kind == "write":
                    pairs = [pair for position in positions
                             for pair in ops[position][2]]
                    state.system.write_blocks(pairs)
                    for position in positions:
                        results[position] = ("ok", len(ops[position][2]))
                else:
                    for position in positions:
                        results[position] = (
                            "error", ErrorCode.BAD_REQUEST,
                            f"unknown op kind {kind!r}")
            except Exception as exc:  # noqa: BLE001 — per-op verdicts
                if isinstance(exc, RecoveryHalted):
                    state.halted = True
                verdict = self._error_for(exc)
                for position in positions:
                    results[position] = verdict
        return results  # type: ignore[return-value]

    # -- fault injection (tests / CI smoke) ---------------------------------

    def corrupt(self, tenant: str, address: int) -> None:
        """Flip ciphertext bits of one block in the tenant's DRAM image.

        The system is flushed first (so DRAM holds the authoritative
        image) and the L2 line is invalidated, so the next read must
        re-fetch and re-verify — and the verification fails.  A DRAM
        corruption is *persistent*: recovery re-reads see the same bad
        bytes, so the tenant's configured policy (halt / quarantine /
        degrade) decides the outcome.
        """
        state = self._require(tenant)
        system = state.system
        system.flush()
        raw = bytearray(system.dram.read_block(address))
        raw[0] ^= 0xFF
        system.dram.write_block(address, bytes(raw))
        system.l2.invalidate(address)

    # -- metrics ------------------------------------------------------------

    def metrics(self, tenant: str) -> dict[str, Any]:
        """Scalar metrics snapshot of one tenant's slice of this shard.

        Built on :meth:`MetricsRegistry.snapshot`, which returns frozen
        copies — a scrape can never alias in-flight mutation.  NaN (e.g. a
        hit rate with zero accesses) becomes ``None`` so the payload stays
        strict-JSON clean.
        """
        state = self._require(tenant)
        snapshot = state.system.metrics.snapshot()
        scalars = {
            name: (None if isinstance(value, float) and math.isnan(value)
                   else value)
            for name, value in snapshot.items()
            if isinstance(value, (int, float))
        }
        return {
            "epoch": state.epoch,
            "recovery_policy": state.recovery,
            "halted": state.halted,
            "metrics": scalars,
        }

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    # -- uniform dispatch (the pipe protocol and InlineShard share it) ------

    def dispatch(self, kind: str, payload: Any) -> Any:
        if kind == "execute":
            return self.execute(payload)
        if kind == "open_tenant":
            return self.open_tenant(payload["tenant"],
                                    epoch=payload.get("epoch", 0),
                                    recovery=payload.get("recovery"))
        if kind == "close_tenant":
            return self.close_tenant(payload)
        if kind == "rotate":
            return self.rotate_epoch(payload)
        if kind == "corrupt":
            return self.corrupt(payload["tenant"], payload["address"])
        if kind == "metrics":
            return self.metrics(payload)
        if kind == "tenants":
            return self.tenants()
        if kind == "ping":
            return "pong"
        raise ShardError(f"unknown shard command {kind!r}")


def _worker_main(conn, spec: dict) -> None:
    """Entry point of a spawned shard worker process.

    SIGINT is ignored: the server owns interrupt handling, and a terminal
    Ctrl-C reaches the whole process group — the worker must keep serving
    until it is told to shut down (or its pipe closes).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.resilience.checkpoint import config_from_state

    core = ShardCore(
        index=spec["index"],
        num_shards=spec["num_shards"],
        config=config_from_state(spec["config_state"]),
        protected_bytes=spec["protected_bytes"],
        base_key=spec["base_key"],
        l2_size=spec["l2_size"],
    )
    while True:
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):
            break
        if kind == "shutdown":
            conn.send(("ok", None))
            break
        try:
            conn.send(("ok", core.dispatch(kind, payload)))
        except Exception as exc:  # noqa: BLE001 — verdict crosses the pipe
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    conn.close()


class InlineShard:
    """A shard living in the server process (deterministic, no spawn)."""

    def __init__(self, core: ShardCore):
        self.core = core
        self.index = core.index

    def request(self, kind: str, payload: Any) -> Any:
        return self.core.dispatch(kind, payload)

    def close(self) -> None:
        pass


class ProcessShard:
    """A shard hosted in its own spawned process, driven over a pipe.

    ``request`` is synchronous and serialized by a lock; the server calls
    it from a per-shard single-thread executor, so each shard processes
    one batch at a time while different shards run truly in parallel.
    """

    def __init__(self, index: int, num_shards: int, config,
                 protected_bytes: int, base_key: bytes,
                 l2_size: int = 64 * 1024):
        from repro.resilience.checkpoint import config_state

        self.index = index
        spec = {
            "index": index,
            "num_shards": num_shards,
            "config_state": config_state(config),
            "protected_bytes": protected_bytes,
            "base_key": bytes(base_key),
            "l2_size": l2_size,
        }
        context = multiprocessing.get_context("spawn")
        self._conn, child = context.Pipe()
        self._process = context.Process(
            target=_worker_main, args=(child, spec), daemon=True)
        self._process.start()
        child.close()
        self._lock = threading.Lock()
        self._closed = False

    def request(self, kind: str, payload: Any) -> Any:
        with self._lock:
            if self._closed:
                raise ShardError(f"shard {self.index} is closed")
            try:
                self._conn.send((kind, payload))
                status, result = self._conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                raise ShardError(
                    f"shard {self.index} worker died "
                    f"(exit code {self._process.exitcode})") from exc
        if status == "error":
            raise ShardError(f"shard {self.index}: {result}")
        return result

    def close(self, timeout: float = 5.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send(("shutdown", None))
                self._conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
            self._conn.close()
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)
