"""Saturation bench for the service: requests/s and latency vs shards.

For each shard count the bench boots a fresh in-process service (process
backend by default — each shard's crypto in its own worker process),
drives the seeded loadgen workload to saturation over loopback TCP, and
records requests/s plus p50/p99 latency.  The report section feeds
``serve.*`` entries of the BENCH gate.

What is gated vs recorded follows the harness's host-portability rule,
with one serve-specific nuance:

* **Gated**: ``serve.scaling.rps_N_over_1`` — the same-run throughput
  ratio of N shards over 1 shard.  It is host-relative (both sides of the
  ratio come from the same machine in the same run) and monotone in the
  right direction: more cores can only raise it, so a cross-host diff can
  never *falsely trip* the gate.  The recorded ``host_cpus`` tells a
  reader how much scaling was physically possible: on a 1-core host the
  honest expectation is ~1.0 (four worker processes timesharing one core),
  and the ≥2x acceptance bar is asserted by CI on multi-core runners, not
  by this gate.
* **Recorded only**: absolute rps and p50/p99 milliseconds — wall-clock
  absolutes, meaningless across machines.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Callable

from repro.serve.client import loadgen
from repro.serve.server import SecureMemoryService, ServeConfig

__all__ = ["run_serve_bench"]

#: shard counts the full bench sweeps (quick mode trims to its own set)
_SHARD_COUNTS = (1, 2, 4)


async def _measure_point(shards: int, *, backend: str, scheme: str,
                         workload: dict[str, Any]) -> dict[str, Any]:
    service = SecureMemoryService(ServeConfig(
        scheme=scheme,
        num_shards=shards,
        backend=backend,
        queue_depth=256,
        batch_max=64,
        # small per-(tenant, shard) cache vs the loadgen footprint: the
        # workload must miss, so every request exercises the
        # decrypt/verify batch path, not the L2
        l2_size=4 * 1024,
    ))
    await service.start()
    try:
        host, port = service.address
        result = await loadgen(host, port, **workload)
    finally:
        await service.stop()
    if result.errors:
        raise RuntimeError(
            f"serve bench at {shards} shards hit {result.errors} "
            f"non-BUSY errors: {result.error_details[:3]}")
    return result.to_dict()


def run_serve_bench(*, quick: bool = False, backend: str = "process",
                    scheme: str = "split+gcm", seed: int = 1234,
                    progress: Callable[[str], None] | None = None
                    ) -> dict[str, Any]:
    """Sweep shard counts; returns the ``serve`` section of a BENCH report."""
    note = progress if progress is not None else (lambda _msg: None)
    shard_counts = (1, 2) if quick else _SHARD_COUNTS
    # footprint far beyond the per-(tenant, shard) L2: with 4 KiB caches
    # and a 64 KiB/tenant working set, nearly every block is a miss and
    # the measured requests/s is crypto-path throughput
    workload: dict[str, Any] = {
        "tenants": 2,
        "connections": 2 if quick else 8,
        "requests": 20 if quick else 150,
        "batch": 8,
        "read_fraction": 0.65,
        "footprint_blocks": 128 if quick else 1024,
        "seed": seed,
    }
    if quick:
        # quick smoke (subprocess tests, --quick): inline shards, no
        # spawn cost; scaling numbers are not meaningful here and quick
        # reports only ever gate against quick baselines
        backend = "inline"
    points: dict[str, Any] = {}
    for shards in shard_counts:
        note(f"bench: serve saturation at {shards} shard(s) "
             f"({backend} backend)")
        points[str(shards)] = asyncio.run(_measure_point(
            shards, backend=backend, scheme=scheme, workload=workload))
    base_rps = points[str(shard_counts[0])]["rps"]
    scaling = {
        f"rps_{shards}_over_1": (points[str(shards)]["rps"] / base_rps
                                 if base_rps > 0 else 0.0)
        for shards in shard_counts[1:]
    }
    return {
        "backend": backend,
        "scheme": scheme,
        "host_cpus": os.cpu_count() or 1,
        "shard_counts": list(shard_counts),
        "workload": workload,
        "points": points,
        "scaling": scaling,
    }
