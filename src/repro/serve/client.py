"""Asyncio client and seeded load generator for the secure-memory service.

:class:`ServeClient` pipelines requests over one connection: every request
gets a fresh id, responses are matched back by id by a reader task, so
many ops can be in flight concurrently.  ``ok: false`` responses surface
as :class:`ServeError` with the wire error code attached — ``BUSY`` is an
ordinary, retryable outcome, not a failure.

:func:`loadgen` drives a mixed read/write workload against a running
server: ``connections`` concurrent clients, round-robin over ``tenants``
tenants, seeded request streams (reproducible), bounded ``BUSY`` retries
with exponential backoff, and per-request latency capture.  The result
carries requests/s and p50/p99 latency — the numbers the saturation bench
and the CI smoke job consume.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.serve.protocol import (
    ErrorCode,
    ProtocolError,
    encode_frame,
    read_frame,
)

__all__ = ["LoadgenResult", "ServeClient", "ServeError", "loadgen",
           "run_loadgen"]


class ServeError(RuntimeError):
    """An ``ok: false`` response; ``code`` is the wire error code."""

    def __init__(self, code: str, detail: str):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


#: distinguishes "request(timeout=None) — wait forever" from "no timeout
#: argument — use the client default"
_UNSET = object()


class ServeClient:
    """One pipelined connection to the service.

    ``timeout`` is the default per-request deadline in seconds (``None``
    waits forever); each :meth:`request` may override it.  A request that
    misses its deadline raises :class:`ServeError` with code ``TIMEOUT``
    and abandons only that request — the connection and every other
    in-flight request stay healthy, so one hung shard cannot wedge a
    pipelined sweep loop.
    """

    def __init__(self, host: str, port: int,
                 timeout: float | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._pump: asyncio.Task | None = None
        self._write_lock = asyncio.Lock()

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._pump = asyncio.ensure_future(self._pump_responses())

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
        if self._pump is not None:
            await self._pump
        self._fail_pending(ConnectionError("client closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _pump_responses(self) -> None:
        try:
            while True:
                response = await read_frame(self._reader)
                if response is None:
                    break
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ProtocolError, ConnectionError, asyncio.CancelledError):
            pass
        self._fail_pending(ConnectionError("connection lost"))

    async def request(self, op: str, *, timeout: float | None = _UNSET,
                      **fields: Any) -> dict[str, Any]:
        """Send one request, await its matched response; raise ServeError
        on ``ok: false``.

        ``timeout`` (seconds) overrides the client default for this one
        request; on expiry the pending future is abandoned (its eventual
        response, if any, is dropped by the pump) and :class:`ServeError`
        with code ``TIMEOUT`` surfaces to the caller.
        """
        if self._writer is None:
            raise RuntimeError("client is not connected")
        if timeout is _UNSET:
            timeout = self.timeout
        self._next_id += 1
        request_id = self._next_id
        payload = {"id": request_id, "op": op, **fields}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        async with self._write_lock:
            self._writer.write(encode_frame(payload))
            await self._writer.drain()
        if timeout is None:
            response = await future
        else:
            try:
                response = await asyncio.wait_for(
                    asyncio.shield(future), timeout)
            except asyncio.TimeoutError:
                # abandon this request only: the wire id is never reused,
                # so a straggler response is popped and dropped harmlessly
                self._pending.pop(request_id, None)
                future.cancel()
                raise ServeError(
                    ErrorCode.TIMEOUT,
                    f"no response to {op!r} (id {request_id}) within "
                    f"{timeout}s") from None
        if not response.get("ok"):
            raise ServeError(response.get("error", ErrorCode.INTERNAL),
                             response.get("detail", ""))
        return response

    # -- convenience wrappers ----------------------------------------------

    async def ping(self) -> dict:
        return await self.request("ping")

    async def open_tenant(self, tenant: str,
                          recovery: str | None = None) -> dict:
        return await self.request("open_tenant", tenant=tenant,
                                  recovery=recovery)

    async def close_tenant(self, tenant: str, token: str) -> dict:
        return await self.request("close_tenant", tenant=tenant, token=token)

    async def rotate_epoch(self, tenant: str, token: str) -> int:
        response = await self.request("rotate_epoch", tenant=tenant,
                                      token=token)
        return response["epoch"]

    async def read(self, tenant: str, token: str,
                   addresses: list[int]) -> list[bytes]:
        response = await self.request("read", tenant=tenant, token=token,
                                      addresses=addresses)
        return [bytes.fromhex(block) for block in response["data"]]

    async def write(self, tenant: str, token: str,
                    writes: list[tuple[int, bytes]]) -> int:
        wire = [[address, data.hex()] for address, data in writes]
        response = await self.request("write", tenant=tenant, token=token,
                                      writes=wire)
        return response["written"]

    async def corrupt(self, tenant: str, token: str, address: int) -> dict:
        return await self.request("corrupt", tenant=tenant, token=token,
                                  address=address)

    async def metrics(self, tenant: str, token: str) -> dict:
        return await self.request("metrics", tenant=tenant, token=token)

    async def stats(self) -> dict:
        return await self.request("stats")


@dataclass
class LoadgenResult:
    """Outcome of one load-generation run."""

    requests: int                  # completed memory ops (reads + writes)
    reads: int
    writes: int
    blocks: int                    # total blocks moved
    busy_retries: int              # BUSY responses absorbed by backoff
    errors: int                    # non-BUSY ServeErrors (normally 0)
    elapsed_s: float
    p50_ms: float
    p99_ms: float
    tenants: int
    connections: int
    error_details: list[str] = field(default_factory=list)

    @property
    def rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "reads": self.reads,
            "writes": self.writes,
            "blocks": self.blocks,
            "busy_retries": self.busy_retries,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "rps": self.rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "tenants": self.tenants,
            "connections": self.connections,
        }


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _workload_plan(workload: str, *, needed: int, footprint: int,
                   block_size: int, seed: int,
                   connection_index: int) -> tuple[list[int], list[bool]]:
    """Per-connection (addresses, write flags) shaped like ``workload``.

    Workload addresses are folded into the tenant footprint block-wise
    (``(addr // block) % footprint``), preserving the stream's reuse and
    locality structure at the service's scale.  Generator workloads get a
    per-connection seed; a recorded trace is shared, with each connection
    replaying from its own rotated offset (cycling if the recording is
    shorter than the run).
    """
    from repro.workloads import (
        is_trace_workload,
        load_trace,
        resolve_trace,
        trace_path_of,
    )

    if is_trace_workload(workload):
        trace = load_trace(trace_path_of(workload))
        start = (connection_index * needed) % len(trace)
        indices = [(start + i) % len(trace) for i in range(needed)]
        raw = [trace.addrs[i] for i in indices]
        flags = [trace.writes[i] for i in indices]
    else:
        trace = resolve_trace(workload, needed,
                              seed=seed + connection_index)
        raw = trace.addrs
        flags = list(trace.writes)
    addresses = [(addr // block_size) % footprint * block_size
                 for addr in raw]
    return addresses, flags


async def loadgen(host: str, port: int, *,
                  tenants: int = 2,
                  connections: int = 4,
                  requests: int = 200,
                  batch: int = 4,
                  read_fraction: float = 0.65,
                  footprint_blocks: int = 512,
                  seed: int = 1234,
                  max_busy_retries: int = 50,
                  recovery: str | None = None,
                  workload: str | None = None) -> LoadgenResult:
    """Drive a seeded mixed workload; returns latency/throughput stats.

    ``requests`` is per connection; each request names ``batch`` random
    block addresses inside a ``footprint_blocks``-block working set (per
    tenant).  The footprint is written once up front so reads always hit
    initialized, MAC-covered data.

    ``workload`` (a SPEC app, scenario name, or recorded trace — anything
    :func:`repro.workloads.resolve_trace` accepts) replaces the
    uniform-random address stream with that workload's access pattern,
    folded into the footprint; each request's read/write type then follows
    the workload's write flags instead of ``read_fraction``.
    """
    opened: list[tuple[str, str]] = []       # (tenant, token)
    async with ServeClient(host, port) as admin:
        probe = await admin.open_tenant("loadgen-0", recovery)
        block_size = probe["block_size"]
        tenant_bytes = probe["tenant_bytes"]
        opened.append(("loadgen-0", probe["token"]))
        for index in range(1, tenants):
            name = f"loadgen-{index}"
            response = await admin.open_tenant(name, recovery)
            opened.append((name, response["token"]))
        footprint = min(footprint_blocks, tenant_bytes // block_size)
        rng = random.Random(seed)
        # warm the footprint: every later read sees written data
        for tenant, token in opened:
            for start in range(0, footprint, 64):
                stop = min(start + 64, footprint)
                await admin.write(tenant, token, [
                    (block * block_size, rng.randbytes(block_size))
                    for block in range(start, stop)])

    latencies: list[float] = []
    counters = {"reads": 0, "writes": 0, "blocks": 0, "busy": 0,
                "errors": 0}
    error_details: list[str] = []

    async def one_connection(connection_index: int) -> None:
        rng = random.Random(f"{seed}:{connection_index}")
        tenant, token = opened[connection_index % len(opened)]
        plan = None
        if workload is not None:
            plan = _workload_plan(
                workload, needed=requests * batch, footprint=footprint,
                block_size=block_size, seed=seed,
                connection_index=connection_index)
        async with ServeClient(host, port) as client:
            for request_index in range(requests):
                if plan is None:
                    addresses = [
                        rng.randrange(footprint) * block_size
                        for _ in range(batch)]
                    is_read = rng.random() < read_fraction
                else:
                    base = request_index * batch
                    addresses = plan[0][base:base + batch]
                    # the request is a write iff the workload says the
                    # batch's leading reference is a store
                    is_read = not plan[1][base]
                start = time.perf_counter()
                for attempt in range(max_busy_retries + 1):
                    try:
                        if is_read:
                            await client.read(tenant, token, addresses)
                        else:
                            await client.write(tenant, token, [
                                (address, rng.randbytes(block_size))
                                for address in addresses])
                        break
                    except ServeError as exc:
                        if exc.code == ErrorCode.BUSY and \
                                attempt < max_busy_retries:
                            counters["busy"] += 1
                            await asyncio.sleep(
                                min(0.1, 0.001 * (2 ** min(attempt, 6))))
                            continue
                        counters["errors"] += 1
                        if len(error_details) < 20:
                            error_details.append(str(exc))
                        break
                latencies.append(time.perf_counter() - start)
                counters["reads" if is_read else "writes"] += 1
                counters["blocks"] += batch

    started = time.perf_counter()
    try:
        await asyncio.gather(*[one_connection(index)
                               for index in range(connections)])
    finally:
        # leave the server reusable: a second loadgen run must be able to
        # open the same tenant names again
        async with ServeClient(host, port) as admin:
            for tenant, token in opened:
                await admin.close_tenant(tenant, token)
    elapsed = time.perf_counter() - started
    latencies.sort()
    return LoadgenResult(
        requests=counters["reads"] + counters["writes"],
        reads=counters["reads"],
        writes=counters["writes"],
        blocks=counters["blocks"],
        busy_retries=counters["busy"],
        errors=counters["errors"],
        elapsed_s=elapsed,
        p50_ms=_percentile(latencies, 0.50) * 1e3,
        p99_ms=_percentile(latencies, 0.99) * 1e3,
        tenants=len(opened),
        connections=connections,
        error_details=error_details,
    )


def run_loadgen(host: str, port: int, **kwargs: Any) -> LoadgenResult:
    """Synchronous wrapper around :func:`loadgen`."""
    return asyncio.run(loadgen(host, port, **kwargs))
