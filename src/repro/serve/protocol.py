"""Length-prefixed JSON wire protocol for the secure-memory service.

One frame is ``4-byte big-endian payload length`` + ``UTF-8 JSON object``.
Requests carry ``{"id": <int>, "op": <str>, ...}``; responses echo the id
with ``{"id": ..., "ok": true, ...}`` or
``{"id": ..., "ok": false, "error": <code>, "detail": <str>}``.  Ids let a
client pipeline many requests over one connection and match responses out
of order.

Block payloads travel as hex strings (a 64-byte block is 128 hex chars) —
small enough that framing stays trivial and every frame remains
printable/debuggable.  The frame size cap bounds per-connection memory:
an attacker declaring a 2 GB frame is rejected at the 4-byte header.

Malformed input never kills the server: a bad length prefix, an oversized
declaration, truncated payload bytes, non-JSON, or a non-object document
all raise :class:`ProtocolError`, which the connection handler converts
into one error response (or a connection drop when the stream can no
longer be framed).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "ErrorCode",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "read_frame",
]

#: hard cap on one frame's JSON payload (1 MiB); bounds per-connection
#: buffering regardless of what length the peer declares
MAX_FRAME_BYTES = 1 << 20

_LENGTH_BYTES = 4


class ProtocolError(ValueError):
    """A frame violated the wire format (length, size, JSON, or shape)."""


class ErrorCode:
    """Stable error vocabulary carried in ``{"ok": false, "error": ...}``."""

    BUSY = "BUSY"                    # admission control rejected the request
    BAD_REQUEST = "BAD_REQUEST"      # malformed op/arguments
    UNKNOWN_OP = "UNKNOWN_OP"
    NO_TENANT = "NO_TENANT"          # tenant not opened on this server
    TENANT_EXISTS = "TENANT_EXISTS"
    AUTH = "AUTH"                    # missing/wrong tenant token
    INTEGRITY = "INTEGRITY"          # MAC/tree verification failed
    QUARANTINED = "QUARANTINED"      # page fenced by the quarantine policy
    HALTED = "HALTED"                # tenant halted by the halt policy
    SHUTDOWN = "SHUTDOWN"            # server is draining/stopping
    TIMEOUT = "TIMEOUT"              # client-side per-request deadline hit
    INTERNAL = "INTERNAL"


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one message into its wire frame."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be an object, got {type(payload).__name__}")
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap")
    return len(body).to_bytes(_LENGTH_BYTES, "big") + body


def decode_frame(body: bytes) -> dict[str, Any]:
    """Decode one frame's payload bytes (the part after the length)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, "
            f"got {type(payload).__name__}")
    return payload


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame from a stream; ``None`` on clean EOF between frames.

    EOF in the *middle* of a frame (inside the length prefix or the
    payload) is a truncation and raises :class:`ProtocolError`.
    """
    header = await reader.read(_LENGTH_BYTES)
    if not header:
        return None
    while len(header) < _LENGTH_BYTES:
        more = await reader.read(_LENGTH_BYTES - len(header))
        if not more:
            raise ProtocolError(
                f"connection closed inside a frame header "
                f"({len(header)}/{_LENGTH_BYTES} bytes)")
        header += more
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer declared a {length}-byte frame "
            f"(cap is {MAX_FRAME_BYTES})")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed inside a frame: expected {length} payload "
            f"bytes, got {len(exc.partial)}") from exc
    return decode_frame(body)


def error_response(request_id: Any, code: str, detail: str) -> dict[str, Any]:
    """The canonical error reply shape."""
    return {"id": request_id, "ok": False, "error": code, "detail": detail}


def ok_response(request_id: Any, **fields: Any) -> dict[str, Any]:
    """The canonical success reply shape."""
    payload: dict[str, Any] = {"id": request_id, "ok": True}
    payload.update(fields)
    return payload
