"""Multi-tenant secure-memory service over sharded functional systems.

``repro.serve`` turns the single-client :class:`~repro.core.SecureMemorySystem`
into a network-facing service:

* :mod:`repro.serve.protocol` — the length-prefixed JSON wire format and
  its error-code vocabulary;
* :mod:`repro.serve.shard` — the shard backends: a synchronous
  :class:`ShardCore` executing coalesced op batches against per-tenant
  systems, runnable inline (deterministic tests) or inside a spawned
  worker process (real parallelism across shards);
* :mod:`repro.serve.server` — the asyncio front end: per-shard request
  coalescing into the ``read_blocks``/``write_blocks`` batch path,
  bounded admission control with explicit ``BUSY`` backpressure,
  per-tenant key epochs / address spaces / recovery policies, and a
  ``metrics`` snapshot request;
* :mod:`repro.serve.client` — an asyncio client plus the seeded
  load generator behind ``python -m repro loadgen``;
* :mod:`repro.serve.bench` — the saturation bench (p50/p99 latency and
  requests/s vs shard count) feeding the ``serve.*`` section of the
  BENCH report.
"""

from repro.serve.client import (
    LoadgenResult,
    ServeClient,
    ServeError,
    loadgen,
    run_loadgen,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ErrorCode,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
)
from repro.serve.server import (
    SecureMemoryService,
    ServeConfig,
    run_server,
)
from repro.serve.shard import InlineShard, ProcessShard, ShardCore

__all__ = [
    "ErrorCode",
    "InlineShard",
    "LoadgenResult",
    "MAX_FRAME_BYTES",
    "ProcessShard",
    "ProtocolError",
    "SecureMemoryService",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ShardCore",
    "decode_frame",
    "encode_frame",
    "loadgen",
    "read_frame",
    "run_loadgen",
    "run_server",
]
