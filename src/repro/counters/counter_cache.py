"""The on-chip counter cache (a.k.a. sequence number cache, SNC).

Section 5's default is 32KB, 8-way, 64-byte blocks.  A counter-cache block
holds one counter block of the active scheme — for split counters that is
one major counter plus all 64 minors of an encryption page, so a single
lookup resolves both halves of the split counter and a single miss fetches
both (the design point argued for in section 4.1).

Counter blocks are addressed by their dense index within a reserved region
of physical memory; ``CounterCache`` translates indices into that region's
addresses so the generic :class:`repro.memory.cache.Cache` machinery and
the DRAM serialization can be reused unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Cache, Eviction
from repro.obs.tracer import Tracer


@dataclass
class CounterAccessOutcome:
    """Result of resolving a counter through the cache."""

    hit: bool
    counter_block_index: int
    eviction: Eviction | None = None


class CounterCache:
    """Counter cache keyed by counter-block index."""

    #: optional observability hook; lookups become "counter" track instants
    #: (the timing layer adds richer half-miss events on the same track)
    tracer: Tracer | None = None

    def __init__(self, size_bytes: int = 32 * 1024, assoc: int = 8,
                 block_size: int = 64, region_base: int = 0):
        self.cache = Cache(size_bytes, assoc, block_size, name="counter")
        self.block_size = block_size
        self.region_base = region_base

    def memory_address(self, counter_block_index: int) -> int:
        """DRAM address of a counter block inside the counter region."""
        return self.region_base + counter_block_index * self.block_size

    def _cache_address(self, counter_block_index: int) -> int:
        # Index the cache by the dense counter-block index so that counter
        # blocks of any region placement map uniformly over the sets.
        return counter_block_index * self.block_size

    def access(self, counter_block_index: int, write: bool = False,
               now: float = 0.0) -> CounterAccessOutcome:
        """Look up a counter block; miss leaves the fill to the caller.

        ``now`` is purely observational — the timing layer passes the
        current cycle so traced lookup events land on the right timestamp.
        """
        hit = self.cache.access(self._cache_address(counter_block_index),
                                write=write)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("counter", "lookup-hit" if hit else "lookup-miss",
                           now, index=counter_block_index, write=write)
        return CounterAccessOutcome(hit=hit,
                                    counter_block_index=counter_block_index)

    def fill(self, counter_block_index: int, dirty: bool = False) -> Eviction | None:
        """Install a counter block, returning any displaced block.

        The returned eviction's address is translated back to a counter
        block *index* via :meth:`evicted_index`.
        """
        return self.cache.fill(self._cache_address(counter_block_index),
                               dirty=dirty)

    def evicted_index(self, eviction: Eviction) -> int:
        """Counter-block index of an evicted line."""
        return eviction.address // self.block_size

    def contains(self, counter_block_index: int) -> bool:
        return self.cache.contains(self._cache_address(counter_block_index))

    def mark_dirty(self, counter_block_index: int) -> bool:
        return self.cache.mark_dirty(self._cache_address(counter_block_index))

    def invalidate(self, counter_block_index: int) -> None:
        self.cache.invalidate(self._cache_address(counter_block_index))

    @property
    def stats(self):
        return self.cache.stats

    # -- checkpoint support ------------------------------------------------

    def state_dict(self) -> dict:
        return self.cache.state_dict()

    def load_state(self, state: dict) -> None:
        self.cache.load_state(state)
