"""Split counters: per-page major counter plus tiny per-block minor counters.

Section 2 / Figure 2 of the paper.  Each *encryption page* (4KB with 64-byte
blocks) owns one 64-bit major counter M shared by its 64 data blocks, and
each block has a 7-bit minor counter.  A block's encryption counter is the
concatenation M || m.  The whole set — one major plus 64 minors — packs
exactly into one 64-byte counter-cache block (64 + 64*7 = 512 bits), giving
the headline ratio of *one byte of counter storage per 64-byte data block*.

Minor-counter overflow increments the page's major counter and re-encrypts
only that page (handled by the RSR machinery in :mod:`repro.core.rsr`);
major counters are sized to never overflow in the machine's lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counters.base import (
    CounterScheme,
    IncrementResult,
    OverflowAction,
)
from repro.obs.metrics import fields_state, load_fields_state, reset_fields


@dataclass
class SplitCounterStats:
    """Split-scheme activity used by the re-encryption experiments."""

    increments: int = 0
    minor_overflows: int = 0

    def reset(self) -> None:
        reset_fields(self)


class SplitCounterScheme(CounterScheme):
    """Major/minor split counters (the paper's proposal)."""

    name = "split"

    def __init__(self, block_size: int = 64, minor_bits: int = 7,
                 major_bits: int = 64):
        super().__init__(block_size)
        if not 1 <= minor_bits <= 16:
            raise ValueError("minor_bits must be in [1, 16]")
        self.minor_bits = minor_bits
        self.major_bits = major_bits
        # One counter block = one major counter + one minor per data block,
        # sized to fill one cache block: with 7-bit minors and a 64-bit
        # major, 64 blocks fit exactly (the paper's default).  For other
        # minor widths we keep the page at block_size data blocks per page,
        # matching the paper's 32-byte-block example (32 six-bit minors).
        self.blocks_per_page = block_size
        self.page_size = self.blocks_per_page * block_size
        self.bits_per_block = minor_bits + major_bits // self.blocks_per_page
        self._minor_mask = (1 << minor_bits) - 1
        self._majors: dict[int, int] = {}
        self._minors: dict[int, int] = {}
        self.stats = SplitCounterStats()

    # -- page/block geometry -------------------------------------------------

    def page_of(self, block_address: int) -> int:
        """Encryption-page index containing a data block."""
        return block_address // self.page_size

    def page_base_address(self, page_index: int) -> int:
        """First data-block address of an encryption page."""
        return page_index * self.page_size

    def blocks_of_page(self, page_index: int) -> list[int]:
        """All data-block addresses belonging to an encryption page."""
        base = self.page_base_address(page_index)
        return [base + i * self.block_size for i in range(self.blocks_per_page)]

    # -- counter values --------------------------------------------------------

    def major_counter(self, page_index: int) -> int:
        return self._majors.get(page_index, 0)

    def minor_counter(self, block_address: int) -> int:
        return self._minors.get(block_address, 0)

    def _concat(self, major: int, minor: int) -> int:
        return (major << self.minor_bits) | minor

    def counter_for_block(self, block_address: int) -> int:
        page = self.page_of(block_address)
        return self._concat(self.major_counter(page),
                            self.minor_counter(block_address))

    def counter_with_major(self, block_address: int, major: int) -> int:
        """Counter using an explicit (old) major — the RSR decryption path."""
        return self._concat(major, self.minor_counter(block_address))

    def increment(self, block_address: int) -> IncrementResult:
        self.stats.increments += 1
        page = self.page_of(block_address)
        minor = self.minor_counter(block_address) + 1
        if minor <= self._minor_mask:
            self._minors[block_address] = minor
            return IncrementResult(
                counter=self._concat(self.major_counter(page), minor)
            )
        # Minor overflow: bump the major, reset every minor on the page.
        # The caller must re-encrypt the page (RSR machinery); the block
        # triggering the overflow is written with the new major and minor 1.
        self.stats.minor_overflows += 1
        self.begin_page_reencryption(page)
        self._minors[block_address] = 1
        return IncrementResult(
            counter=self._concat(self.major_counter(page), 1),
            action=OverflowAction.PAGE_REENCRYPTION,
            page_address=page,
        )

    def begin_page_reencryption(self, page_index: int) -> int:
        """Advance the page's major counter; minors stay for now.

        Returns the *old* major counter, which the RSR stores so that
        not-yet-re-encrypted blocks can still be decrypted.  Minor counters
        are *not* zeroed here: each block keeps its old minor (needed to
        decrypt it under the old major) until the RSR processes that block
        and calls :meth:`reset_minor` — matching the per-block "minor
        counter is reset, the done bit is set" sequence of section 4.2.
        """
        old_major = self.major_counter(page_index)
        self._majors[page_index] = old_major + 1
        return old_major

    def reset_minor(self, block_address: int) -> None:
        """Zero one block's minor counter (per-block re-encryption step)."""
        self._minors.pop(block_address, None)

    # -- checkpoint support ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "majors": dict(self._majors),
            "minors": dict(self._minors),
            "stats": fields_state(self.stats),
        }

    def load_state(self, state: dict) -> None:
        self._majors = dict(state["majors"])
        self._minors = dict(state["minors"])
        load_fields_state(self.stats, state["stats"])

    # -- memory layout -----------------------------------------------------------

    def counter_block_address(self, block_address: int) -> int:
        return self.page_of(block_address)

    @property
    def data_blocks_per_counter_block(self) -> int:
        return self.blocks_per_page

    # -- serialization -----------------------------------------------------------

    def encode_counter_block(self, counter_block_index: int) -> bytes:
        """Pack major (8 bytes) + bit-packed minors into one block image."""
        page = counter_block_index
        out = bytearray(self.block_size)
        out[0:8] = self.major_counter(page).to_bytes(8, "big")
        bits = 0
        acc = 0
        pos = 8
        for addr in self.blocks_of_page(page):
            acc = (acc << self.minor_bits) | self.minor_counter(addr)
            bits += self.minor_bits
            while bits >= 8:
                bits -= 8
                out[pos] = (acc >> bits) & 0xFF
                pos += 1
        if bits:
            out[pos] = (acc << (8 - bits)) & 0xFF
        return bytes(out)

    def decode_counter_block(self, counter_block_index: int,
                             data: bytes) -> None:
        """Unpack a counter-block image fetched from (untrusted) DRAM."""
        page = counter_block_index
        self._majors[page] = int.from_bytes(data[0:8], "big")
        acc = int.from_bytes(data[8:], "big")
        total_bits = (len(data) - 8) * 8
        addresses = self.blocks_of_page(page)
        for i, addr in enumerate(addresses):
            shift = total_bits - (i + 1) * self.minor_bits
            minor = (acc >> shift) & self._minor_mask
            if minor:
                self._minors[addr] = minor
            else:
                self._minors.pop(addr, None)
