"""Counter prediction with pad precomputation (Shi et al. [16] baseline).

The comparison scheme of Figure 6.  Instead of caching counters on-chip, it
keeps a *base counter* per page (conceptually in the TLB/page tables) and,
on an L2 miss, speculatively precomputes N pads using the predicted counter
values base, base+1, ..., base+N-1 (N = 5 as recommended by [16]).  The
block's actual 64-bit counter is stored in memory and fetched alongside the
data block to verify the prediction, adding 8 bytes of traffic per 64-byte
block fetch.

Costs the paper highlights:

* N pads per decryption multiplies AES-engine demand N-fold — one engine
  produces timely pads for only ~61% of decryptions; two engines reach ~96%.
* 64-bit per-block counters cost 1/8 of memory capacity and extra bus
  bandwidth (no small split counters to fetch instead).
* Prediction accuracy decays over time as per-block counters within a page
  drift apart (Figure 6b), while a counter cache's hit rate holds steady.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counters.base import (
    CounterScheme,
    IncrementResult,
    OverflowAction,
)
from repro.obs.metrics import fields_state, load_fields_state, reset_fields

DEFAULT_PREDICTION_DEPTH = 5


@dataclass
class PredictionStats:
    """Prediction accuracy accounting for Figure 6."""

    predictions: int = 0
    correct: int = 0
    increments: int = 0

    @property
    def prediction_rate(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0

    def reset(self) -> None:
        reset_fields(self)


class CounterPredictionScheme(CounterScheme):
    """64-bit per-block counters, predicted from a per-page base."""

    name = "prediction"

    def __init__(self, block_size: int = 64, page_size: int = 4096,
                 depth: int = DEFAULT_PREDICTION_DEPTH):
        super().__init__(block_size)
        if depth < 1:
            raise ValueError("prediction depth must be >= 1")
        self.page_size = page_size
        self.depth = depth
        self.counter_bits = 64
        self.bits_per_block = 64
        self._counters: dict[int, int] = {}
        self._bases: dict[int, int] = {}
        self.stats = PredictionStats()

    def _page_of(self, block_address: int) -> int:
        return block_address // self.page_size

    def counter_for_block(self, block_address: int) -> int:
        return self._counters.get(block_address, 0)

    def base_counter(self, block_address: int) -> int:
        return self._bases.get(self._page_of(block_address), 0)

    def predict(self, block_address: int) -> tuple[bool, list[int]]:
        """Predict the block's counter on a data fetch.

        Returns ``(correct, candidates)`` where ``candidates`` are the
        ``depth`` counter values whose pads get precomputed.  Statistics are
        updated; on a miss the page base resynchronizes to the actual value
        (modelling the base-update policy of [16]).
        """
        base = self.base_counter(block_address)
        candidates = [base + k for k in range(self.depth)]
        actual = self.counter_for_block(block_address)
        self.stats.predictions += 1
        correct = base <= actual < base + self.depth
        if correct:
            self.stats.correct += 1
        else:
            self._bases[self._page_of(block_address)] = actual
        return correct, candidates

    def increment(self, block_address: int) -> IncrementResult:
        self.stats.increments += 1
        value = self._counters.get(block_address, 0) + 1
        self._counters[block_address] = value
        # 64-bit counters never overflow on simulated timescales.
        return IncrementResult(counter=value, action=OverflowAction.NONE)

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "counters": dict(self._counters),
            "bases": dict(self._bases),
            "stats": fields_state(self.stats),
        }

    def load_state(self, state: dict) -> None:
        self._counters = dict(state["counters"])
        self._bases = dict(state["bases"])
        load_fields_state(self.stats, state["stats"])

    # -- layout (same as 64-bit monolithic) ---------------------------------

    @property
    def data_blocks_per_counter_block(self) -> int:
        return self.block_size * 8 // self.counter_bits

    def counter_block_address(self, block_address: int) -> int:
        return (block_address // self.block_size) // (
            self.data_blocks_per_counter_block
        )

    def _block_addresses_of(self, counter_block_index: int) -> list[int]:
        per = self.data_blocks_per_counter_block
        first = counter_block_index * per
        return [(first + i) * self.block_size for i in range(per)]

    def encode_counter_block(self, counter_block_index: int) -> bytes:
        out = bytearray()
        for addr in self._block_addresses_of(counter_block_index):
            out.extend(self.counter_for_block(addr).to_bytes(8, "big"))
        return bytes(out)

    def decode_counter_block(self, counter_block_index: int,
                             data: bytes) -> None:
        for i, addr in enumerate(self._block_addresses_of(counter_block_index)):
            value = int.from_bytes(data[i * 8:(i + 1) * 8], "big")
            if value:
                self._counters[addr] = value
            else:
                self._counters.pop(addr, None)
