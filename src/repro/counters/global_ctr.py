"""Globally incremented counter scheme (Table 2's Global32b column).

A single on-chip counter is incremented on *every* write-back system-wide
and its value at encryption time is stored per block (the stored value is
still needed to decrypt).  Because the global counter advances at the
aggregate write-back rate rather than any one block's rate, a 32-bit global
counter overflows within minutes (Table 2) — far sooner than 32-bit
per-block counters.  Its one advantage, noted in section 6.1, is that
counter values never repeat, so the counter-replay pitfall of section 4.3
cannot arise without needing counter authentication.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counters.base import (
    CounterScheme,
    IncrementResult,
    OverflowAction,
)
from repro.obs.metrics import fields_state, load_fields_state, reset_fields


@dataclass
class GlobalCounterStats:
    increments: int = 0
    overflows: int = 0

    def reset(self) -> None:
        reset_fields(self)


class GlobalCounterScheme(CounterScheme):
    """One on-chip counter; per-block snapshots stored in memory."""

    def __init__(self, counter_bits: int = 32, block_size: int = 64):
        super().__init__(block_size)
        if counter_bits not in (32, 64):
            raise ValueError("global counter is 32 or 64 bits")
        self.counter_bits = counter_bits
        self.bits_per_block = counter_bits  # stored snapshot per block
        self.name = f"global{counter_bits}b"
        self._mask = (1 << counter_bits) - 1
        self.global_counter = 0
        self._snapshots: dict[int, int] = {}
        self.stats = GlobalCounterStats()

    def counter_for_block(self, block_address: int) -> int:
        return self._snapshots.get(block_address, 0)

    def increment(self, block_address: int) -> IncrementResult:
        self.stats.increments += 1
        if self.global_counter + 1 > self._mask:
            # Wrap: key change + full re-encryption, orchestrated by the
            # caller (snapshots must survive until old blocks decrypt).
            self.stats.overflows += 1
            return IncrementResult(
                counter=1, action=OverflowAction.FULL_REENCRYPTION
            )
        self.global_counter += 1
        self._snapshots[block_address] = self.global_counter
        return IncrementResult(counter=self.global_counter)

    def reset_all_counters(self) -> None:
        """Restart the global counter and forget all snapshots (key change)."""
        self.global_counter = 0
        self._snapshots.clear()

    def set_counter(self, block_address: int, value: int) -> None:
        """Force a snapshot value (used when completing a key change)."""
        if value:
            self._snapshots[block_address] = value
            self.global_counter = max(self.global_counter, value)
        else:
            self._snapshots.pop(block_address, None)

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "global_counter": self.global_counter,
            "snapshots": dict(self._snapshots),
            "stats": fields_state(self.stats),
        }

    def load_state(self, state: dict) -> None:
        self.global_counter = state["global_counter"]
        self._snapshots = dict(state["snapshots"])
        load_fields_state(self.stats, state["stats"])

    # -- layout (identical to monolithic counters of the same width) -------

    @property
    def data_blocks_per_counter_block(self) -> int:
        return self.block_size * 8 // self.counter_bits

    def counter_block_address(self, block_address: int) -> int:
        return (block_address // self.block_size) // (
            self.data_blocks_per_counter_block
        )

    def _block_addresses_of(self, counter_block_index: int) -> list[int]:
        per = self.data_blocks_per_counter_block
        first = counter_block_index * per
        return [(first + i) * self.block_size for i in range(per)]

    def encode_counter_block(self, counter_block_index: int) -> bytes:
        width = self.counter_bits // 8
        out = bytearray()
        for addr in self._block_addresses_of(counter_block_index):
            out.extend(self.counter_for_block(addr).to_bytes(width, "big"))
        return bytes(out)

    def decode_counter_block(self, counter_block_index: int,
                             data: bytes) -> None:
        width = self.counter_bits // 8
        for i, addr in enumerate(self._block_addresses_of(counter_block_index)):
            value = int.from_bytes(data[i * width:(i + 1) * width], "big")
            if value:
                self._snapshots[addr] = value
            else:
                self._snapshots.pop(addr, None)
