"""Counter organizations for counter-mode memory encryption."""

from repro.counters.base import (
    CounterScheme,
    IncrementResult,
    OverflowAction,
)
from repro.counters.counter_cache import CounterAccessOutcome, CounterCache
from repro.counters.global_ctr import GlobalCounterScheme
from repro.counters.monolithic import MonolithicCounterScheme
from repro.counters.prediction import (
    DEFAULT_PREDICTION_DEPTH,
    CounterPredictionScheme,
)
from repro.counters.split import SplitCounterScheme

__all__ = [
    "CounterAccessOutcome",
    "CounterCache",
    "CounterPredictionScheme",
    "CounterScheme",
    "DEFAULT_PREDICTION_DEPTH",
    "GlobalCounterScheme",
    "IncrementResult",
    "MonolithicCounterScheme",
    "OverflowAction",
    "SplitCounterScheme",
]
