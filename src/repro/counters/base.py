"""Counter-organization interface for counter-mode memory encryption.

Every scheme the paper evaluates — split counters, monolithic counters of
8/16/32/64 bits, the on-chip global counter, and the prediction scheme —
answers the same questions:

* what counter value encrypts a given data block right now;
* what happens to that value on a write-back (increment + possible
  overflow), and how expensive the overflow consequence is
  (page re-encryption vs. entire-memory re-encryption);
* how counters are laid out in memory (which *counter block* holds the
  counter for a data block, and how many counter bits each data block
  costs), which determines counter-cache behaviour and bus traffic.

The schemes keep authoritative counter state in plain dictionaries; the
functional secure-memory layer serializes counter blocks into the untrusted
DRAM (so attacks can tamper with them) and the timing layer charges cache
and bus costs using the layout metadata.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass


class OverflowAction(enum.Enum):
    """What a counter overflow forces the system to do."""

    NONE = "none"
    PAGE_REENCRYPTION = "page"       # split counters: one encryption page
    FULL_REENCRYPTION = "memory"     # monolithic/global: key change, all RAM


@dataclass(frozen=True)
class IncrementResult:
    """Outcome of bumping a block's counter on write-back."""

    counter: int                     # value to use for this encryption
    action: OverflowAction = OverflowAction.NONE
    page_address: int | None = None  # affected page for PAGE_REENCRYPTION


class CounterScheme(ABC):
    """Abstract counter organization over a block-granular memory."""

    #: bits of counter storage charged to each data block (storage overhead)
    bits_per_block: int
    #: human-readable scheme name used in benchmark tables
    name: str

    def __init__(self, block_size: int = 64):
        self.block_size = block_size

    # -- counter values ----------------------------------------------------

    @abstractmethod
    def counter_for_block(self, block_address: int) -> int:
        """Current counter value used to encrypt/decrypt ``block_address``."""

    @abstractmethod
    def increment(self, block_address: int) -> IncrementResult:
        """Advance the block's counter for a write-back.

        Returns the counter value the write-back must encrypt with and the
        overflow consequence, if any.  For split counters an overflow has
        already applied the major-counter bump and minor reset when this
        returns (callers then perform the page re-encryption the result
        demands).
        """

    # -- memory layout -----------------------------------------------------

    @abstractmethod
    def counter_block_address(self, block_address: int) -> int:
        """Index of the counter block holding this data block's counter.

        Counter blocks are identified by a dense index (0, 1, 2, ...); the
        secure-memory layer maps indices into a reserved DRAM region.
        """

    @property
    @abstractmethod
    def data_blocks_per_counter_block(self) -> int:
        """How many data blocks share one 64-byte counter block."""

    # -- functional serialization (counter blocks as real bytes) -----------

    @abstractmethod
    def encode_counter_block(self, counter_block_index: int) -> bytes:
        """Serialize one counter block to its in-memory byte image."""

    @abstractmethod
    def decode_counter_block(self, counter_block_index: int,
                             data: bytes) -> None:
        """Load counter state for one counter block from a byte image.

        Used when a counter block is (re-)fetched from the untrusted DRAM —
        this is the path a counter-replay attack corrupts.
        """

    # -- statistics helpers --------------------------------------------------

    def storage_overhead(self) -> float:
        """Counter storage as a fraction of protected data capacity."""
        return self.bits_per_block / (self.block_size * 8)
