"""Monolithic per-block counters — the prior-work baselines (Mono8b..64b).

Each data block owns one n-bit counter (n in {8, 16, 32, 64}).  When any
counter wraps, the only pad-generation parameter left to change is the AES
key, whose change forces re-encryption of the *entire* memory — the
"freeze" the paper's introduction quantifies at nearly one second for 4GB.
Smaller counters improve counter-cache reach but overflow frequently;
Table 2 and Figure 4 explore this trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counters.base import (
    CounterScheme,
    IncrementResult,
    OverflowAction,
)
from repro.obs.metrics import fields_state, load_fields_state, reset_fields


@dataclass
class MonolithicStats:
    """Counts used by Table 2 (overflow rate estimation)."""

    increments: int = 0
    overflows: int = 0
    max_counter: int = 0

    def reset(self) -> None:
        reset_fields(self)


class MonolithicCounterScheme(CounterScheme):
    """Per-block n-bit counters with key-change on overflow."""

    def __init__(self, counter_bits: int, block_size: int = 64):
        super().__init__(block_size)
        if counter_bits not in (8, 16, 32, 64):
            raise ValueError("counter_bits must be 8, 16, 32, or 64")
        self.counter_bits = counter_bits
        self.bits_per_block = counter_bits
        self.name = f"mono{counter_bits}b"
        self._mask = (1 << counter_bits) - 1
        self._counters: dict[int, int] = {}
        self.stats = MonolithicStats()

    def counter_for_block(self, block_address: int) -> int:
        return self._counters.get(block_address, 0)

    def increment(self, block_address: int) -> IncrementResult:
        self.stats.increments += 1
        value = self._counters.get(block_address, 0) + 1
        if value > self._mask:
            # Counter wrap: the key must change and all of memory must be
            # re-encrypted.  Counters are NOT cleared here — the caller
            # must first decrypt everything under the old key and the
            # current counters, then call :meth:`reset_all_counters`, bump
            # the key epoch, and re-encrypt.  The returned counter (1) is
            # the triggering block's value under the new key epoch.
            self.stats.overflows += 1
            return IncrementResult(
                counter=1, action=OverflowAction.FULL_REENCRYPTION
            )
        self._counters[block_address] = value
        self.stats.max_counter = max(self.stats.max_counter, value)
        return IncrementResult(counter=value)

    def reset_all_counters(self) -> None:
        """Zero every counter — performed as part of a key change."""
        self._counters.clear()

    def set_counter(self, block_address: int, value: int) -> None:
        """Force a counter value (used when completing a key change)."""
        if value:
            self._counters[block_address] = value
        else:
            self._counters.pop(block_address, None)

    def fastest_counter(self) -> int:
        """Largest counter value reached — drives Table 2's overflow ETA."""
        return max(self._counters.values(), default=0)

    # -- checkpoint support --------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "counters": dict(self._counters),
            "stats": fields_state(self.stats),
        }

    def load_state(self, state: dict) -> None:
        self._counters = dict(state["counters"])
        load_fields_state(self.stats, state["stats"])

    # -- layout --------------------------------------------------------------

    @property
    def data_blocks_per_counter_block(self) -> int:
        return self.block_size * 8 // self.counter_bits

    def counter_block_address(self, block_address: int) -> int:
        return (block_address // self.block_size) // (
            self.data_blocks_per_counter_block
        )

    def _block_addresses_of(self, counter_block_index: int) -> list[int]:
        per = self.data_blocks_per_counter_block
        first = counter_block_index * per
        return [(first + i) * self.block_size for i in range(per)]

    def encode_counter_block(self, counter_block_index: int) -> bytes:
        width = self.counter_bits // 8
        out = bytearray()
        for addr in self._block_addresses_of(counter_block_index):
            out.extend(self.counter_for_block(addr).to_bytes(width, "big"))
        return bytes(out)

    def decode_counter_block(self, counter_block_index: int,
                             data: bytes) -> None:
        width = self.counter_bits // 8
        for i, addr in enumerate(self._block_addresses_of(counter_block_index)):
            value = int.from_bytes(data[i * width:(i + 1) * width], "big")
            if value:
                self._counters[addr] = value
            else:
                self._counters.pop(addr, None)
