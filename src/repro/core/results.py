"""Shared metadata surface for every ``repro.api`` result object.

Every public entry point (``run``/``profile``/``bench``/``fuzz``) returns a
different result type, but all of them carry the same provenance block: a
:class:`ResultMeta` saying what kind of result this is, which schema
version produced it, a fingerprint of the exact configuration that ran,
and the seed (when the run was seeded).  Harnesses that archive JSON from
several entry points can key on ``meta.config_fingerprint`` to know two
artifacts came from the same design point without diffing whole configs.

:class:`ResultBase` is a deliberately plain (non-dataclass) base so frozen
and mutable dataclass results can both inherit it.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any

#: schema tag stamped into every ResultMeta; bump on breaking renames of
#: result fields so archived JSON is self-describing
RESULT_SCHEMA = "repro-result/1"


def _normalize(value: Any) -> Any:
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _normalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_normalize(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _normalize(v) for k, v in sorted(value.items())}
    return value


#: configuration fields that select a host-side implementation (all
#: implementations are bit-identical) and therefore do not define a design
#: point: two runs differing only here produce the same simulated numbers.
HOST_ONLY_CONFIG_FIELDS = frozenset({"kernel", "sim_engine"})


def config_fingerprint(config: Any) -> str:
    """Stable short digest of a configuration's semantic field contents.

    Enum fields hash by value and nested dataclasses recurse, so two
    configs are fingerprint-equal exactly when they are field-equal —
    including configs built by different paths (constructor vs registry).
    Host-only backend selectors (:data:`HOST_ONLY_CONFIG_FIELDS`) are
    excluded: they change how fast the host computes, never what the
    simulated machine does.
    """
    normalized = _normalize(config)
    if isinstance(normalized, dict):
        for name in HOST_ONLY_CONFIG_FIELDS:
            normalized.pop(name, None)
    payload = json.dumps(normalized, sort_keys=True)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ResultMeta:
    """Provenance block shared by every ``repro.api`` result."""

    kind: str
    schema: str = RESULT_SCHEMA
    config_fingerprint: str = ""
    preset: str = ""
    seed: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


class ResultBase:
    """Common surface of ``run``/``profile``/``bench``/``fuzz`` results.

    Subclasses are dataclasses (frozen or not); this base only pins the
    shared contract: a ``meta`` attribute and its JSON projection.
    """

    meta: ResultMeta | None = None

    def meta_dict(self) -> dict[str, Any] | None:
        return None if self.meta is None else self.meta.to_dict()
