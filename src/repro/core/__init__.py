"""The paper's contribution: split counters + GCM auth, tied together."""

from repro.core.config import (
    AuthMode,
    CounterOrg,
    EncryptionMode,
    PRESETS,
    SecureMemoryConfig,
    baseline_config,
    direct_config,
    gcm_auth_config,
    make_counter_config,
    mono_config,
    mono_gcm_config,
    mono_sha_config,
    prediction_config,
    sha_auth_config,
    split_config,
    split_gcm_config,
    split_sha_config,
    xom_sha_config,
)
from repro.core.response import (
    ResponseMode,
    SystemHalted,
    ViolationResponder,
    expected_forgery_stall_cycles,
)
from repro.core.rsr import RSR, RSRFile
from repro.core.secure_memory import SecureMemorySystem, make_counter_scheme
from repro.core.stats import (
    PadStats,
    ReencryptionStats,
    SecureMemoryStats,
)

__all__ = [
    "AuthMode",
    "CounterOrg",
    "EncryptionMode",
    "PRESETS",
    "PadStats",
    "RSR",
    "RSRFile",
    "ResponseMode",
    "SystemHalted",
    "ViolationResponder",
    "expected_forgery_stall_cycles",
    "ReencryptionStats",
    "SecureMemoryConfig",
    "SecureMemoryStats",
    "SecureMemorySystem",
    "baseline_config",
    "direct_config",
    "gcm_auth_config",
    "make_counter_config",
    "make_counter_scheme",
    "mono_config",
    "mono_gcm_config",
    "mono_sha_config",
    "prediction_config",
    "sha_auth_config",
    "split_config",
    "split_gcm_config",
    "split_sha_config",
    "xom_sha_config",
]
