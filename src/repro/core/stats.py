"""Statistics gathered by the secure-memory layers.

These counters back the paper's non-IPC claims: re-encryption work ratios
(section 4.2's 0.3% figure), the fraction of page blocks already on-chip at
re-encryption time (48%), average page re-encryption duration (5717
cycles), counter growth rates (Table 2), and cache hit/timely-pad rates
(Figures 5 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import reset_fields


@dataclass
class ReencryptionStats:
    """Page (split) and full-memory (monolithic/global) re-encryption work."""

    page_reencryptions: int = 0
    full_reencryptions: int = 0
    blocks_reencrypted: int = 0
    blocks_found_onchip: int = 0
    blocks_fetched: int = 0
    blocks_untouched: int = 0
    total_page_cycles: float = 0.0
    max_concurrent_rsrs: int = 0
    rsr_stalls: int = 0

    @property
    def onchip_fraction(self) -> float:
        """Of blocks needing re-encryption, how many were already cached."""
        processed = self.blocks_found_onchip + self.blocks_fetched
        if not processed:
            return 0.0
        return self.blocks_found_onchip / processed

    @property
    def mean_page_cycles(self) -> float:
        if not self.page_reencryptions:
            return 0.0
        return self.total_page_cycles / self.page_reencryptions

    def reset(self) -> None:
        # Field-driven so newly added counters can never drift (they would
        # silently survive Experiment reuse with a hand-maintained list).
        reset_fields(self)


@dataclass
class PadStats:
    """Timeliness of counter-mode pad generation (Figure 6, middle group)."""

    pad_requests: int = 0
    timely_pads: int = 0

    @property
    def timely_rate(self) -> float:
        return self.timely_pads / self.pad_requests if self.pad_requests else 0.0

    def reset(self) -> None:
        reset_fields(self)


@dataclass
class SecureMemoryStats:
    """Umbrella statistics object for one secure-memory instance."""

    reads: int = 0
    writes: int = 0
    counter_fetches: int = 0
    counter_writebacks: int = 0
    counter_half_misses: int = 0
    integrity_violations: int = 0
    reencryption: ReencryptionStats = field(default_factory=ReencryptionStats)
    pads: PadStats = field(default_factory=PadStats)

    def reset(self) -> None:
        # Recurses into ``reencryption``/``pads`` in place, preserving any
        # references callers hold to the nested stats objects.
        reset_fields(self)
