"""Configuration for secure-memory systems, with presets for every scheme
the paper evaluates.

A :class:`SecureMemoryConfig` names the encryption organization, the
authentication scheme and its strictness, and the sizes of the on-chip
structures.  The same config object drives both the functional layer
(:class:`repro.core.secure_memory.SecureMemorySystem`) and the timing layer
(:class:`repro.sim.timing_memory.TimingSecureMemory`), so an experiment is
one config plus one workload.

Presets mirror the labels used in Figures 4-10: ``split``, ``mono8b`` ..
``mono64b``, ``direct``, ``prediction``, combined ``split_gcm`` /
``mono_gcm`` / ``split_sha`` / ``mono_sha`` / ``xom_sha``, and
authentication-only ``gcm_auth`` / ``sha_auth``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.auth.policies import AuthPolicy
from repro.crypto.mac import VALID_MAC_BITS
from repro.crypto.vector import KERNELS

#: accepted values of :attr:`SecureMemoryConfig.sim_engine`
SIM_ENGINES = ("auto", "scalar", "batched")


class EncryptionMode(enum.Enum):
    """How data blocks are encrypted on their way to memory."""

    NONE = "none"
    DIRECT = "direct"        # AES applied to the data itself (XOM-style)
    COUNTER = "counter"      # counter-mode with a per-scheme counter org
    #: k-of-n Shamir secret sharing (Secure Scattered Memory): DRAM holds n
    #: share blocks per data block, any k reconstruct, fewer reveal nothing
    SHARES = "shares"


class IntegrityMode(enum.Enum):
    """Which anti-replay anchor backs the per-block MACs."""

    #: resolve to the scheme's natural default (the Merkle tree)
    AUTO = "auto"
    #: Bonsai-style Merkle tree over leaf MACs (the paper's design)
    TREE = "tree"
    #: SecDDR-style flat table: leaf MACs grouped into code blocks whose
    #: MAC-of-MACs lives on chip — O(1) verification, no tree walk
    SECDDR = "secddr"


class CounterOrg(enum.Enum):
    """Counter organization for counter-mode encryption."""

    SPLIT = "split"
    MONO8 = "mono8b"
    MONO16 = "mono16b"
    MONO32 = "mono32b"
    MONO64 = "mono64b"
    GLOBAL32 = "global32b"
    GLOBAL64 = "global64b"
    PREDICTION = "prediction"


class AuthMode(enum.Enum):
    """How (and whether) memory is authenticated."""

    NONE = "none"
    GCM = "gcm"
    SHA1 = "sha1"


class RecoveryPolicy(enum.Enum):
    """What to do once an integrity failure is classified as persistent."""

    HALT = "halt"                      # raise RecoveryHalted, stop the run
    QUARANTINE_PAGE = "quarantine_page"  # fence the page, keep running
    DEGRADE = "degrade"                # serve unverified data, keep running


@dataclass(frozen=True)
class RecoveryConfig:
    """Integrity-violation recovery knobs (disabled by default).

    With ``enabled``, an integrity-check failure triggers bounded re-fetch
    with exponential backoff + jitter; a block that verifies within
    ``max_retries`` re-reads is a *transient* fault, one that never does is
    *persistent* and handled per ``policy``.
    """

    enabled: bool = False
    policy: RecoveryPolicy = RecoveryPolicy.HALT
    max_retries: int = 3
    backoff_base_cycles: float = 64.0
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_cycles < 0:
            raise ValueError("backoff_base_cycles must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1), "
                f"got {self.jitter_fraction}"
            )


# Section 5 machine parameters (processor cycles unless noted).
DEFAULT_BLOCK_SIZE = 64
DEFAULT_L1_SIZE = 16 * 1024
DEFAULT_L1_ASSOC = 4
DEFAULT_L1_LATENCY = 2
DEFAULT_L2_SIZE = 1024 * 1024
DEFAULT_L2_ASSOC = 8
DEFAULT_L2_LATENCY = 10
DEFAULT_COUNTER_CACHE_SIZE = 32 * 1024
DEFAULT_COUNTER_CACHE_ASSOC = 8
DEFAULT_MEMORY_LATENCY = 200
DEFAULT_MEMORY_SIZE = 512 * 1024 * 1024
DEFAULT_MAC_BITS = 64
DEFAULT_NUM_RSRS = 8
DEFAULT_ISSUE_WIDTH = 3


@dataclass(frozen=True)
class SecureMemoryConfig:
    """Complete description of one secure-memory design point."""

    name: str = "baseline"
    encryption: EncryptionMode = EncryptionMode.NONE
    counter_org: CounterOrg = CounterOrg.SPLIT
    auth: AuthMode = AuthMode.NONE
    #: Figure 10 marks Commit as the default authentication requirement
    auth_policy: AuthPolicy = AuthPolicy.COMMIT
    parallel_auth: bool = True
    mac_bits: int = DEFAULT_MAC_BITS
    authenticate_counters: bool = True
    #: anti-replay strategy; AUTO resolves to the Merkle tree
    integrity: IntegrityMode = IntegrityMode.AUTO
    #: secret-sharing geometry (EncryptionMode.SHARES only): any
    #: ``shares_k`` of the ``shares_n`` stored shares reconstruct a block
    shares_k: int = 2
    shares_n: int = 3

    block_size: int = DEFAULT_BLOCK_SIZE
    minor_bits: int = 7
    counter_cache_size: int = DEFAULT_COUNTER_CACHE_SIZE
    counter_cache_assoc: int = DEFAULT_COUNTER_CACHE_ASSOC
    node_cache_size: int = DEFAULT_COUNTER_CACHE_SIZE
    node_cache_assoc: int = DEFAULT_COUNTER_CACHE_ASSOC
    num_rsrs: int = DEFAULT_NUM_RSRS
    #: ablation knob: with False, page re-encryption stalls the processor
    #: until the whole page is done (no RSR overlap) — the naive design
    #: section 4.2's hardware support exists to avoid
    rsr_overlap: bool = True
    prediction_depth: int = 5

    memory_size: int = DEFAULT_MEMORY_SIZE
    memory_latency: int = DEFAULT_MEMORY_LATENCY

    #: software crypto backend for the functional layer: ``"auto"`` picks
    #: the NumPy vector kernel when available (table otherwise); explicit
    #: ``"vector"``/``"table"``/``"scalar"`` pin a backend.  All backends
    #: are byte-identical — this knob trades host-side speed only and has
    #: no effect on simulated timing or statistics.
    kernel: str = "auto"

    #: timing-loop implementation: ``"auto"`` picks the NumPy event-batch
    #: engine when available (per-reference scalar loop otherwise);
    #: explicit ``"scalar"``/``"batched"`` pin one.  Both engines are
    #: bit-identical on every cycle count and statistic (enforced by the
    #: golden-trace and differential suites) — this knob trades host-side
    #: speed only, exactly like ``kernel``.
    sim_engine: str = "auto"

    aes_latency: float = 80.0
    aes_stages: int = 16
    aes_engines: int = 1
    sha_latency: float = 320.0
    sha_stages: int = 32

    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)

    def __post_init__(self) -> None:
        """Reject impossible design points at construction time.

        A bad parameter would otherwise surface as a confusing failure deep
        inside a simulation (a mis-sized Merkle arity, a counter cache the
        set-index math cannot address, a zero-engine AES unit).
        """
        if self.mac_bits not in VALID_MAC_BITS:
            raise ValueError(
                f"mac_bits must be one of {VALID_MAC_BITS}, "
                f"got {self.mac_bits}"
            )
        if not 1 <= self.minor_bits <= 16:
            raise ValueError(
                f"minor_bits must be in [1, 16], got {self.minor_bits}"
            )
        for label in ("counter_cache_size", "node_cache_size"):
            size = getattr(self, label)
            if size <= 0 or size & (size - 1):
                raise ValueError(
                    f"{label} must be a positive power of two, got {size}"
                )
        if self.aes_engines < 1:
            raise ValueError(
                f"aes_engines must be at least 1, got {self.aes_engines}"
            )
        if self.kernel != "auto" and self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be 'auto' or one of {KERNELS}, "
                f"got {self.kernel!r}"
            )
        if self.sim_engine not in SIM_ENGINES:
            raise ValueError(
                f"sim_engine must be one of {SIM_ENGINES}, "
                f"got {self.sim_engine!r}"
            )
        if (self.integrity is IntegrityMode.SECDDR
                and self.auth is AuthMode.NONE):
            raise ValueError(
                "integrity=secddr needs per-block MACs; set auth"
            )
        if self.encryption is EncryptionMode.SHARES:
            # k >= 2 keeps every stored share masked by at least one
            # PRF-derived coefficient (k == 1 would write plaintext).
            if not 2 <= self.shares_k <= self.shares_n <= 16:
                raise ValueError(
                    f"shares require 2 <= shares_k <= shares_n <= 16, got "
                    f"shares_k={self.shares_k}, shares_n={self.shares_n}"
                )
            if self.auth is AuthMode.NONE:
                raise ValueError(
                    "shares encryption needs share-level MACs; set auth"
                )
            if self.counter_org is not CounterOrg.SPLIT:
                # Counter overflow must stay a page-local event: shares are
                # re-derived per write from (key, address, counter), and the
                # full-memory re-encryption a monolithic/global overflow
                # forces has no share-aware path.
                raise ValueError(
                    "shares encryption requires split counters"
                )

    def with_updates(self, **changes) -> "SecureMemoryConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def uses_counters(self) -> bool:
        """Whether the configuration keeps per-block counters.

        True for counter-mode encryption, and also for GCM authentication
        without encryption — Figure 7's caption notes that GCM maintains
        per-block counters for its authentication pads even when no
        encryption is performed.
        """
        return (
            self.encryption is EncryptionMode.COUNTER
            or self.encryption is EncryptionMode.SHARES
            or self.auth is AuthMode.GCM
        )

    @property
    def resolved_integrity(self) -> IntegrityMode:
        """The concrete anti-replay backend (AUTO means the Merkle tree)."""
        if self.integrity is IntegrityMode.AUTO:
            return IntegrityMode.TREE
        return self.integrity


def _cfg(name: str, **kwargs) -> SecureMemoryConfig:
    return SecureMemoryConfig(name=name, **kwargs)


def make_counter_config(org: CounterOrg, name: str | None = None,
                        **kwargs) -> SecureMemoryConfig:
    """Counter-mode-encryption-only config for a given organization."""
    return _cfg(name or org.value, encryption=EncryptionMode.COUNTER,
                counter_org=org, auth=AuthMode.NONE, **kwargs)


# -- Figure 4: encryption-only schemes --------------------------------------

def split_config(**kwargs) -> SecureMemoryConfig:
    return make_counter_config(CounterOrg.SPLIT,
                               kwargs.pop("name", "split"), **kwargs)


def mono_config(bits: int, **kwargs) -> SecureMemoryConfig:
    org = {8: CounterOrg.MONO8, 16: CounterOrg.MONO16,
           32: CounterOrg.MONO32, 64: CounterOrg.MONO64}[bits]
    return make_counter_config(org, **kwargs)


def direct_config(**kwargs) -> SecureMemoryConfig:
    return _cfg("direct", encryption=EncryptionMode.DIRECT,
                auth=AuthMode.NONE, **kwargs)


def prediction_config(aes_engines: int = 1, **kwargs) -> SecureMemoryConfig:
    name = "pred2eng" if aes_engines == 2 else "pred"
    return make_counter_config(CounterOrg.PREDICTION, name,
                               aes_engines=aes_engines, **kwargs)


# -- Figure 7: authentication-only schemes -----------------------------------

def gcm_auth_config(**kwargs) -> SecureMemoryConfig:
    return _cfg("gcm-auth", encryption=EncryptionMode.NONE,
                counter_org=CounterOrg.SPLIT, auth=AuthMode.GCM, **kwargs)


def sha_auth_config(sha_latency: float = 320.0, **kwargs) -> SecureMemoryConfig:
    return _cfg(f"sha-auth-{int(sha_latency)}", encryption=EncryptionMode.NONE,
                auth=AuthMode.SHA1, sha_latency=sha_latency, **kwargs)


# -- Figure 9: combined encryption + authentication ---------------------------

def split_gcm_config(**kwargs) -> SecureMemoryConfig:
    return _cfg("split+gcm", encryption=EncryptionMode.COUNTER,
                counter_org=CounterOrg.SPLIT, auth=AuthMode.GCM, **kwargs)


def mono_gcm_config(**kwargs) -> SecureMemoryConfig:
    return _cfg("mono+gcm", encryption=EncryptionMode.COUNTER,
                counter_org=CounterOrg.MONO64, auth=AuthMode.GCM, **kwargs)


def split_sha_config(**kwargs) -> SecureMemoryConfig:
    return _cfg("split+sha", encryption=EncryptionMode.COUNTER,
                counter_org=CounterOrg.SPLIT, auth=AuthMode.SHA1, **kwargs)


def mono_sha_config(**kwargs) -> SecureMemoryConfig:
    return _cfg("mono+sha", encryption=EncryptionMode.COUNTER,
                counter_org=CounterOrg.MONO64, auth=AuthMode.SHA1, **kwargs)


def xom_sha_config(**kwargs) -> SecureMemoryConfig:
    return _cfg("xom+sha", encryption=EncryptionMode.DIRECT,
                auth=AuthMode.SHA1, **kwargs)


def baseline_config(**kwargs) -> SecureMemoryConfig:
    """No encryption, no authentication — the IPC normalization baseline."""
    return _cfg("baseline", **kwargs)


# -- new backends (PAPERS.md related work) ------------------------------------

def secddr_config(**kwargs) -> SecureMemoryConfig:
    """SecDDR-style preset: split + GCM with on-chip MAC-of-MACs replay
    protection instead of a multi-level Merkle walk."""
    return _cfg("secddr", encryption=EncryptionMode.COUNTER,
                counter_org=CounterOrg.SPLIT, auth=AuthMode.GCM,
                integrity=IntegrityMode.SECDDR, **kwargs)


def scattered_config(**kwargs) -> SecureMemoryConfig:
    """Secure Scattered Memory preset: k-of-n secret-shared blocks with
    share-level MACs anchored in the Merkle tree."""
    return _cfg("scattered", encryption=EncryptionMode.SHARES,
                counter_org=CounterOrg.SPLIT, auth=AuthMode.GCM,
                shares_k=kwargs.pop("shares_k", 2),
                shares_n=kwargs.pop("shares_n", 3), **kwargs)


#: every named preset, keyed by its benchmark label.  Read-only: presets are
#: shared module state — derive variants with ``config.with_updates(...)`` or
#: :func:`repro.api.get_config` overrides instead of mutating the mapping.
#:
#: The mapping is a thin view over the scheme registry
#: (:data:`repro.schemes.REGISTRY`): it is built lazily on first attribute
#: access (PEP 562) so this module never imports the registry at load time,
#: and each entry is the registry's resolution of the like-named
#: composition — field-identical to the constructor above for every legacy
#: name.
PRESETS: Mapping[str, SecureMemoryConfig]


def __getattr__(name: str):
    if name == "PRESETS":
        from repro.schemes import preset_configs

        presets = preset_configs()
        globals()["PRESETS"] = presets
        return presets
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
